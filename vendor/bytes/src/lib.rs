//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! Provides [`Bytes`] (a cheaply cloneable, sliceable shared byte buffer),
//! [`BytesMut`] (a growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits with the little-endian accessors this workspace's wire codec
//! uses. Semantics match upstream for this subset; zero-copy `from_static`
//! is approximated by one copy at construction, which only affects test
//! fixtures.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

macro_rules! buf_get_impl {
    ($name:ident, $ty:ty, $size:expr) => {
        fn $name(&mut self) -> $ty {
            assert!(self.remaining() >= $size, "buffer underflow");
            let mut raw = [0u8; $size];
            raw.copy_from_slice(&self.chunk()[..$size]);
            self.advance($size);
            <$ty>::from_le_bytes(raw)
        }
    };
}

macro_rules! buf_put_impl {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        }
    };
}

/// A reference-counted view into an immutable byte buffer.
///
/// Cloning and slicing are O(1) and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Builds from a static slice (copied once; upstream is zero-copy).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies an arbitrary slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same allocation.
    ///
    /// # Panics
    /// When the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Converts into an immutable shared buffer without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.buf {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Splits off the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    buf_get_impl!(get_u16_le, u16, 2);
    buf_get_impl!(get_u32_le, u32, 4);
    buf_get_impl!(get_u64_le, u64, 8);
    buf_get_impl!(get_i16_le, i16, 2);
    buf_get_impl!(get_i32_le, i32, 4);
    buf_get_impl!(get_i64_le, i64, 8);
    buf_get_impl!(get_f32_le, f32, 4);
    buf_get_impl!(get_f64_le, f64, 8);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    buf_put_impl!(put_u16_le, u16);
    buf_put_impl!(put_u32_le, u32);
    buf_put_impl!(put_u64_le, u64);
    buf_put_impl!(put_i16_le, i16);
    buf_put_impl!(put_i32_le, i32);
    buf_put_impl!(put_i64_le, i64);
    buf_put_impl!(put_f32_le, f32);
    buf_put_impl!(put_f64_le, f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_i64_le(-9);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
