//! Offline stand-in for `criterion` (0.5 macro/API subset).
//!
//! Implements `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter` and `black_box` with a
//! deliberately small wall-clock measurement loop: a short warm-up, then a
//! fixed number of timed batches, reporting the best mean per iteration.
//! No statistics, plots, or baselines — just numbers on stdout, so
//! `cargo bench` terminates quickly and `cargo bench --no-run` exercises
//! the exact upstream call surface.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    /// Timed batches to run (after one warm-up batch).
    samples: usize,
    /// Best observed mean nanoseconds per iteration.
    best_ns: f64,
    iterations_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`, retaining the fastest per-iteration mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes the batch so one sample is ~1 ms or 1 iter.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
        self.iterations_per_sample = per_sample;

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let mean = start.elapsed().as_nanos() as f64 / per_sample as f64;
            if mean < self.best_ns {
                self.best_ns = mean;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Upstream: number of statistical samples. Here: timed batches per
    /// benchmark, clamped to keep total runtime small.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 5);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            best_ns: f64::INFINITY,
            iterations_per_sample: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            best_ns: f64::INFINITY,
            iterations_per_sample: 0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let ns = bencher.best_ns;
        let human = if ns < 1_000.0 {
            format!("{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else {
            format!("{:.3} ms", ns / 1_000_000.0)
        };
        println!(
            "{}/{:<40} time: [{human}]  ({} iters/sample)",
            self.name, id.label, bencher.iterations_per_sample
        );
        self.criterion.benchmarks_run += 1;
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 5,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    pub fn final_summary(&self) {
        println!("ran {} benchmark(s)", self.benchmarks_run);
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running each group declared with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
