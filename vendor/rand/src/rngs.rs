//! Deterministic generators: xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Drop-in stand-in for `rand::rngs::StdRng`: deterministic, seedable.
#[derive(Debug, Clone)]
pub struct StdRng(Xoshiro256);

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng(Xoshiro256::from_u64(seed))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

/// Drop-in stand-in for `rand::rngs::SmallRng`: same engine, distinct
/// stream domain so `StdRng` and `SmallRng` with equal seeds decorrelate.
#[derive(Debug, Clone)]
pub struct SmallRng(Xoshiro256);

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng(Xoshiro256::from_u64(seed ^ 0x5115_7A11_5EED_0001))
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}
