//! Distributions: the `Distribution` trait and `weighted::WeightedIndex`.

use crate::{unit_f64, RngCore};

/// A distribution that can produce values of `T` from a generator.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

pub mod weighted {
    use super::{unit_f64, Distribution};
    use crate::RngCore;
    use std::fmt;

    /// Error building a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Conversion of a caller-supplied weight item into `f64`.
    ///
    /// Upstream `WeightedIndex` is generic over the weight type via
    /// `SampleBorrow`; this shim flattens everything to `f64`, which is
    /// exact for every weight the workspace uses.
    pub trait IntoWeight {
        fn into_weight(self) -> f64;
    }

    macro_rules! into_weight {
        ($($ty:ty),*) => {$(
            impl IntoWeight for $ty {
                #[inline]
                fn into_weight(self) -> f64 { self as f64 }
            }
            impl IntoWeight for &$ty {
                #[inline]
                fn into_weight(self) -> f64 { *self as f64 }
            }
        )*};
    }
    into_weight!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Samples indices `0..n` proportionally to the supplied weights.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from an iterator of non-negative weights.
        ///
        /// # Errors
        /// [`WeightedError`] when the iterator is empty, any weight is
        /// negative/non-finite, or every weight is zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: IntoWeight,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = w.into_weight();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let target = unit_f64(rng) * self.total;
            // Entry `i` owns the half-open interval `[c[i-1], c[i])`; a
            // zero-weight entry owns an empty interval and is therefore
            // never selected, even when the draw lands exactly on its
            // (duplicated) cumulative boundary.
            let i = self.cumulative.partition_point(|&c| c <= target);
            i.min(self.cumulative.len() - 1)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::prelude::*;

        #[test]
        fn respects_weights() {
            let dist = WeightedIndex::new(vec![1.0f32, 0.0, 3.0]).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let mut counts = [0usize; 3];
            for _ in 0..40_000 {
                counts[dist.sample(&mut rng)] += 1;
            }
            assert_eq!(counts[1], 0, "zero weight must never be drawn");
            let ratio = counts[2] as f64 / counts[0] as f64;
            assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        }

        #[test]
        fn rejects_bad_inputs() {
            assert_eq!(
                WeightedIndex::new(Vec::<f64>::new()),
                Err(WeightedError::NoItem)
            );
            assert_eq!(
                WeightedIndex::new(vec![-1.0f64]),
                Err(WeightedError::InvalidWeight)
            );
            assert_eq!(
                WeightedIndex::new(vec![0.0f64, 0.0]),
                Err(WeightedError::AllWeightsZero)
            );
        }
    }
}
