//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `rand` it actually uses: seedable deterministic
//! generators (`StdRng`, `SmallRng`), uniform range sampling
//! (`Rng::random_range`, `Rng::random_bool`), slice helpers
//! (`shuffle`, `choose`) and `distr::weighted::WeightedIndex`.
//!
//! The generators are xoshiro256++ seeded through SplitMix64 — high-quality,
//! deterministic across platforms and runs for a given seed, which is the
//! property every Harmony test relies on. The exact stream differs from the
//! upstream crate; nothing in this workspace depends on upstream streams.

pub mod distr;
pub mod rngs;
pub mod seq;

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A double in `[0, 1)` built from the top 53 bits of a `u64`.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A float in `[0, 1)` built from 24 bits — exactly representable in
/// `f32`, so it can never round up to 1.0 (narrowing a 53-bit `f64`
/// could, which would let range sampling return the excluded `end`).
#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Ranges that can produce a uniform sample of `T`.
///
/// Generic over the output type (mirroring upstream's
/// `SampleRange<T: SampleUniform>`) so type inference can flow from the
/// destination — `let u: f32 = rng.random_range(-0.5..0.5)` resolves the
/// unsuffixed literals to `f32`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift mapping of a 64-bit draw onto the span.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $ty
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($ty:ty => $unit:ident),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + $unit(rng) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32 => unit_f32, f64 => unit_f64);

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Samples from a distribution (mirror of `rand::Rng::sample`).
    #[inline]
    fn sample<T, D: distr::Distribution<T>>(&mut self, dist: &D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The items a typical `use rand::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::distr::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_and_choose_work() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
