//! Slice sampling helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// In-place Fisher–Yates shuffle.
pub trait SliceRandom {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// Uniform selection of one element by index.
pub trait IndexedRandom {
    type Item;
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
