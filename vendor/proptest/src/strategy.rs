//! The [`Strategy`] trait and implementations for ranges and tuples.

use crate::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest strategies produce shrinkable value trees; this
/// stand-in only samples.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty => $unit:ident),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.$unit() * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32 => unit_f32, f64 => unit_f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
