//! Offline stand-in for `proptest`.
//!
//! Implements the `proptest!` macro surface this workspace's test suites
//! use — `#![proptest_config(...)]`, `arg in strategy` parameters,
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` — over a simple
//! randomized runner:
//!
//! * each test runs `ProptestConfig::cases` accepted cases with a
//!   deterministic per-test seed (derived from the test name), so failures
//!   reproduce across runs;
//! * strategies are sampled, not explored: there is **no shrinking** — a
//!   failing case reports the inputs via the panic message instead;
//! * supported strategies: numeric `Range`s, `proptest::bool::ANY`,
//!   `proptest::num::<ty>::ANY`, tuples, `collection::vec`, and string
//!   character-class regexes of the form `"[class]{lo,hi}"`.

use std::ops::Range;

pub mod strategy;
pub use strategy::Strategy;

/// Runner configuration; mirrors the upstream field used by this workspace.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
    /// Abort if this many `prop_assume!` rejections accumulate.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Outcome of a single case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject,
    /// `prop_assert*!` failed — the property does not hold.
    Fail(String),
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A float in `[0, 1)` built from 24 bits — exactly representable in
    /// `f32`, so range strategies can never round up to the excluded `end`
    /// (narrowing a 53-bit `f64` could).
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Stable seed derived from the test name, so each test owns a
/// deterministic stream independent of declaration order.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `vec(element_strategy, len_range)` and friends.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::bool::ANY`.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::num::<ty>::ANY` for the integer and float types.
pub mod num {
    macro_rules! int_any {
        ($($mod_name:ident => $ty:ty),*) => {$(
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::TestRng;

                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            }
        )*};
    }
    int_any!(u8 => ::core::primitive::u8, u16 => ::core::primitive::u16,
             u32 => ::core::primitive::u32, u64 => ::core::primitive::u64,
             usize => ::core::primitive::usize,
             i8 => ::core::primitive::i8, i16 => ::core::primitive::i16,
             i32 => ::core::primitive::i32, i64 => ::core::primitive::i64,
             isize => ::core::primitive::isize);

    macro_rules! float_any {
        ($($mod_name:ident => $ty:ty),*) => {$(
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::TestRng;

                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        // Finite values spanning a wide magnitude range.
                        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                        let exp = rng.below(61) as i32 - 30;
                        (sign * rng.unit_f64() * (2f64).powi(exp)) as $ty
                    }
                }
            }
        )*};
    }
    float_any!(f32 => ::core::primitive::f32, f64 => ::core::primitive::f64);
}

/// The names a typical `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// String strategies: "[class]{lo,hi}" character-class regexes.
// ---------------------------------------------------------------------------

/// Parses the `[class]{lo,hi}` pattern subset; returns the expanded
/// alphabet and length bounds, or `None` for unsupported patterns.
fn parse_charclass_pattern(pattern: &str) -> Option<(Vec<char>, Range<usize>)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    let (lo, hi) = match quant.strip_prefix('{').and_then(|q| q.strip_suffix('}')) {
        Some(body) => {
            let (lo, hi) = body.split_once(',')?;
            (lo.trim().parse().ok()?, hi.trim().parse::<usize>().ok()?)
        }
        None if quant.is_empty() => (1, 1),
        None if quant == "*" => (0, 16),
        None if quant == "+" => (1, 16),
        None => return None,
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo..hi + 1))
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, len) = parse_charclass_pattern(self).unwrap_or_else(|| {
            panic!(
                "unsupported string strategy pattern {self:?}: \
                 this proptest stand-in only handles \"[class]{{lo,hi}}\""
            )
        });
        let span = (len.end - len.start) as u64;
        let n = len.start + rng.below(span.max(1)) as usize;
        (0..n)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_for(::core::stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let inputs = || {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&::std::format!(
                        "  {} = {:?}\n", ::core::stringify!($arg), &$arg
                    ));)*
                    s
                };
                let case_inputs = inputs();
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            ::core::panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                ::core::stringify!($name), rejected
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::core::panic!(
                            "proptest {} failed after {} case(s): {}\nwith inputs:\n{}",
                            ::core::stringify!($name), accepted, msg, case_inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5usize..10, f in -1.0f32..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0u64..100, -1.0f32..1.0), 1..16),
            b in crate::bool::ANY,
            any in crate::num::u64::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            for &(id, f) in &v {
                prop_assert!(id < 100);
                prop_assert!((-1.0..1.0).contains(&f));
            }
            let _ = (b, any);
        }

        #[test]
        fn string_pattern(s in "[a-zA-Z0-9 ]{0,64}") {
            prop_assert!(s.len() <= 64);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }

        #[test]
        fn assume_rejects_and_passes(a in 0u64..100) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_header_accepted(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_seeding() {
        let mut a = crate::TestRng::new(crate::seed_for("t"));
        let mut b = crate::TestRng::new(crate::seed_for("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    // No `#[test]` attribute: invoked (and expected to panic) from
    // `failures_panic_with_inputs` below.
    proptest! {
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_inputs() {
        always_fails();
    }
}
