//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, as a thin façade over
//! `std::sync::mpsc`. The std channel matches the crossbeam API for
//! everything this workspace uses (`unbounded`, `send`, `recv`,
//! `recv_timeout`, `try_recv`, `try_iter`, cloneable senders); crossbeam
//! extras like cloneable receivers and `select!` are deliberately absent.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention
    //! (`scope` returns a `Result`, spawn closures receive the scope),
    //! implemented over `std::thread::scope`.

    use std::any::Any;

    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unlike upstream, a panicking unjoined child aborts via
    /// the std scope's own panic propagation rather than an `Err`, which is
    /// indistinguishable to callers that `.expect()` the result.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let mut data = vec![0u32; 8];
            super::scope(|s| {
                for (i, slot) in data.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u32 * 2);
                }
            })
            .unwrap();
            assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        }

        #[test]
        fn join_returns_value() {
            let total: u32 = super::scope(|s| {
                let hs: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * i)).collect();
                hs.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 14);
        }
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            tx.clone().send(42).unwrap();
            assert_eq!(rx.recv().unwrap(), 41);
            assert_eq!(rx.try_recv().unwrap(), 42);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<()>();
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            ));
        }

        #[test]
        fn disconnection_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
