//! Bounded top-k tracking with pruning thresholds.
//!
//! Every search in Harmony maintains a max-heap of the best `k` candidates
//! seen so far. The heap's worst retained score is the pruning threshold
//! `τ²` (§3.1): any candidate whose (partial) score already exceeds `τ²`
//! provably cannot enter the top-k and is discarded. [`TopK::threshold`]
//! exposes exactly this value; while the heap is not yet full the threshold
//! is `+∞` so nothing is pruned prematurely.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::vector::VectorId;

/// One search result: a vector id and its lower-is-better score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id of the matched base vector.
    pub id: VectorId,
    /// Lower-is-better score (squared L2 distance, or negated similarity).
    pub score: f32,
}

impl Neighbor {
    /// Creates a neighbor entry.
    #[inline]
    pub fn new(id: VectorId, score: f32) -> Self {
        Self { id, score }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// Orders by score (total order via `f32::total_cmp`), breaking ties by
    /// id so results are fully deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-heap keeping the `k` smallest-scored neighbors.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a tracker for the best `k` results.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k` of the tracker.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently retained (`<= k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no candidate has been accepted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` candidates are retained.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Current pruning threshold `τ²`: the worst retained score once full,
    /// `+∞` before that.
    ///
    /// A candidate can be discarded as soon as its accumulated partial score
    /// strictly exceeds this value (L2), or its best-possible completion
    /// exceeds it (inner product with residual bounds).
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.is_full() {
            // Heap is non-empty here, peek cannot fail.
            self.heap.peek().map_or(f32::INFINITY, |n| n.score)
        } else {
            f32::INFINITY
        }
    }

    /// Offers a candidate; returns `true` if it was retained.
    #[inline]
    pub fn push(&mut self, id: VectorId, score: f32) -> bool {
        let cand = Neighbor::new(id, score);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            true
        } else if let Some(worst) = self.heap.peek() {
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// Merges every retained candidate of `other` into `self`.
    pub fn merge(&mut self, other: &TopK) {
        for n in other.heap.iter() {
            self.push(n.id, n.score);
        }
    }

    /// Consumes the tracker and returns neighbors sorted best-first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Returns the retained neighbors sorted best-first without consuming.
    pub fn to_sorted(&self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (id, score) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            t.push(id, score);
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(out[0].score, 1.0);
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(0, 10.0);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(1, 20.0);
        assert_eq!(t.threshold(), 20.0);
        t.push(2, 5.0);
        assert_eq!(t.threshold(), 10.0);
    }

    #[test]
    fn push_reports_retention() {
        let mut t = TopK::new(1);
        assert!(t.push(0, 1.0));
        assert!(!t.push(1, 2.0));
        assert!(t.push(2, 0.5));
        assert_eq!(t.into_sorted()[0].id, 2);
    }

    #[test]
    fn ties_break_by_id_deterministically() {
        let mut t = TopK::new(2);
        t.push(7, 1.0);
        t.push(3, 1.0);
        t.push(5, 1.0);
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn merge_combines_trackers() {
        let mut a = TopK::new(2);
        a.push(0, 4.0);
        a.push(1, 3.0);
        let mut b = TopK::new(2);
        b.push(2, 1.0);
        b.push(3, 2.0);
        a.merge(&b);
        let out = a.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn handles_nan_free_total_order_extremes() {
        let mut t = TopK::new(2);
        t.push(0, f32::INFINITY);
        t.push(1, f32::NEG_INFINITY);
        t.push(2, 0.0);
        let out = t.into_sorted();
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].id, 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        TopK::new(0);
    }

    #[test]
    fn to_sorted_does_not_consume() {
        let mut t = TopK::new(2);
        t.push(0, 2.0);
        t.push(1, 1.0);
        let s1 = t.to_sorted();
        let s2 = t.to_sorted();
        assert_eq!(s1, s2);
        assert_eq!(s1[0].id, 1);
    }
}
