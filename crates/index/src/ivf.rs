//! IVF-Flat: the cluster-based index Harmony distributes.
//!
//! An inverted-file index stores one *inverted list* per k-means centroid;
//! each list keeps its member vectors contiguously (Faiss `IndexIVFFlat`
//! layout) so scans are cache-friendly and — crucially for Harmony — so a
//! whole list can be lifted out and shipped to a remote machine as a unit.
//! Vector-based partitioning assigns entire lists to shards `V_i`;
//! dimension-based partitioning then slices each shipped list column-wise
//! into blocks `D_j` (paper §4.2.2, Fig. 4a).
//!
//! Search visits the `nprobe` lists whose centroids are nearest the query
//! and scans them exactly. Recall is controlled by `nprobe` alone, which is
//! how the paper traces its QPS-recall curves (Fig. 6).

use crate::distance::Metric;
use crate::error::IndexError;
use crate::kmeans::{nearest_centroids, KMeans, KMeansConfig};
use crate::topk::{Neighbor, TopK};
use crate::vector::VectorStore;

/// Construction parameters for [`IvfIndex`].
#[derive(Debug, Clone)]
pub struct IvfParams {
    /// Number of inverted lists (clusters).
    pub nlist: usize,
    /// Similarity metric.
    pub metric: Metric,
    /// Training configuration overrides (seed, iterations, subsampling).
    pub train: KMeansConfig,
}

impl IvfParams {
    /// Parameters with sensible defaults for `nlist` lists.
    pub fn new(nlist: usize) -> Self {
        Self {
            nlist,
            metric: Metric::L2,
            train: KMeansConfig::new(nlist, KMeansConfig::default().seed),
        }
    }

    /// Sets the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the training seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.train.seed = seed;
        self
    }
}

/// One inverted list: ids plus their vectors, stored contiguously.
#[derive(Debug, Clone, Default)]
pub struct InvertedList {
    /// Member vectors (ids travel inside the store).
    pub vectors: VectorStore,
}

impl InvertedList {
    /// Number of vectors in the list.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when the list holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// An IVF-Flat index.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    metric: Metric,
    centroids: VectorStore,
    lists: Vec<InvertedList>,
    size: usize,
}

impl IvfIndex {
    /// Trains centroids on `train_data` and returns an empty index.
    ///
    /// # Errors
    /// Propagates k-means training errors (invalid `nlist`, too little data).
    pub fn train(train_data: &VectorStore, params: &IvfParams) -> Result<Self, IndexError> {
        let mut cfg = params.train.clone();
        cfg.k = params.nlist;
        let km = KMeans::train(train_data, &cfg)?;
        let dim = train_data.dim();
        Ok(Self {
            metric: params.metric,
            centroids: km.centroids,
            lists: (0..params.nlist)
                .map(|_| InvertedList {
                    vectors: VectorStore::new(dim),
                })
                .collect(),
            size: 0,
        })
    }

    /// Builds a trained index directly from parts (used when reassembling a
    /// distributed index or loading from disk).
    pub fn from_parts(metric: Metric, centroids: VectorStore, lists: Vec<InvertedList>) -> Self {
        let size = lists.iter().map(InvertedList::len).sum();
        Self {
            metric,
            centroids,
            lists,
            size,
        }
    }

    /// Adds every row of `data`, routing each vector to its nearest centroid.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] when widths differ.
    pub fn add(&mut self, data: &VectorStore) -> Result<(), IndexError> {
        if data.dim() != self.centroids.dim() {
            return Err(IndexError::DimensionMismatch {
                expected: self.centroids.dim(),
                actual: data.dim(),
            });
        }
        // Parallel assignment via the shared k-means kernel.
        let km = KMeans {
            centroids: self.centroids.clone(),
            inertia: 0.0,
            iterations: 0,
        };
        let assignments = km.assign(data);
        for (row, &list) in assignments.iter().enumerate() {
            self.lists[list as usize]
                .vectors
                .push(data.id(row), data.row(row))?;
            self.size += 1;
        }
        Ok(())
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Total number of indexed vectors.
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The trained centroids.
    pub fn centroids(&self) -> &VectorStore {
        &self.centroids
    }

    /// The inverted lists.
    pub fn lists(&self) -> &[InvertedList] {
        &self.lists
    }

    /// Metric this index searches under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Sizes of all inverted lists (the load profile that drives Harmony's
    /// shard packing).
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(InvertedList::len).collect()
    }

    /// Ids of the `nprobe` lists to visit for `query`, best first.
    pub fn probe_lists(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        nearest_centroids(query, &self.centroids, nprobe)
    }

    /// Top-`k` search visiting `nprobe` lists.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] on query width mismatch;
    /// [`IndexError::InvalidParameter`] when `nprobe == 0`.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Neighbor>, IndexError> {
        let mut topk = TopK::new(k);
        self.search_into(query, nprobe, &mut topk)?;
        Ok(topk.into_sorted())
    }

    /// Top-`k` search accumulating into an existing tracker (lets callers
    /// seed the pruning threshold, as Harmony's prewarm stage does).
    ///
    /// # Errors
    /// Same as [`IvfIndex::search`].
    pub fn search_into(
        &self,
        query: &[f32],
        nprobe: usize,
        topk: &mut TopK,
    ) -> Result<(), IndexError> {
        if query.len() != self.centroids.dim() {
            return Err(IndexError::DimensionMismatch {
                expected: self.centroids.dim(),
                actual: query.len(),
            });
        }
        if nprobe == 0 {
            return Err(IndexError::InvalidParameter("nprobe must be > 0".into()));
        }
        for &list in &self.probe_lists(query, nprobe) {
            let list = &self.lists[list as usize];
            for (id, row) in list.vectors.iter() {
                topk.push(id, self.metric.score(query, row));
            }
        }
        Ok(())
    }

    /// Batch search, parallelized over queries with scoped threads.
    ///
    /// # Errors
    /// Same as [`IvfIndex::search`].
    pub fn search_batch(
        &self,
        queries: &VectorStore,
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if queries.dim() != self.centroids.dim() {
            return Err(IndexError::DimensionMismatch {
                expected: self.centroids.dim(),
                actual: queries.dim(),
            });
        }
        if nprobe == 0 {
            return Err(IndexError::InvalidParameter("nprobe must be > 0".into()));
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n = queries.len();
        let chunk = n.div_ceil(threads).max(1);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        crossbeam::thread::scope(|s| {
            for (ci, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                s.spawn(move |_| {
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = self
                            .search(queries.row(start + off), k, nprobe)
                            .expect("params already validated");
                    }
                });
            }
        })
        .expect("crossbeam scope");
        Ok(results)
    }

    /// Heap bytes held by the index (centroids + lists).
    pub fn memory_bytes(&self) -> usize {
        self.centroids.memory_bytes()
            + self
                .lists
                .iter()
                .map(|l| l.vectors.memory_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::prelude::*;

    fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.random_range(-1.0..1.0)).collect();
        VectorStore::from_flat(dim, data).unwrap()
    }

    fn build(n: usize, dim: usize, nlist: usize, seed: u64) -> (IvfIndex, VectorStore) {
        let data = random_store(n, dim, seed);
        let mut ivf = IvfIndex::train(&data, &IvfParams::new(nlist).with_seed(seed)).unwrap();
        ivf.add(&data).unwrap();
        (ivf, data)
    }

    #[test]
    fn add_routes_every_vector_once() {
        let (ivf, data) = build(500, 8, 10, 1);
        assert_eq!(ivf.len(), data.len());
        let total: usize = ivf.list_sizes().iter().sum();
        assert_eq!(total, 500);
        // Every id appears exactly once across lists.
        let mut seen = std::collections::HashSet::new();
        for list in ivf.lists() {
            for &id in list.vectors.ids() {
                assert!(seen.insert(id), "id {id} duplicated");
            }
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn full_probe_equals_flat_search() {
        let (ivf, data) = build(300, 6, 8, 2);
        let flat = FlatIndex::from_store(data.clone(), Metric::L2);
        let q = data.row(17);
        let ivf_res = ivf.search(q, 10, 8).unwrap();
        let flat_res = flat.search(q, 10).unwrap();
        assert_eq!(
            ivf_res.iter().map(|n| n.id).collect::<Vec<_>>(),
            flat_res.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_probes_never_hurt_recall() {
        let (ivf, data) = build(400, 8, 16, 3);
        let flat = FlatIndex::from_store(data.clone(), Metric::L2);
        let q = data.row(100);
        let truth: std::collections::HashSet<u64> =
            flat.search(q, 10).unwrap().iter().map(|n| n.id).collect();
        let mut prev_hits = 0;
        for nprobe in [1, 2, 4, 8, 16] {
            let res = ivf.search(q, 10, nprobe).unwrap();
            let hits = res.iter().filter(|n| truth.contains(&n.id)).count();
            assert!(hits >= prev_hits, "recall dropped going to nprobe={nprobe}");
            prev_hits = hits;
        }
        assert_eq!(prev_hits, 10, "full probe must be exact");
    }

    #[test]
    fn search_finds_self_with_one_probe() {
        let (ivf, data) = build(200, 4, 5, 4);
        // Query = a stored vector: its own list is the nearest one.
        let res = ivf.search(data.row(42), 1, 1).unwrap();
        assert_eq!(res[0].id, 42);
        assert!(res[0].score < 1e-9);
    }

    #[test]
    fn batch_matches_single() {
        let (ivf, data) = build(200, 4, 5, 5);
        let queries = data.gather(&[0, 50, 100, 150]);
        let batch = ivf.search_batch(&queries, 5, 3).unwrap();
        for (qi, res) in batch.iter().enumerate() {
            let single = ivf.search(queries.row(qi), 5, 3).unwrap();
            assert_eq!(res, &single);
        }
    }

    #[test]
    fn rejects_bad_params() {
        let (ivf, data) = build(100, 4, 4, 6);
        assert!(matches!(
            ivf.search(&[1.0], 5, 2),
            Err(IndexError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            ivf.search(data.row(0), 5, 0),
            Err(IndexError::InvalidParameter(_))
        ));
        let mut ivf2 = ivf.clone();
        assert!(ivf2.add(&VectorStore::new(9)).is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let (ivf, data) = build(150, 4, 6, 7);
        let rebuilt =
            IvfIndex::from_parts(ivf.metric(), ivf.centroids().clone(), ivf.lists().to_vec());
        assert_eq!(rebuilt.len(), ivf.len());
        let q = data.row(3);
        assert_eq!(
            rebuilt.search(q, 5, 6).unwrap(),
            ivf.search(q, 5, 6).unwrap()
        );
    }

    #[test]
    fn memory_bytes_scales_with_data() {
        let (small, _) = build(100, 8, 4, 8);
        let (large, _) = build(1000, 8, 4, 8);
        assert!(large.memory_bytes() > small.memory_bytes());
        // Lower bound: the raw vector payload.
        assert!(large.memory_bytes() >= 1000 * 8 * 4);
    }

    #[test]
    fn search_into_respects_seeded_threshold() {
        let (ivf, data) = build(300, 6, 8, 9);
        let q = data.row(0);
        // Seed the tracker with unbeatable sentinel candidates (ids outside
        // the index). The threshold they establish must exclude every real
        // candidate, demonstrating that search_into honors seeded state.
        let mut topk = TopK::new(3);
        for sentinel in 0..3u64 {
            topk.push(10_000 + sentinel, -1.0);
        }
        ivf.search_into(q, 8, &mut topk).unwrap();
        let out = topk.into_sorted();
        assert!(out.iter().all(|n| n.id >= 10_000), "seeds were evicted");

        // An empty tracker reproduces plain search exactly.
        let mut topk = TopK::new(3);
        ivf.search_into(q, 8, &mut topk).unwrap();
        assert_eq!(topk.into_sorted(), ivf.search(q, 3, 8).unwrap());
    }
}
