//! Exact brute-force index.
//!
//! Scans every stored vector. Used for ground-truth computation (recall
//! denominators in the paper's Fig. 6 sweeps) and as the ultimate oracle in
//! property tests. Batch search parallelizes over queries with scoped
//! threads.

use crate::distance::Metric;
use crate::error::IndexError;
use crate::topk::{Neighbor, TopK};
use crate::vector::{VectorId, VectorStore};

/// Brute-force exact nearest-neighbor index.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    metric: Metric,
    store: VectorStore,
}

impl FlatIndex {
    /// Creates an empty index for vectors of dimensionality `dim`.
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self {
            metric,
            store: VectorStore::new(dim),
        }
    }

    /// Builds an index over an existing store.
    pub fn from_store(store: VectorStore, metric: Metric) -> Self {
        Self { metric, store }
    }

    /// Adds one vector.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] when the vector has the wrong width.
    pub fn add(&mut self, id: VectorId, vector: &[f32]) -> Result<(), IndexError> {
        self.store.push(id, vector)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when no vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Metric this index searches under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The underlying store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Exact top-`k` search for a single query.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] when the query has the wrong width.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, IndexError> {
        if query.len() != self.store.dim() {
            return Err(IndexError::DimensionMismatch {
                expected: self.store.dim(),
                actual: query.len(),
            });
        }
        let mut topk = TopK::new(k);
        for (id, row) in self.store.iter() {
            topk.push(id, self.metric.score(query, row));
        }
        Ok(topk.into_sorted())
    }

    /// Exact top-`k` search for a batch of queries, parallelized over queries.
    ///
    /// # Errors
    /// [`IndexError::DimensionMismatch`] when the query store width differs.
    pub fn search_batch(
        &self,
        queries: &VectorStore,
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if queries.dim() != self.store.dim() {
            return Err(IndexError::DimensionMismatch {
                expected: self.store.dim(),
                actual: queries.dim(),
            });
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n = queries.len();
        let chunk = n.div_ceil(threads).max(1);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        crossbeam::thread::scope(|s| {
            for (ci, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                s.spawn(move |_| {
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = self
                            .search(queries.row(start + off), k)
                            .expect("dims already validated");
                    }
                });
            }
        })
        .expect("crossbeam scope");
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_index() -> FlatIndex {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        let data: Vec<f32> = (0..10).flat_map(|i| [i as f32, 0.0]).collect();
        FlatIndex::from_store(VectorStore::from_flat(2, data).unwrap(), Metric::L2)
    }

    #[test]
    fn finds_exact_nearest() {
        let idx = line_index();
        let res = idx.search(&[3.2, 0.0], 3).unwrap();
        assert_eq!(res.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 4, 2]);
    }

    #[test]
    fn k_larger_than_store_returns_everything() {
        let idx = line_index();
        let res = idx.search(&[0.0, 0.0], 100).unwrap();
        assert_eq!(res.len(), 10);
        assert_eq!(res[0].id, 0);
        assert_eq!(res[9].id, 9);
    }

    #[test]
    fn rejects_wrong_dim() {
        let idx = line_index();
        assert!(matches!(
            idx.search(&[1.0], 1),
            Err(IndexError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn batch_matches_single() {
        let idx = line_index();
        let queries = VectorStore::from_flat(2, vec![0.1, 0.0, 5.4, 0.0, 8.9, 0.0]).unwrap();
        let batch = idx.search_batch(&queries, 2).unwrap();
        for (qi, res) in batch.iter().enumerate() {
            let single = idx.search(queries.row(qi), 2).unwrap();
            assert_eq!(res, &single, "query {qi}");
        }
    }

    #[test]
    fn inner_product_prefers_aligned_large_vectors() {
        let mut idx = FlatIndex::new(2, Metric::InnerProduct);
        idx.add(0, &[1.0, 0.0]).unwrap();
        idx.add(1, &[10.0, 0.0]).unwrap();
        idx.add(2, &[0.0, 5.0]).unwrap();
        let res = idx.search(&[1.0, 0.0], 3).unwrap();
        assert_eq!(res[0].id, 1);
        assert_eq!(res[1].id, 0);
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        idx.add(0, &[100.0, 1.0]).unwrap();
        idx.add(1, &[0.1, 0.1]).unwrap();
        let res = idx.search(&[1.0, 1.0], 2).unwrap();
        assert_eq!(res[0].id, 1, "cosine should prefer direction over length");
    }

    #[test]
    fn empty_index_returns_empty() {
        let idx = FlatIndex::new(4, Metric::L2);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 4], 5).unwrap().is_empty());
    }
}
