//! Distance kernels: full-range and dimension-range partial variants.
//!
//! Harmony's dimension-based partitioning splits a `d`-dimensional distance
//! computation into per-block partial results (§3.1 of the paper):
//!
//! * squared Euclidean distance decomposes as
//!   `D²(p, q) = Σ_k D²_k(p, q)` over disjoint dimension blocks `I_k`,
//! * dot products decompose as `p·q = Σ_k α_k(p, q)`.
//!
//! Every kernel here therefore operates on *slices*: a worker that owns the
//! dimension block `I_k` stores only those coordinates, and calls the same
//! kernels on its sub-slices. The decomposition identities are verified by
//! property tests at the bottom of this module.
//!
//! Kernels ship in two flavors: a portable scalar implementation with 4-way
//! unrolled accumulators (auto-vectorizes well), and AVX2+FMA intrinsics that
//! are selected at runtime when the CPU supports them. The paper's testbed
//! uses Intel MKL with AVX-512; AVX2 is our closest widely-available analog
//! (see DESIGN.md §4 Substitutions).

/// Vector similarity metric.
///
/// `L2` is a distance (lower is better); `InnerProduct` and `Cosine` are
/// similarities (higher is better). [`Metric::score`] maps all three onto a
/// single lower-is-better score so the rest of the system works with one
/// ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Squared Euclidean distance.
    #[default]
    L2,
    /// Dot product (maximized). Scored as its negation.
    InnerProduct,
    /// Cosine similarity (maximized). Callers are expected to normalize
    /// vectors at ingestion; the kernel computes a true cosine regardless.
    Cosine,
}

impl Metric {
    /// Lower-is-better score of `a` vs `b` under this metric.
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::InnerProduct => -ip(a, b),
            Metric::Cosine => -cosine(a, b),
        }
    }

    /// `true` when partial sums of this metric grow monotonically, enabling
    /// Harmony's exact early-stop pruning without auxiliary bounds.
    ///
    /// L2 partials are sums of squares (non-negative terms); inner-product
    /// partials may be negative and need the Cauchy–Schwarz residual bound
    /// implemented in `harmony-core::pruning`.
    ///
    /// **Quantized (SQ8) caveat:** monotonicity holds only *within* one
    /// score domain. SQ8 stage-1 partials accumulate over dequantized
    /// approximations, so they are monotone against other quantized scores
    /// but **not** against exact-domain thresholds (a prewarm `τ` or a
    /// cross-shard threshold computed from f32 arithmetic): the quantized
    /// partial may overshoot the exact score by up to the per-slice
    /// quantization error. Before early-stopping against an exact-domain
    /// threshold the prune bound must be widened by the accumulated error —
    /// `‖q−p‖ ≥ ‖dq(q)−dq(p)‖ − E_q − E_p` under L2, an additive dot-product
    /// slack under IP/cosine — as implemented by
    /// `harmony-core::pruning::PruneRule::{should_prune_quantized,
    /// should_prune_cosine_quantized}`. Pruning then stays
    /// exact-over-quantized: it never discards a candidate whose exact
    /// score could still beat the threshold.
    #[inline]
    pub fn monotone_partials(self) -> bool {
        matches!(self, Metric::L2)
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Metric::L2 => "l2",
            Metric::InnerProduct => "ip",
            Metric::Cosine => "cosine",
        }
    }
}

/// Half-open dimension range `[start, end)` — one dimension block `D_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimRange {
    /// First dimension (inclusive).
    pub start: usize,
    /// One past the last dimension (exclusive).
    pub end: usize,
}

impl DimRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    #[inline]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "invalid DimRange {start}..{end}");
        Self { start, end }
    }

    /// The full range `[0, dim)`.
    #[inline]
    pub fn full(dim: usize) -> Self {
        Self { start: 0, end: dim }
    }

    /// Number of dimensions covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the range covers no dimensions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits `[0, dim)` into `blocks` contiguous near-equal ranges.
    ///
    /// The first `dim % blocks` ranges get one extra dimension, matching the
    /// paper's quarter splits (`[1, d/4], [d/4+1, d/2], ...`).
    ///
    /// # Panics
    /// Panics if `blocks == 0` or `blocks > dim`.
    pub fn split(dim: usize, blocks: usize) -> Vec<DimRange> {
        assert!(blocks > 0, "cannot split into 0 blocks");
        assert!(
            blocks <= dim,
            "cannot split {dim} dims into {blocks} blocks"
        );
        let base = dim / blocks;
        let extra = dim % blocks;
        let mut out = Vec::with_capacity(blocks);
        let mut start = 0;
        for b in 0..blocks {
            let len = base + usize::from(b < extra);
            out.push(DimRange::new(start, start + len));
            start += len;
        }
        debug_assert_eq!(start, dim);
        out
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels (reference implementations, 4-way unrolled).
// ---------------------------------------------------------------------------

/// Squared L2 distance, scalar implementation.
#[inline]
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..a.len() {
        let d = a[j] - b[j];
        acc += d * d;
    }
    acc
}

/// Dot product, scalar implementation.
#[inline]
pub fn ip_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// Squared L2 distance between equal-length u8 code slices, scalar
/// implementation (4-way unrolled, mirroring [`l2_sq_scalar`]).
///
/// The `u32` accumulator is exact for widths up to 2¹⁶ (the per-term
/// maximum is 255² and 255² · 2¹⁶ < 2³²).
#[inline]
pub fn l2_sq_u8_scalar(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= 1 << 16, "u32 accumulator caps widths at 2^16");
    let mut acc0 = 0u32;
    let mut acc1 = 0u32;
    let mut acc2 = 0u32;
    let mut acc3 = 0u32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] as i32 - b[j] as i32;
        let d1 = a[j + 1] as i32 - b[j + 1] as i32;
        let d2 = a[j + 2] as i32 - b[j + 2] as i32;
        let d3 = a[j + 3] as i32 - b[j + 3] as i32;
        acc0 += (d0 * d0) as u32;
        acc1 += (d1 * d1) as u32;
        acc2 += (d2 * d2) as u32;
        acc3 += (d3 * d3) as u32;
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..a.len() {
        let d = a[j] as i32 - b[j] as i32;
        acc += (d * d) as u32;
    }
    acc
}

/// Dot product between equal-length u8 code slices, scalar implementation
/// (4-way unrolled, mirroring [`ip_scalar`]). Exact for widths up to 2¹⁶.
#[inline]
pub fn ip_u8_scalar(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= 1 << 16, "u32 accumulator caps widths at 2^16");
    let mut acc0 = 0u32;
    let mut acc1 = 0u32;
    let mut acc2 = 0u32;
    let mut acc3 = 0u32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] as u32 * b[j] as u32;
        acc1 += a[j + 1] as u32 * b[j + 1] as u32;
        acc2 += a[j + 2] as u32 * b[j + 2] as u32;
        acc3 += a[j + 3] as u32 * b[j + 3] as u32;
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..a.len() {
        acc += a[j] as u32 * b[j] as u32;
    }
    acc
}

// ---------------------------------------------------------------------------
// AVX2 kernels, selected at runtime.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Squared L2 distance using AVX2 + FMA.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 8;
        for i in 0..chunks {
            // SAFETY: i < n / 8, so both 8-lane loads end at i*8+8 <= n.
            let (pa, pb) = unsafe {
                (
                    _mm256_loadu_ps(a.as_ptr().add(i * 8)),
                    _mm256_loadu_ps(b.as_ptr().add(i * 8)),
                )
            };
            let d = _mm256_sub_ps(pa, pb);
            acc = _mm256_fmadd_ps(d, d, acc);
        }
        // SAFETY: callee requires the same target features as self.
        let mut sum = unsafe { horizontal_sum(acc) };
        for j in chunks * 8..n {
            let d = a[j] - b[j];
            sum += d * d;
        }
        sum
    }

    /// Dot product using AVX2 + FMA.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn ip(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 8;
        for i in 0..chunks {
            // SAFETY: i < n / 8, so both 8-lane loads end at i*8+8 <= n.
            let (pa, pb) = unsafe {
                (
                    _mm256_loadu_ps(a.as_ptr().add(i * 8)),
                    _mm256_loadu_ps(b.as_ptr().add(i * 8)),
                )
            };
            acc = _mm256_fmadd_ps(pa, pb, acc);
        }
        // SAFETY: callee requires the same target features as self.
        let mut sum = unsafe { horizontal_sum(acc) };
        for j in chunks * 8..n {
            sum += a[j] * b[j];
        }
        sum
    }

    /// Squared L2 distance over u8 codes using AVX2 integer arithmetic:
    /// 16 codes per iteration are zero-extended to i16 lanes
    /// (`cvtepu8_epi16`), differenced (range −255..255 fits i16), and
    /// pair-wise squared-and-summed into i32 lanes (`madd_epi16`; products
    /// are at most 255² so no saturation is possible).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn l2_sq_u8(a: &[u8], b: &[u8]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let chunks = n / 16;
        for i in 0..chunks {
            // SAFETY: i < n / 16, so both 16-byte loads end at i*16+16 <= n.
            let (pa, pb) = unsafe {
                (
                    _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i),
                    _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i),
                )
            };
            let wa = _mm256_cvtepu8_epi16(pa);
            let wb = _mm256_cvtepu8_epi16(pb);
            let d = _mm256_sub_epi16(wa, wb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
        }
        // SAFETY: callee requires the same target features as self.
        let mut sum = unsafe { horizontal_sum_epi32(acc) };
        for j in chunks * 16..n {
            let d = a[j] as i32 - b[j] as i32;
            sum += (d * d) as u32;
        }
        sum
    }

    /// Dot product over u8 codes using AVX2 integer arithmetic (same
    /// zero-extend + `madd_epi16` scheme as [`l2_sq_u8`]).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn ip_u8(a: &[u8], b: &[u8]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let chunks = n / 16;
        for i in 0..chunks {
            // SAFETY: i < n / 16, so both 16-byte loads end at i*16+16 <= n.
            let (pa, pb) = unsafe {
                (
                    _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i),
                    _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i),
                )
            };
            let wa = _mm256_cvtepu8_epi16(pa);
            let wb = _mm256_cvtepu8_epi16(pb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
        }
        // SAFETY: callee requires the same target features as self.
        let mut sum = unsafe { horizontal_sum_epi32(acc) };
        for j in chunks * 16..n {
            sum += a[j] as u32 * b[j] as u32;
        }
        sum
    }

    /// Sums the eight i32 lanes. Lanes are non-negative and bounded by
    /// 2·255²·(width/16), so for widths ≤ 2¹⁶ both the 128-bit lane adds
    /// and the final u32 total are exact.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum_epi32(v: __m256i) -> u32 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        let s = _mm_add_epi32(lo, hi);
        let mut lanes = [0i32; 4];
        // SAFETY: `lanes` is a 16-byte local array, valid for a 128-bit store.
        unsafe { _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, s) };
        lanes
            .iter()
            .fold(0u32, |acc, &x| acc.wrapping_add(x as u32))
    }

    /// Sums the eight f32 lanes via extract/shuffle reduction.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx2`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let sum128 = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(sum128);
        let sums = _mm_add_ps(sum128, shuf);
        let shuf = _mm_movehl_ps(shuf, sums);
        let sums = _mm_add_ss(sums, shuf);
        _mm_cvtss_f32(sums)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

// ---------------------------------------------------------------------------
// Public dispatching kernels.
// ---------------------------------------------------------------------------

/// Squared L2 distance between equal-length slices.
///
/// Dispatches to AVX2 when available, scalar otherwise.
///
/// # Panics
/// Panics in debug builds when slice lengths differ.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: availability checked above.
            return unsafe { avx2::l2_sq(a, b) };
        }
    }
    l2_sq_scalar(a, b)
}

/// Dot product between equal-length slices.
#[inline]
pub fn ip(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: availability checked above.
            return unsafe { avx2::ip(a, b) };
        }
    }
    ip_scalar(a, b)
}

/// Squared L2 distance between equal-length u8 code slices (SQ8 stage-1
/// scans). Dispatches to AVX2 when available, scalar otherwise; both paths
/// are exact integer arithmetic, so they agree bit-for-bit.
#[inline]
pub fn l2_sq_u8(a: &[u8], b: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: availability checked above.
            return unsafe { avx2::l2_sq_u8(a, b) };
        }
    }
    l2_sq_u8_scalar(a, b)
}

/// Dot product between equal-length u8 code slices (SQ8 stage-1 scans).
#[inline]
pub fn ip_u8(a: &[u8], b: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: availability checked above.
            return unsafe { avx2::ip_u8(a, b) };
        }
    }
    ip_u8_scalar(a, b)
}

/// True cosine similarity (handles unnormalized inputs; zero vectors map
/// to similarity 0).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot = ip(a, b);
    let na = ip(a, a);
    let nb = ip(b, b);
    let denom = (na * nb).sqrt();
    if denom > 0.0 {
        dot / denom
    } else {
        0.0
    }
}

/// Partial lower-is-better score over one dimension block.
///
/// `a_block` and `b_block` are the *pre-sliced* coordinates of the block.
/// For L2 this is the block's squared-distance contribution `d²_k`; for
/// inner-product metrics it is the negated partial dot product `-α_k`.
/// Summing the partials over all blocks of a partition reconstructs the
/// full score exactly (up to f32 reassociation) — the identity Harmony's
/// pipeline relies on.
#[inline]
pub fn partial_score(metric: Metric, a_block: &[f32], b_block: &[f32]) -> f32 {
    match metric {
        Metric::L2 => l2_sq(a_block, b_block),
        // Cosine assumes ingestion-time normalization; the partial is the
        // negated partial dot product in both similarity cases.
        Metric::InnerProduct | Metric::Cosine => -ip(a_block, b_block),
    }
}

/// Batch of scores from `query` to every row of a row-major matrix.
///
/// `matrix.len()` must be a multiple of `query.len()`.
pub fn scores_into(metric: Metric, query: &[f32], matrix: &[f32], out: &mut Vec<f32>) {
    let dim = query.len();
    debug_assert_eq!(matrix.len() % dim.max(1), 0);
    out.clear();
    out.extend(matrix.chunks_exact(dim).map(|row| metric.score(query, row)));
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-3;

    #[test]
    fn l2_matches_naive() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < EPS);
        assert!((l2_sq_scalar(&a, &b) - naive).abs() < EPS);
    }

    #[test]
    fn ip_matches_naive() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((ip(&a, &b) - naive).abs() < EPS);
        assert!((ip_scalar(&a, &b) - naive).abs() < EPS);
    }

    #[test]
    fn empty_slices_score_zero() {
        assert_eq!(l2_sq(&[], &[]), 0.0);
        assert_eq!(ip(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = [1.0, 2.0, 2.0];
        let b = [2.0, 4.0, 4.0];
        assert!((cosine(&a, &b) - 1.0).abs() < EPS);
        assert!((cosine(&a, &[0.0, 0.0, 0.0])).abs() < EPS);
    }

    #[test]
    fn metric_score_orients_lower_is_better() {
        let q = [1.0, 0.0];
        let near = [1.0, 0.1];
        let far = [-1.0, 0.0];
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            assert!(
                m.score(&q, &near) < m.score(&q, &far),
                "{:?} should rank near before far",
                m
            );
        }
    }

    #[test]
    fn only_l2_has_monotone_partials() {
        assert!(Metric::L2.monotone_partials());
        assert!(!Metric::InnerProduct.monotone_partials());
        assert!(!Metric::Cosine.monotone_partials());
    }

    #[test]
    fn dim_range_split_covers_exactly() {
        let ranges = DimRange::split(10, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0], DimRange::new(0, 4));
        assert_eq!(ranges[1], DimRange::new(4, 7));
        assert_eq!(ranges[2], DimRange::new(7, 10));
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn dim_range_split_rejects_zero_blocks() {
        DimRange::split(10, 0);
    }

    #[test]
    fn dim_range_full_covers_all() {
        let r = DimRange::full(7);
        assert_eq!(r.len(), 7);
        assert!(!r.is_empty());
        assert!(DimRange::new(3, 3).is_empty());
    }

    #[test]
    fn partial_scores_sum_to_full_score() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.11).cos()).collect();
        for metric in [Metric::L2, Metric::InnerProduct] {
            for blocks in [1, 2, 3, 5] {
                let total: f32 = DimRange::split(37, blocks)
                    .iter()
                    .map(|r| partial_score(metric, &a[r.start..r.end], &b[r.start..r.end]))
                    .sum();
                let full = match metric {
                    Metric::L2 => l2_sq(&a, &b),
                    _ => -ip(&a, &b),
                };
                assert!(
                    (total - full).abs() < 1e-3,
                    "{metric:?} blocks={blocks}: {total} vs {full}"
                );
            }
        }
    }

    #[test]
    fn scores_into_computes_batch() {
        let q = [0.0, 0.0];
        let matrix = [1.0, 0.0, 0.0, 2.0, 3.0, 4.0];
        let mut out = Vec::new();
        scores_into(Metric::L2, &q, &matrix, &mut out);
        assert_eq!(out.len(), 3);
        assert!((out[0] - 1.0).abs() < EPS);
        assert!((out[1] - 4.0).abs() < EPS);
        assert!((out[2] - 25.0).abs() < EPS);
    }

    #[test]
    fn u8_kernels_match_naive() {
        let a: Vec<u8> = (0..37).map(|i| (i * 7 % 256) as u8).collect();
        let b: Vec<u8> = (0..37).map(|i| (i * 13 % 256) as u8).collect();
        let naive_ip: u32 = a.iter().zip(&b).map(|(&x, &y)| x as u32 * y as u32).sum();
        let naive_l2: u32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let d = x as i32 - y as i32;
                (d * d) as u32
            })
            .sum();
        assert_eq!(ip_u8(&a, &b), naive_ip);
        assert_eq!(ip_u8_scalar(&a, &b), naive_ip);
        assert_eq!(l2_sq_u8(&a, &b), naive_l2);
        assert_eq!(l2_sq_u8_scalar(&a, &b), naive_l2);
        assert_eq!(ip_u8(&[], &[]), 0);
        assert_eq!(l2_sq_u8(&[], &[]), 0);
    }

    #[test]
    fn u8_kernels_handle_extremes_without_overflow() {
        // All-255 vs all-0 at a realistic width exercises the maximum
        // per-term magnitude on both kernels.
        let a = vec![255u8; 4096];
        let b = vec![0u8; 4096];
        assert_eq!(l2_sq_u8(&a, &b), 255 * 255 * 4096);
        assert_eq!(ip_u8(&a, &a), 255 * 255 * 4096);
        assert_eq!(ip_u8(&a, &b), 0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_u8_matches_scalar_exactly_when_available() {
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
            return;
        }
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for len in [1usize, 15, 16, 17, 31, 64, 100, 1024] {
            let a: Vec<u8> = (0..len)
                .map(|_| rng.random_range(0u16..256) as u8)
                .collect();
            let b: Vec<u8> = (0..len)
                .map(|_| rng.random_range(0u16..256) as u8)
                .collect();
            // SAFETY: feature checked above. Integer kernels must agree
            // bit-for-bit, not just within tolerance.
            let (av_l2, av_ip) = unsafe { (avx2::l2_sq_u8(&a, &b), avx2::ip_u8(&a, &b)) };
            assert_eq!(av_l2, l2_sq_u8_scalar(&a, &b), "l2_u8 len={len}");
            assert_eq!(av_ip, ip_u8_scalar(&a, &b), "ip_u8 len={len}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar_when_available() {
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
            return;
        }
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for len in [1usize, 7, 8, 15, 64, 100, 1024] {
            let a: Vec<f32> = (0..len).map(|_| rng.random_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.random_range(-1.0..1.0)).collect();
            // SAFETY: feature checked above.
            let (av_l2, av_ip) = unsafe { (avx2::l2_sq(&a, &b), avx2::ip(&a, &b)) };
            let rel = |x: f32, y: f32| (x - y).abs() / x.abs().max(y.abs()).max(1.0);
            assert!(rel(av_l2, l2_sq_scalar(&a, &b)) < 1e-4, "l2 len={len}");
            assert!(rel(av_ip, ip_scalar(&a, &b)) < 1e-4, "ip len={len}");
        }
    }
}
