//! Dense vector storage.
//!
//! [`VectorStore`] is the canonical in-memory representation used everywhere
//! in Harmony: a row-major `f32` matrix plus a parallel array of stable
//! [`VectorId`]s. Harmony's dimension-based partitioning cuts stores into
//! *dimension slices* ([`VectorStore::slice_dims`]), and vector-based
//! partitioning cuts them into *row subsets* ([`VectorStore::gather`]); both
//! produce new owned stores so each simulated machine holds exactly the bytes
//! the paper's layout assigns to it (§4.2.2, Fig. 4).

use crate::distance::DimRange;
use crate::error::IndexError;

/// Stable identifier of a base vector. Survives partitioning and shuffling.
pub type VectorId = u64;

/// A dense, row-major matrix of `f32` vectors with stable ids.
///
/// Invariants (checked in debug builds, preserved by every method):
/// * `data.len() == ids.len() * dim`
/// * `dim > 0` once any vector has been pushed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VectorStore {
    dim: usize,
    data: Vec<f32>,
    ids: Vec<VectorId>,
}

impl VectorStore {
    /// Creates an empty store for vectors of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            data: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Creates an empty store with room for `capacity` vectors.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        Self {
            dim,
            data: Vec::with_capacity(dim * capacity),
            ids: Vec::with_capacity(capacity),
        }
    }

    /// Builds a store from a flat row-major buffer, assigning ids `0..n`.
    ///
    /// # Errors
    /// Returns [`IndexError::InvalidParameter`] if `data.len()` is not a
    /// multiple of `dim` or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self, IndexError> {
        if dim == 0 {
            return Err(IndexError::InvalidParameter("dim must be > 0".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(IndexError::InvalidParameter(format!(
                "flat buffer of len {} is not a multiple of dim {}",
                data.len(),
                dim
            )));
        }
        let n = data.len() / dim;
        Ok(Self {
            dim,
            data,
            ids: (0..n as VectorId).collect(),
        })
    }

    /// Builds a store from a flat buffer with explicit ids.
    ///
    /// # Errors
    /// Returns [`IndexError::InvalidParameter`] on shape mismatch.
    pub fn from_flat_with_ids(
        dim: usize,
        data: Vec<f32>,
        ids: Vec<VectorId>,
    ) -> Result<Self, IndexError> {
        if dim == 0 {
            return Err(IndexError::InvalidParameter("dim must be > 0".into()));
        }
        if data.len() != ids.len() * dim {
            return Err(IndexError::InvalidParameter(format!(
                "flat buffer of len {} does not match {} ids x dim {}",
                data.len(),
                ids.len(),
                dim
            )));
        }
        Ok(Self { dim, data, ids })
    }

    /// Dimensionality of the stored vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The stable ids, in row order.
    #[inline]
    pub fn ids(&self) -> &[VectorId] {
        &self.ids
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Borrow row `row` as a slice of length `dim`.
    ///
    /// # Panics
    /// Panics if `row >= self.len()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        let start = row * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Mutable access to row `row`.
    ///
    /// # Panics
    /// Panics if `row >= self.len()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let start = row * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// Borrow the dimension sub-range `range` of row `row`.
    ///
    /// # Panics
    /// Panics if the row or range is out of bounds.
    #[inline]
    pub fn row_range(&self, row: usize, range: DimRange) -> &[f32] {
        debug_assert!(range.end <= self.dim);
        let start = row * self.dim;
        &self.data[start + range.start..start + range.end]
    }

    /// The id of row `row`.
    ///
    /// # Panics
    /// Panics if `row >= self.len()`.
    #[inline]
    pub fn id(&self, row: usize) -> VectorId {
        self.ids[row]
    }

    /// Appends a vector with the given id.
    ///
    /// # Errors
    /// Returns [`IndexError::DimensionMismatch`] if `vector.len() != dim`.
    pub fn push(&mut self, id: VectorId, vector: &[f32]) -> Result<(), IndexError> {
        if vector.len() != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: vector.len(),
            });
        }
        self.data.extend_from_slice(vector);
        self.ids.push(id);
        Ok(())
    }

    /// Appends every row of `other`.
    ///
    /// # Errors
    /// Returns [`IndexError::DimensionMismatch`] if dimensionalities differ.
    pub fn extend_from(&mut self, other: &VectorStore) -> Result<(), IndexError> {
        if other.dim != self.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        self.data.extend_from_slice(&other.data);
        self.ids.extend_from_slice(&other.ids);
        Ok(())
    }

    /// Returns a new store containing only the dimension range `range` of
    /// every vector (dimension-based partitioning: block `D_j`).
    ///
    /// Ids are preserved so partial results can be joined across machines.
    ///
    /// # Panics
    /// Panics if `range` is out of bounds or empty.
    pub fn slice_dims(&self, range: DimRange) -> VectorStore {
        assert!(range.start < range.end && range.end <= self.dim);
        let sub_dim = range.len();
        let mut data = Vec::with_capacity(sub_dim * self.len());
        for row in 0..self.len() {
            data.extend_from_slice(self.row_range(row, range));
        }
        VectorStore {
            dim: sub_dim,
            data,
            ids: self.ids.clone(),
        }
    }

    /// Returns a new store containing the given rows, in order
    /// (vector-based partitioning: shard `V_i`).
    ///
    /// # Panics
    /// Panics if any row index is out of bounds.
    pub fn gather(&self, rows: &[usize]) -> VectorStore {
        let mut out = VectorStore::with_capacity(self.dim, rows.len());
        for &r in rows {
            out.data.extend_from_slice(self.row(r));
            out.ids.push(self.ids[r]);
        }
        out
    }

    /// In-place L2 normalization of every row (used for cosine similarity).
    ///
    /// Zero vectors are left untouched.
    pub fn normalize(&mut self) {
        for row in 0..self.len() {
            let r = self.row_mut(row);
            let norm_sq: f32 = r.iter().map(|x| x * x).sum();
            if norm_sq > 0.0 {
                let inv = norm_sq.sqrt().recip();
                for x in r.iter_mut() {
                    *x *= inv;
                }
            }
        }
    }

    /// Per-row squared L2 norm restricted to `range`.
    ///
    /// Used to precompute the residual norms that make inner-product pruning
    /// admissible (Cauchy–Schwarz bound, see `harmony-core::pruning`).
    pub fn norms_sq_range(&self, range: DimRange) -> Vec<f32> {
        (0..self.len())
            .map(|row| {
                self.row_range(row, range)
                    .iter()
                    .map(|x| x * x)
                    .sum::<f32>()
            })
            .collect()
    }

    /// Heap memory held by this store, in bytes (data + ids).
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
            + self.ids.capacity() * std::mem::size_of::<VectorId>()
    }

    /// Iterator over `(id, row_slice)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VectorId, &[f32])> + '_ {
        self.ids
            .iter()
            .copied()
            .zip(self.data.chunks_exact(self.dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VectorStore {
        VectorStore::from_flat(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap()
    }

    #[test]
    fn from_flat_assigns_sequential_ids() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.ids(), &[0, 1, 2]);
        assert_eq!(s.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_rejects_bad_shapes() {
        assert!(VectorStore::from_flat(0, vec![]).is_err());
        assert!(VectorStore::from_flat(3, vec![1.0, 2.0]).is_err());
        assert!(VectorStore::from_flat_with_ids(2, vec![1.0, 2.0], vec![7, 8]).is_err());
    }

    #[test]
    fn push_checks_dimension() {
        let mut s = VectorStore::new(2);
        assert!(s.push(10, &[1.0, 2.0]).is_ok());
        assert_eq!(
            s.push(11, &[1.0]),
            Err(IndexError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.id(0), 10);
    }

    #[test]
    fn slice_dims_extracts_column_block() {
        let s = sample();
        let d = s.slice_dims(DimRange::new(1, 3));
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.row(0), &[2.0, 3.0]);
        assert_eq!(d.row(2), &[8.0, 9.0]);
        assert_eq!(d.ids(), s.ids());
    }

    #[test]
    fn gather_extracts_rows_and_ids() {
        let s = sample();
        let g = s.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(g.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(g.ids(), &[2, 0]);
    }

    #[test]
    fn slice_then_gather_commutes_with_gather_then_slice() {
        let s = sample();
        let a = s.slice_dims(DimRange::new(0, 2)).gather(&[1, 2]);
        let b = s.gather(&[1, 2]).slice_dims(DimRange::new(0, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_produces_unit_rows() {
        let mut s = VectorStore::from_flat(2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        s.normalize();
        assert!((s.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((s.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero vector untouched.
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn norms_sq_range_matches_manual() {
        let s = sample();
        let norms = s.norms_sq_range(DimRange::new(1, 3));
        assert!((norms[0] - (4.0 + 9.0)).abs() < 1e-6);
        assert!((norms[2] - (64.0 + 81.0)).abs() < 1e-6);
    }

    #[test]
    fn row_range_borrows_correct_window() {
        let s = sample();
        assert_eq!(s.row_range(1, DimRange::new(0, 1)), &[4.0]);
        assert_eq!(s.row_range(1, DimRange::new(2, 3)), &[6.0]);
    }

    #[test]
    fn extend_from_appends_rows() {
        let mut a = sample();
        let b = VectorStore::from_flat_with_ids(3, vec![0.0; 3], vec![99]).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.id(3), 99);
        let c = VectorStore::new(5);
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn iter_yields_id_row_pairs() {
        let s = sample();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[1].0, 1);
        assert_eq!(pairs[1].1, &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn memory_bytes_counts_buffers() {
        let s = sample();
        assert!(s.memory_bytes() >= 9 * 4 + 3 * 8);
    }
}
