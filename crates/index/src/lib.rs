//! # harmony-index
//!
//! ANN indexing substrate for the Harmony distributed vector database.
//!
//! This crate provides the single-node building blocks that the distributed
//! layers (`harmony-core`, `harmony-baseline`) compose:
//!
//! * [`vector::VectorStore`] — a dense, row-major `f32` matrix with stable
//!   vector ids and cheap dimension-slice views,
//! * [`distance`] — full-range and *dimension-range partial* distance kernels
//!   (scalar reference implementations plus runtime-detected AVX2 variants),
//! * [`topk`] — a bounded max-heap tracking the current top-*k* candidates and
//!   the pruning threshold `τ²` used by Harmony's early-stop mechanism,
//! * [`kmeans`] — seeded k-means++ / Lloyd clustering shared by every engine
//!   in the evaluation (the paper mandates identical clustering across all
//!   compared systems, §6.1),
//! * [`delta`] — append-only delta lists and tombstone sets backing the
//!   mutable-shard ingestion path,
//! * [`flat`] — an exact brute-force index used for ground truth,
//! * [`ivf`] — the IVF-Flat cluster-based index that Harmony partitions and
//!   distributes.
//!
//! All randomized entry points take explicit seeds; given the same seed the
//! results are deterministic across runs and thread counts.

// New unsafe code must state its obligations: each unsafe operation inside
// an `unsafe fn` needs its own block (and a `// SAFETY:` comment, enforced
// by harmony-lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod delta;
pub mod distance;
pub mod error;
pub mod flat;
pub mod ivf;
pub mod kmeans;
pub mod persist;
pub mod quant;
pub mod tier;
pub mod topk;
pub mod vector;

pub use delta::{DeltaList, TombstoneSet};
pub use distance::{DimRange, Metric};
pub use error::IndexError;
pub use flat::FlatIndex;
pub use ivf::{IvfIndex, IvfParams};
pub use kmeans::{KMeans, KMeansConfig};
pub use quant::{BlockRepr, Sq8BlockQuery, Sq8Query, Sq8Segment};
pub use tier::{AccessEwma, BlockCache, Temperature};
pub use topk::{Neighbor, TopK};
pub use vector::{VectorId, VectorStore};
