//! Seeded k-means clustering (k-means++ initialization + Lloyd iterations).
//!
//! Every engine in the Harmony evaluation — Faiss-like single-node, the three
//! Harmony distribution modes, and the Auncel-like baseline — must share "the
//! same clustering algorithm and number of clusters" (paper §6.1) so that the
//! measured differences come from the distribution strategy alone. This
//! module is that shared algorithm.
//!
//! Determinism: given the same data and [`KMeansConfig::seed`], training
//! produces bit-identical centroids regardless of available parallelism.
//! Assignment (the O(n·k·d) part) is parallelized over points, which is
//! order-independent; centroid accumulation runs serially in row order.

use rand::distr::weighted::WeightedIndex;
use rand::prelude::*;

use crate::distance::{l2_sq, Metric};
use crate::error::IndexError;
use crate::vector::VectorStore;

/// Configuration for k-means training.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters (`nlist` in IVF terms).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Relative improvement in inertia below which training stops early.
    pub tol: f64,
    /// RNG seed; equal seeds give bit-identical results.
    pub seed: u64,
    /// If set, train on at most `k * samples_per_centroid` points sampled
    /// uniformly (Faiss-style subsampling for large datasets).
    pub samples_per_centroid: Option<usize>,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 16,
            max_iters: 20,
            tol: 1e-4,
            seed: 0x4A12_9E55,
            samples_per_centroid: Some(256),
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor fixing `k` and `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            seed,
            ..Self::default()
        }
    }
}

/// A trained k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// The `k` centroids (ids are `0..k`).
    pub centroids: VectorStore,
    /// Final inertia: sum of squared distances of training points to their
    /// assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations actually executed.
    pub iterations: usize,
}

impl KMeans {
    /// Trains k-means on `data`.
    ///
    /// # Errors
    /// * [`IndexError::InvalidParameter`] if `k == 0` or `max_iters == 0`.
    /// * [`IndexError::NotEnoughData`] if `data.len() < k`.
    pub fn train(data: &VectorStore, cfg: &KMeansConfig) -> Result<Self, IndexError> {
        if cfg.k == 0 {
            return Err(IndexError::InvalidParameter("k must be > 0".into()));
        }
        if cfg.max_iters == 0 {
            return Err(IndexError::InvalidParameter("max_iters must be > 0".into()));
        }
        if data.len() < cfg.k {
            return Err(IndexError::NotEnoughData {
                required: cfg.k,
                available: data.len(),
            });
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Optional subsampling, Faiss-style.
        let sampled;
        let train_data: &VectorStore = match cfg.samples_per_centroid {
            Some(spc) if data.len() > cfg.k * spc => {
                let want = cfg.k * spc;
                let mut rows: Vec<usize> = (0..data.len()).collect();
                rows.shuffle(&mut rng);
                rows.truncate(want);
                rows.sort_unstable();
                sampled = data.gather(&rows);
                &sampled
            }
            _ => data,
        };

        let mut centroids = kmeans_pp_init(train_data, cfg.k, &mut rng);
        let mut assignments = vec![0u32; train_data.len()];
        let mut prev_inertia = f64::INFINITY;
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;

        for iter in 0..cfg.max_iters {
            iterations = iter + 1;
            inertia = assign_into(train_data, &centroids, &mut assignments);
            recompute_centroids(train_data, &assignments, &mut centroids, &mut rng);
            if prev_inertia.is_finite() {
                let denom = prev_inertia.abs().max(f64::MIN_POSITIVE);
                if (prev_inertia - inertia) / denom < cfg.tol {
                    break;
                }
            }
            prev_inertia = inertia;
        }

        Ok(Self {
            centroids,
            inertia,
            iterations,
        })
    }

    /// Assigns every row of `data` to its nearest centroid.
    pub fn assign(&self, data: &VectorStore) -> Vec<u32> {
        let mut out = vec![0u32; data.len()];
        assign_into(data, &self.centroids, &mut out);
        out
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007).
fn kmeans_pp_init(data: &VectorStore, k: usize, rng: &mut StdRng) -> VectorStore {
    let n = data.len();
    let mut centroids = VectorStore::with_capacity(data.dim(), k);
    let first = rng.random_range(0..n);
    centroids
        .push(0, data.row(first))
        .expect("dims match by construction");

    // d2[i] = squared distance of point i to its closest chosen centroid.
    let mut d2: Vec<f32> = (0..n)
        .map(|i| l2_sq(data.row(i), centroids.row(0)))
        .collect();

    for c in 1..k {
        let total: f64 = d2.iter().map(|&x| x as f64).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with chosen centroids; pick any.
            rng.random_range(0..n)
        } else {
            let dist = WeightedIndex::new(d2.iter().map(|&x| x as f64 + 1e-12))
                .expect("weights are positive");
            dist.sample(rng)
        };
        centroids
            .push(c as u64, data.row(next))
            .expect("dims match by construction");
        let new_row = centroids.row(c);
        for (i, best) in d2.iter_mut().enumerate() {
            let d = l2_sq(data.row(i), new_row);
            if d < *best {
                *best = d;
            }
        }
    }
    centroids
}

/// Parallel nearest-centroid assignment; returns the inertia.
fn assign_into(data: &VectorStore, centroids: &VectorStore, out: &mut [u32]) -> f64 {
    debug_assert_eq!(out.len(), data.len());
    let threads = available_threads();
    let chunk = data.len().div_ceil(threads).max(1);
    let inertia_parts: Vec<f64> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, out_chunk)| {
                let start = ci * chunk;
                s.spawn(move |_| {
                    let mut local = 0.0f64;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let row = data.row(start + off);
                        let (best, best_d) = nearest_centroid(row, centroids);
                        *slot = best;
                        local += best_d as f64;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("assignment worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    inertia_parts.into_iter().sum()
}

/// Index and squared distance of the centroid nearest to `row`.
pub fn nearest_centroid(row: &[f32], centroids: &VectorStore) -> (u32, f32) {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.len() {
        let d = l2_sq(row, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    (best, best_d)
}

/// Indices of the `nprobe` centroids nearest to `row`, best first.
pub fn nearest_centroids(row: &[f32], centroids: &VectorStore, nprobe: usize) -> Vec<u32> {
    let mut scored: Vec<(f32, u32)> = (0..centroids.len())
        .map(|c| (Metric::L2.score(row, centroids.row(c)), c as u32))
        .collect();
    let n = nprobe.min(scored.len());
    scored.select_nth_unstable_by(n.saturating_sub(1), |a, b| {
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
    });
    scored.truncate(n);
    scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, c)| c).collect()
}

/// Lloyd update: recompute centroids as assigned-point means; empty clusters
/// are re-seeded from random points of the largest cluster.
fn recompute_centroids(
    data: &VectorStore,
    assignments: &[u32],
    centroids: &mut VectorStore,
    rng: &mut StdRng,
) {
    let k = centroids.len();
    let dim = data.dim();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (row, &a) in assignments.iter().enumerate() {
        let a = a as usize;
        counts[a] += 1;
        let r = data.row(row);
        let s = &mut sums[a * dim..(a + 1) * dim];
        for (acc, &x) in s.iter_mut().zip(r) {
            *acc += x as f64;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            // Empty-cluster repair: re-seed from a random member of the
            // largest cluster, nudged to break the tie deterministically.
            let largest = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let members: Vec<usize> = assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a as usize == largest)
                .map(|(i, _)| i)
                .collect();
            if let Some(&pick) = members.as_slice().choose(rng) {
                let src = data.row(pick).to_vec();
                centroids.row_mut(c).copy_from_slice(&src);
            }
            continue;
        }
        let inv = 1.0 / counts[c] as f64;
        let dst = centroids.row_mut(c);
        let s = &sums[c * dim..(c + 1) * dim];
        for (d, &acc) in dst.iter_mut().zip(s) {
            *d = (acc * inv) as f32;
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs(seed: u64, per_blob: usize) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut store = VectorStore::with_capacity(2, per_blob * 3);
        let mut id = 0u64;
        for c in centers {
            for _ in 0..per_blob {
                let v = [
                    c[0] + rng.random_range(-0.5..0.5f32),
                    c[1] + rng.random_range(-0.5..0.5f32),
                ];
                store.push(id, &v).unwrap();
                id += 1;
            }
        }
        store
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs(1, 50);
        let km = KMeans::train(&data, &KMeansConfig::new(3, 42)).unwrap();
        assert_eq!(km.k(), 3);
        // Every blob should map to a single distinct centroid.
        let assignments = km.assign(&data);
        for blob in 0..3 {
            let labels: std::collections::HashSet<u32> = assignments[blob * 50..(blob + 1) * 50]
                .iter()
                .copied()
                .collect();
            assert_eq!(labels.len(), 1, "blob {blob} split across centroids");
        }
        // Inertia of well-separated tight blobs is small.
        assert!(km.inertia < 150.0 * 1.0, "inertia {}", km.inertia);
    }

    #[test]
    fn deterministic_across_runs() {
        let data = blobs(2, 40);
        let a = KMeans::train(&data, &KMeansConfig::new(4, 7)).unwrap();
        let b = KMeans::train(&data, &KMeansConfig::new(4, 7)).unwrap();
        assert_eq!(a.centroids.as_flat(), b.centroids.as_flat());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn different_seeds_may_differ_but_both_valid() {
        let data = blobs(3, 40);
        let a = KMeans::train(&data, &KMeansConfig::new(3, 1)).unwrap();
        let b = KMeans::train(&data, &KMeansConfig::new(3, 2)).unwrap();
        assert_eq!(a.k(), 3);
        assert_eq!(b.k(), 3);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let data = blobs(4, 5);
        assert!(matches!(
            KMeans::train(&data, &KMeansConfig::new(0, 0)),
            Err(IndexError::InvalidParameter(_))
        ));
        assert!(matches!(
            KMeans::train(&data, &KMeansConfig::new(1000, 0)),
            Err(IndexError::NotEnoughData { .. })
        ));
        let cfg = KMeansConfig {
            max_iters: 0,
            ..KMeansConfig::new(2, 0)
        };
        assert!(matches!(
            KMeans::train(&data, &cfg),
            Err(IndexError::InvalidParameter(_))
        ));
    }

    #[test]
    fn assignment_matches_nearest_centroid() {
        let data = blobs(5, 30);
        let km = KMeans::train(&data, &KMeansConfig::new(3, 11)).unwrap();
        let assignments = km.assign(&data);
        for (row, &assigned) in assignments.iter().enumerate() {
            let (best, _) = nearest_centroid(data.row(row), &km.centroids);
            assert_eq!(assigned, best, "row {row}");
        }
    }

    #[test]
    fn nearest_centroids_returns_sorted_probe_list() {
        let centroids = VectorStore::from_flat(1, vec![0.0, 10.0, 20.0, 30.0]).unwrap();
        let probes = nearest_centroids(&[11.0], &centroids, 3);
        assert_eq!(probes, vec![1, 2, 0]);
        // nprobe larger than nlist clamps.
        let probes = nearest_centroids(&[11.0], &centroids, 99);
        assert_eq!(probes.len(), 4);
    }

    #[test]
    fn handles_duplicate_points() {
        // All points identical: k-means must not crash or loop forever.
        let data = VectorStore::from_flat(2, vec![1.0; 20]).unwrap();
        let km = KMeans::train(&data, &KMeansConfig::new(3, 5)).unwrap();
        assert_eq!(km.k(), 3);
        assert!(km.inertia < 1e-6);
    }

    #[test]
    fn subsampling_still_trains() {
        let data = blobs(6, 100);
        let cfg = KMeansConfig {
            samples_per_centroid: Some(8),
            ..KMeansConfig::new(3, 9)
        };
        let km = KMeans::train(&data, &cfg).unwrap();
        assert_eq!(km.k(), 3);
        // Assignments on the full data still separate the blobs decently:
        // at least two distinct labels must appear.
        let labels: std::collections::HashSet<u32> = km.assign(&data).into_iter().collect();
        assert!(labels.len() >= 2);
    }
}
