//! Error types for index construction and search.

use std::fmt;

/// Errors produced by index building and searching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A vector had a different dimensionality than the index.
    DimensionMismatch {
        /// Dimensionality the index expects.
        expected: usize,
        /// Dimensionality that was provided.
        actual: usize,
    },
    /// The index has not been trained yet (no centroids).
    NotTrained,
    /// The requested parameter is outside the valid range.
    InvalidParameter(String),
    /// The operation needs more data than is available.
    NotEnoughData {
        /// Number of items required.
        required: usize,
        /// Number of items available.
        available: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            IndexError::NotTrained => write!(f, "index is not trained"),
            IndexError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            IndexError::NotEnoughData {
                required,
                available,
            } => write!(
                f,
                "not enough data: required {required}, available {available}"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = IndexError::DimensionMismatch {
            expected: 128,
            actual: 64,
        };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("64"));
        assert_eq!(IndexError::NotTrained.to_string(), "index is not trained");
        assert!(IndexError::InvalidParameter("nlist must be > 0".into())
            .to_string()
            .contains("nlist"));
        let e = IndexError::NotEnoughData {
            required: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains("3"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(IndexError::NotTrained);
        assert_eq!(e.to_string(), "index is not trained");
    }
}
