//! Temperature tiering primitives for multi-tenant residency control.
//!
//! HARMONY's original design keeps one dataset fully RAM-resident; serving
//! many tenants on fixed hardware inverts that assumption — most
//! namespaces are cold most of the time. This module supplies the three
//! building blocks the worker composes into a tiered block store:
//!
//! * [`Temperature`] — the per-namespace residency tier and its legal
//!   transitions (any tier may move to any other; the *mechanics* differ),
//! * [`BlockCache`] — a byte-budgeted LRU over opaque block keys. The
//!   cache tracks recency and budget only; the owner holds the payloads
//!   and evicts exactly the keys this cache returns, so resident-byte
//!   gauges stay exact,
//! * [`AccessEwma`] — an exponentially-weighted access rate per namespace
//!   driving automatic promote/demote sweeps.
//!
//! The tier state machine (DESIGN.md §8):
//!
//! ```text
//!            demote                 demote
//!   Hot ───────────────▶ Warm ───────────────▶ Cold
//!    ▲   (spill, cache)   │    (drop payload)    │
//!    │                    │ fault on visit       │ fault on visit
//!    └────────────────────┴─────────◀────────────┘
//!            promote (fault all + pin)
//! ```
//!
//! Hot blocks are pinned RAM residents and never appear in the cache.
//! Warm/cold blocks live on disk as length-checked block files (see
//! [`crate::persist::save_block_file`]); a query visit faults the block
//! back, inserts it at the cache's MRU end, and evicts least-recent
//! entries past the byte budget. Faulting a spilled block back is a pure
//! byte round-trip, so search results are bit-identical across tiers.

use std::collections::VecDeque;

/// Residency tier of one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Temperature {
    /// RAM-resident and pinned: never cached, never evicted.
    #[default]
    Hot,
    /// Spilled to disk with payloads retained in the LRU cache up to the
    /// byte budget; faulted back on demand.
    Warm,
    /// Spilled to disk with payloads dropped immediately; every visit
    /// faults through the cache.
    Cold,
}

impl Temperature {
    /// Wire tag of the tier.
    pub fn encode(self) -> u8 {
        match self {
            Temperature::Hot => 0,
            Temperature::Warm => 1,
            Temperature::Cold => 2,
        }
    }

    /// Decodes a wire tag; unknown tags are rejected.
    pub fn decode(tag: u8) -> Option<Temperature> {
        match tag {
            0 => Some(Temperature::Hot),
            1 => Some(Temperature::Warm),
            2 => Some(Temperature::Cold),
            _ => None,
        }
    }

    /// Whether blocks of this tier are pinned in RAM.
    pub fn is_pinned(self) -> bool {
        matches!(self, Temperature::Hot)
    }

    /// Short lowercase label for reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            Temperature::Hot => "hot",
            Temperature::Warm => "warm",
            Temperature::Cold => "cold",
        }
    }
}

/// A byte-budgeted LRU over opaque block keys.
///
/// The cache does not own payloads: [`BlockCache::insert`] records a key
/// with its resident size and returns every key pushed past the budget —
/// the caller drops those payloads (and adjusts its gauges) itself. This
/// split keeps the accounting exact: bytes leave the gauge in the same
/// call stack that frees them.
#[derive(Debug)]
pub struct BlockCache<K: Eq + Clone> {
    /// Byte budget; 0 admits nothing (every insert evicts itself).
    budget: usize,
    /// Resident bytes currently tracked.
    resident: usize,
    /// LRU order: front = least recent, back = most recent.
    entries: VecDeque<(K, usize)>,
}

impl<K: Eq + Clone> BlockCache<K> {
    /// Creates an empty cache with the given byte budget.
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            resident: 0,
            entries: VecDeque::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently tracked as resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache tracks no blocks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is currently cached.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Marks `key` most-recently-used. Returns `false` if it is not cached.
    pub fn touch(&mut self, key: &K) -> bool {
        let Some(pos) = self.entries.iter().position(|(k, _)| k == key) else {
            return false;
        };
        let Some(entry) = self.entries.remove(pos) else {
            return false;
        };
        self.entries.push_back(entry);
        true
    }

    /// Inserts (or refreshes) `key` with `bytes` resident bytes at the MRU
    /// end, then evicts least-recent entries until the budget holds.
    /// Returns the evicted keys, oldest first — which may include `key`
    /// itself when it alone exceeds the budget.
    pub fn insert(&mut self, key: K, bytes: usize) -> Vec<K> {
        self.remove(&key);
        self.entries.push_back((key, bytes));
        self.resident += bytes;
        let mut evicted = Vec::new();
        while self.resident > self.budget {
            let Some((k, b)) = self.entries.pop_front() else {
                break;
            };
            self.resident -= b;
            evicted.push(k);
        }
        evicted
    }

    /// Removes `key` without treating it as an eviction. Returns its
    /// tracked size, or `None` if absent.
    pub fn remove(&mut self, key: &K) -> Option<usize> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let (_, bytes) = self.entries.remove(pos)?;
        self.resident -= bytes;
        Some(bytes)
    }

    /// Removes every key matching the predicate (namespace teardown /
    /// epoch eviction), returning `(keys, total bytes)`.
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> (Vec<K>, usize) {
        let mut removed = Vec::new();
        let mut bytes = 0usize;
        self.entries.retain(|(k, b)| {
            if pred(k) {
                removed.push(k.clone());
                bytes += *b;
                false
            } else {
                true
            }
        });
        self.resident -= bytes;
        (removed, bytes)
    }
}

/// Exponentially-weighted per-namespace access rate.
///
/// Each recorded access adds 1; each [`AccessEwma::decay`] sweep multiplies
/// the accumulated rate by `alpha` (0 < alpha < 1). A namespace that stops
/// being queried decays geometrically toward 0, which an automatic sweep
/// compares against promote/demote thresholds.
#[derive(Debug, Clone)]
pub struct AccessEwma {
    rate: f64,
    alpha: f64,
}

impl AccessEwma {
    /// Creates a zero-rate tracker with decay factor `alpha`, clamped into
    /// `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        Self {
            rate: 0.0,
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON),
        }
    }

    /// Records `n` accesses.
    pub fn record(&mut self, n: u64) {
        self.rate += n as f64;
    }

    /// Applies one decay sweep.
    pub fn decay(&mut self) {
        self.rate *= self.alpha;
    }

    /// The current smoothed access rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_tags_roundtrip_and_reject_unknown() {
        for t in [Temperature::Hot, Temperature::Warm, Temperature::Cold] {
            assert_eq!(Temperature::decode(t.encode()), Some(t));
        }
        assert_eq!(Temperature::decode(3), None);
        assert_eq!(Temperature::decode(255), None);
        assert!(Temperature::Hot.is_pinned());
        assert!(!Temperature::Warm.is_pinned());
        assert!(!Temperature::Cold.is_pinned());
    }

    #[test]
    fn cache_evicts_least_recent_past_budget() {
        let mut cache: BlockCache<u32> = BlockCache::new(100);
        assert!(cache.insert(1, 40).is_empty());
        assert!(cache.insert(2, 40).is_empty());
        // Key 1 is LRU; inserting 3 pushes resident to 120 > 100.
        assert_eq!(cache.insert(3, 40), vec![1]);
        assert_eq!(cache.resident_bytes(), 80);
        assert!(!cache.contains(&1));
        assert!(cache.contains(&2) && cache.contains(&3));
    }

    #[test]
    fn touch_reorders_recency() {
        let mut cache: BlockCache<u32> = BlockCache::new(100);
        cache.insert(1, 40);
        cache.insert(2, 40);
        assert!(cache.touch(&1));
        // Now 2 is least recent and goes first.
        assert_eq!(cache.insert(3, 40), vec![2]);
        assert!(!cache.touch(&99));
    }

    #[test]
    fn oversized_insert_evicts_itself() {
        let mut cache: BlockCache<u32> = BlockCache::new(50);
        let evicted = cache.insert(7, 80);
        assert_eq!(evicted, vec![7]);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
        // Zero-budget caches admit nothing.
        let mut none: BlockCache<u32> = BlockCache::new(0);
        assert_eq!(none.insert(1, 1), vec![1]);
    }

    #[test]
    fn reinsert_replaces_tracked_size() {
        let mut cache: BlockCache<u32> = BlockCache::new(100);
        cache.insert(1, 60);
        cache.insert(1, 30);
        assert_eq!(cache.resident_bytes(), 30);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.remove(&1), Some(30));
        assert_eq!(cache.remove(&1), None);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn remove_matching_clears_a_namespace() {
        let mut cache: BlockCache<(u16, u32)> = BlockCache::new(1000);
        cache.insert((1, 0), 10);
        cache.insert((2, 0), 20);
        cache.insert((1, 1), 30);
        let (keys, bytes) = cache.remove_matching(|&(ns, _)| ns == 1);
        assert_eq!(keys.len(), 2);
        assert_eq!(bytes, 40);
        assert_eq!(cache.resident_bytes(), 20);
        assert!(cache.contains(&(2, 0)));
    }

    #[test]
    fn ewma_decays_idle_namespaces() {
        let mut hot = AccessEwma::new(0.5);
        let mut idle = AccessEwma::new(0.5);
        hot.record(8);
        idle.record(8);
        for _ in 0..4 {
            hot.decay();
            hot.record(8); // keeps being queried
            idle.decay(); // never queried again
        }
        assert!(hot.rate() > 8.0);
        assert!(idle.rate() < 1.0);
        // Degenerate alphas are clamped, not panicking.
        let mut c = AccessEwma::new(7.0);
        c.record(1);
        c.decay();
        assert!(c.rate() < 1.0);
    }
}
