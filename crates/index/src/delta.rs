//! Mutable-shard ingestion structures: delta lists and tombstones.
//!
//! Harmony's grid blocks are immutable once loaded; fresh upserts land in a
//! per-shard [`DeltaList`] instead — an append-only, row-major f32 side
//! table scanned *exactly* (no quantization) alongside the probed IVF
//! lists, so recall on fresh data is 1.0 by construction. Deletes are soft:
//! a [`TombstoneSet`] maps vector id → delete sequence number and is
//! consulted only when a candidate is about to be emitted, never by
//! mutating the stored lists (positional candidate enumeration must stay
//! identical across every machine of a shard row).
//!
//! Both structures are folded away by compaction: delta rows move into
//! their home IVF lists, tombstoned rows are dropped, and the compacted
//! blocks are published under a fresh routing epoch.

/// Append-only store of freshly upserted rows for one shard, restricted to
/// one machine's dimension slice.
///
/// Rows carry the ingest *sequence number* they were upserted at. Queries
/// are admitted with a delta watermark and scan only rows with
/// `seq < watermark`, so every machine of a pipelined shard row enumerates
/// the exact same delta candidates even while new upserts race in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaList {
    width: usize,
    ids: Vec<u64>,
    seqs: Vec<u64>,
    flat: Vec<f32>,
    block_norms_sq: Vec<f32>,
    total_norms_sq: Vec<f32>,
}

impl DeltaList {
    /// Creates an empty delta list whose rows are `width` coordinates wide.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            width,
            ..Self::default()
        }
    }

    /// Row width in coordinates (the machine's dimension-slice width).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of delta rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends one row.
    ///
    /// `block_norm_sq` / `total_norm_sq` are only meaningful under
    /// inner-product metrics; pass 0.0 under L2.
    ///
    /// # Panics
    /// If `row.len() != width`.
    pub fn push(&mut self, id: u64, seq: u64, row: &[f32], block_norm_sq: f32, total_norm_sq: f32) {
        assert_eq!(row.len(), self.width, "delta row width mismatch");
        self.ids.push(id);
        self.seqs.push(seq);
        self.flat.extend_from_slice(row);
        self.block_norms_sq.push(block_norm_sq);
        self.total_norms_sq.push(total_norm_sq);
    }

    /// Vector id of row `i`.
    #[must_use]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Ingest sequence number of row `i`.
    #[must_use]
    pub fn seq(&self, i: usize) -> u64 {
        self.seqs[i]
    }

    /// Coordinates of row `i` (this machine's dimension slice).
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.flat[i * self.width..(i + 1) * self.width]
    }

    /// Squared norm of row `i` over this slice's coordinates.
    #[must_use]
    pub fn block_norm_sq(&self, i: usize) -> f32 {
        self.block_norms_sq[i]
    }

    /// Squared norm of row `i`'s full vector.
    #[must_use]
    pub fn total_norm_sq(&self, i: usize) -> f32 {
        self.total_norms_sq[i]
    }

    /// Heap bytes held by the payload vectors (gauge accounting).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.ids.len() * (8 + 8)
            + self.flat.len() * 4
            + (self.block_norms_sq.len() + self.total_norms_sq.len()) * 4
    }
}

/// Soft-delete set: vector id → the ingest sequence number of the delete.
///
/// The visibility rule has two halves:
/// * a *stored list* row is suppressed iff its id is present at all (list
///   rows predate every delta, so any tombstone outranks them);
/// * a *delta* row is suppressed iff the tombstone's sequence is newer than
///   the row's upsert sequence — a re-upsert after a delete stays visible
///   while the older stored row stays hidden.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TombstoneSet {
    map: std::collections::HashMap<u64, u64>,
}

impl TombstoneSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tombstoned ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no ids are tombstoned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Records a delete of `id` at sequence `seq`, keeping the newest.
    pub fn insert(&mut self, id: u64, seq: u64) {
        let e = self.map.entry(id).or_insert(seq);
        if *e < seq {
            *e = seq;
        }
    }

    /// Whether a *stored list* row with this id is suppressed.
    #[must_use]
    pub fn suppresses_list_row(&self, id: u64) -> bool {
        self.map.contains_key(&id)
    }

    /// Whether a *delta* row upserted at `row_seq` is suppressed.
    #[must_use]
    pub fn suppresses_delta_row(&self, id: u64, row_seq: u64) -> bool {
        self.map.get(&id).is_some_and(|&del| del > row_seq)
    }

    /// Iterates `(id, delete_seq)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&id, &seq)| (id, seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_list_appends_and_reads_back() {
        let mut d = DeltaList::new(3);
        d.push(10, 1, &[1.0, 2.0, 3.0], 14.0, 14.0);
        d.push(11, 2, &[4.0, 5.0, 6.0], 77.0, 80.0);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.width(), 3);
        assert_eq!(d.id(0), 10);
        assert_eq!(d.seq(1), 2);
        assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.block_norm_sq(1), 77.0);
        assert_eq!(d.total_norm_sq(1), 80.0);
        assert_eq!(d.memory_bytes(), 2 * 16 + 6 * 4 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "delta row width mismatch")]
    fn delta_list_rejects_wrong_width() {
        let mut d = DeltaList::new(2);
        d.push(1, 1, &[1.0], 0.0, 0.0);
    }

    #[test]
    fn tombstone_visibility_rule() {
        let mut t = TombstoneSet::new();
        assert!(t.is_empty());
        t.insert(7, 5);
        assert_eq!(t.len(), 1);
        // Stored list rows: any tombstone suppresses.
        assert!(t.suppresses_list_row(7));
        assert!(!t.suppresses_list_row(8));
        // Delta rows: only older-than-the-delete rows are suppressed.
        assert!(t.suppresses_delta_row(7, 3));
        assert!(!t.suppresses_delta_row(7, 5));
        assert!(!t.suppresses_delta_row(7, 9));
        assert!(!t.suppresses_delta_row(8, 0));
    }

    #[test]
    fn tombstone_keeps_newest_seq() {
        let mut t = TombstoneSet::new();
        t.insert(1, 10);
        t.insert(1, 4); // older delete must not regress the watermark
        assert!(t.suppresses_delta_row(1, 8));
        t.insert(1, 20);
        assert!(t.suppresses_delta_row(1, 15));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(1, 20)]);
    }
}
