//! Index persistence: a versioned, checksummed binary format for
//! [`IvfIndex`].
//!
//! Production deployments build indexes offline and ship them to serving
//! fleets; Harmony's pre-assign stage likewise benefits from loading a
//! trained index instead of re-clustering. The format is deliberately
//! simple and fully self-describing:
//!
//! ```text
//! magic "HIVF" | version u32 | metric u8 | dim u64 | nlist u64
//! centroids: nlist*dim f32 LE
//! per list:  len u64 | ids len*u64 | vectors len*dim f32 LE
//! trailer:   fnv1a-64 checksum of everything above
//! ```
//!
//! Readers validate magic, version, shapes, and checksum before
//! constructing the index, so a truncated or corrupted file can never
//! produce a silently-wrong index.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::distance::Metric;
use crate::ivf::{InvertedList, IvfIndex};
use crate::vector::VectorStore;

const MAGIC: &[u8; 4] = b"HIVF";
const VERSION: u32 = 1;

const DELTA_MAGIC: &[u8; 4] = b"HDLT";
const DELTA_VERSION: u32 = 1;

/// Errors from index persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structurally invalid or corrupted file.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Streaming FNV-1a 64 hasher for the integrity trailer.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Writer that hashes everything it writes.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }
    fn write_u32(&mut self, v: u32) -> io::Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }
    fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }
    fn write_f32s(&mut self, vs: &[f32]) -> io::Result<()> {
        for &v in vs {
            self.write_bytes(&v.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Reader that hashes everything it reads.
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> Result<(), PersistError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PersistError::Format("truncated index file".into())
            } else {
                PersistError::Io(e)
            }
        })?;
        self.hash.update(buf);
        Ok(())
    }
    fn read_u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.read_exact_hashed(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn read_u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn read_f32s(&mut self, n: usize) -> Result<Vec<f32>, PersistError> {
        let mut bytes = vec![0u8; n * 4];
        self.read_exact_hashed(&mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }
}

fn metric_to_tag(metric: Metric) -> u8 {
    match metric {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn metric_from_tag(tag: u8) -> Result<Metric, PersistError> {
    match tag {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        t => Err(PersistError::Format(format!("unknown metric tag {t}"))),
    }
}

/// Writes `index` to `path`.
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure.
pub fn save_ivf(index: &IvfIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut w = HashingWriter {
        inner: BufWriter::new(File::create(path)?),
        hash: Fnv1a::new(),
    };
    w.write_bytes(MAGIC)?;
    w.write_u32(VERSION)?;
    w.write_bytes(&[metric_to_tag(index.metric())])?;
    let dim = index.centroids().dim() as u64;
    w.write_u64(dim)?;
    w.write_u64(index.nlist() as u64)?;
    w.write_f32s(index.centroids().as_flat())?;
    for list in index.lists() {
        w.write_u64(list.len() as u64)?;
        for &id in list.vectors.ids() {
            w.write_u64(id)?;
        }
        w.write_f32s(list.vectors.as_flat())?;
    }
    let checksum = w.hash.0;
    w.inner.write_all(&checksum.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

/// Reads an index from `path`, validating structure and checksum.
///
/// # Errors
/// [`PersistError`] on IO failure, malformed structure, version mismatch,
/// or checksum mismatch.
pub fn load_ivf(path: impl AsRef<Path>) -> Result<IvfIndex, PersistError> {
    let mut r = HashingReader {
        inner: BufReader::new(File::open(path)?),
        hash: Fnv1a::new(),
    };
    let mut magic = [0u8; 4];
    r.read_exact_hashed(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "bad magic; not a Harmony index".into(),
        ));
    }
    let version = r.read_u32()?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let mut tag = [0u8; 1];
    r.read_exact_hashed(&mut tag)?;
    let metric = metric_from_tag(tag[0])?;
    let dim = r.read_u64()? as usize;
    let nlist = r.read_u64()? as usize;
    if dim == 0 || nlist == 0 || dim > 1 << 20 || nlist > 1 << 24 {
        return Err(PersistError::Format(format!(
            "implausible shape: dim {dim}, nlist {nlist}"
        )));
    }
    let centroids = VectorStore::from_flat(dim, r.read_f32s(nlist * dim)?)
        .map_err(|e| PersistError::Format(e.to_string()))?;

    let mut lists = Vec::with_capacity(nlist);
    for _ in 0..nlist {
        let len = r.read_u64()? as usize;
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            ids.push(r.read_u64()?);
        }
        let flat = r.read_f32s(len * dim)?;
        let vectors = VectorStore::from_flat_with_ids(dim, flat, ids)
            .map_err(|e| PersistError::Format(e.to_string()))?;
        lists.push(InvertedList { vectors });
    }

    let computed = r.hash.0;
    let mut trailer = [0u8; 8];
    r.inner
        .read_exact(&mut trailer)
        .map_err(|_| PersistError::Format("missing checksum trailer".into()))?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(PersistError::Format(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    // Reject trailing garbage.
    let mut extra = [0u8; 1];
    match r.inner.read(&mut extra) {
        Ok(0) => {}
        Ok(_) => return Err(PersistError::Format("trailing bytes after checksum".into())),
        Err(e) => return Err(PersistError::Io(e)),
    }

    Ok(IvfIndex::from_parts(metric, centroids, lists))
}

/// One pending (not yet compacted) upsert in a [`DeltaLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRecord {
    /// Vector id.
    pub id: u64,
    /// Home IVF list the row will fold into at compaction.
    pub cluster: u32,
    /// Ingest sequence number the row was upserted at.
    pub seq: u64,
    /// Full (unsliced) vector coordinates.
    pub vector: Vec<f32>,
}

/// Crash-consistency checkpoint of the ingest state *between* compactions:
/// the sequence watermark, the tombstone set, and every pending delta row.
///
/// The base index is persisted separately via [`save_ivf`]; replaying a
/// delta log on top of the matching base reconstructs the exact logical
/// state (live set and vector values) at checkpoint time, so a crash
/// mid-compaction loses nothing — the next process reloads the *old* base
/// plus the log and redoes the fold.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaLog {
    /// Next unused ingest sequence number.
    pub next_seq: u64,
    /// Vector dimensionality (validated against the base on replay).
    pub dim: u64,
    /// Tombstoned ids with their delete sequence numbers.
    pub tombstones: Vec<(u64, u64)>,
    /// Pending delta rows in upsert order.
    pub pending: Vec<DeltaRecord>,
}

/// Writes `log` to `path` atomically (tmp file + rename), with the same
/// FNV-1a-64 integrity trailer as the index format.
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure.
pub fn save_delta_log(log: &DeltaLog, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut w = HashingWriter {
            inner: BufWriter::new(File::create(&tmp)?),
            hash: Fnv1a::new(),
        };
        w.write_bytes(DELTA_MAGIC)?;
        w.write_u32(DELTA_VERSION)?;
        w.write_u64(log.next_seq)?;
        w.write_u64(log.dim)?;
        w.write_u64(log.tombstones.len() as u64)?;
        w.write_u64(log.pending.len() as u64)?;
        for &(id, seq) in &log.tombstones {
            w.write_u64(id)?;
            w.write_u64(seq)?;
        }
        for rec in &log.pending {
            w.write_u64(rec.id)?;
            w.write_u32(rec.cluster)?;
            w.write_u64(rec.seq)?;
            w.write_f32s(&rec.vector)?;
        }
        let checksum = w.hash.0;
        w.inner.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a delta log from `path`, validating structure and checksum.
///
/// # Errors
/// [`PersistError`] on IO failure, malformed structure, version mismatch,
/// or checksum mismatch — a torn or truncated checkpoint can never replay
/// as a silently-wrong ingest state.
pub fn load_delta_log(path: impl AsRef<Path>) -> Result<DeltaLog, PersistError> {
    let mut r = HashingReader {
        inner: BufReader::new(File::open(path)?),
        hash: Fnv1a::new(),
    };
    let mut magic = [0u8; 4];
    r.read_exact_hashed(&mut magic)?;
    if &magic != DELTA_MAGIC {
        return Err(PersistError::Format(
            "bad magic; not a Harmony delta log".into(),
        ));
    }
    let version = r.read_u32()?;
    if version != DELTA_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported delta-log version {version} (expected {DELTA_VERSION})"
        )));
    }
    let next_seq = r.read_u64()?;
    let dim = r.read_u64()?;
    let n_tomb = r.read_u64()? as usize;
    let n_pending = r.read_u64()? as usize;
    if dim == 0 || dim > 1 << 20 || n_tomb > 1 << 32 || n_pending > 1 << 32 {
        return Err(PersistError::Format(format!(
            "implausible shape: dim {dim}, {n_tomb} tombstones, {n_pending} pending"
        )));
    }
    let mut tombstones = Vec::with_capacity(n_tomb);
    for _ in 0..n_tomb {
        let id = r.read_u64()?;
        let seq = r.read_u64()?;
        tombstones.push((id, seq));
    }
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        let id = r.read_u64()?;
        let cluster = r.read_u32()?;
        let seq = r.read_u64()?;
        if seq >= next_seq {
            return Err(PersistError::Format(format!(
                "pending row seq {seq} at or past the watermark {next_seq}"
            )));
        }
        let vector = r.read_f32s(dim as usize)?;
        pending.push(DeltaRecord {
            id,
            cluster,
            seq,
            vector,
        });
    }
    let computed = r.hash.0;
    let mut trailer = [0u8; 8];
    r.inner
        .read_exact(&mut trailer)
        .map_err(|_| PersistError::Format("missing checksum trailer".into()))?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(PersistError::Format(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    let mut extra = [0u8; 1];
    match r.inner.read(&mut extra) {
        Ok(0) => {}
        Ok(_) => return Err(PersistError::Format("trailing bytes after checksum".into())),
        Err(e) => return Err(PersistError::Io(e)),
    }
    Ok(DeltaLog {
        next_seq,
        dim,
        tombstones,
        pending,
    })
}

const BLOCK_MAGIC: &[u8; 4] = b"HBLK";
const BLOCK_VERSION: u32 = 1;

/// Header + trailer overhead of a block file, in bytes:
/// magic (4) + version (4) + payload length (8) + checksum trailer (8).
const BLOCK_OVERHEAD: u64 = 24;

/// Upper bound on a single block file's payload (1 TiB). Anything larger
/// is a corrupted header, not a real spilled block.
const BLOCK_MAX_PAYLOAD: u64 = 1 << 40;

/// Writes an opaque `payload` to `path` as a length-checked block file,
/// atomically (tmp file + rename):
///
/// ```text
/// magic "HBLK" | version u32 | payload_len u64 | payload | fnv1a-64 trailer
/// ```
///
/// Block files carry spilled (warm/cold tier) grid-block payloads; the
/// format is deliberately opaque so the tier layer needs no knowledge of
/// the block representation — callers serialize, this layer guarantees
/// integrity and torn-write detection.
///
/// # Errors
/// [`PersistError::Io`] on filesystem failure.
pub fn save_block_file(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), PersistError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut w = HashingWriter {
            inner: BufWriter::new(File::create(&tmp)?),
            hash: Fnv1a::new(),
        };
        w.write_bytes(BLOCK_MAGIC)?;
        w.write_u32(BLOCK_VERSION)?;
        w.write_u64(payload.len() as u64)?;
        w.write_bytes(payload)?;
        let checksum = w.hash.0;
        w.inner.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a block file written by [`save_block_file`], returning the payload.
///
/// The declared payload length is validated against the actual file size
/// *before* any payload buffer is allocated: a header whose length field
/// disagrees with the bytes on disk (torn write, truncation, or a
/// corrupted length that would demand an absurd allocation) is rejected
/// up front instead of attempting a huge `Vec` reservation or a long read
/// that ends in `UnexpectedEof`.
///
/// # Errors
/// [`PersistError`] on IO failure, malformed structure, length/size
/// disagreement, version mismatch, or checksum mismatch.
pub fn load_block_file(path: impl AsRef<Path>) -> Result<Vec<u8>, PersistError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = HashingReader {
        inner: BufReader::new(file),
        hash: Fnv1a::new(),
    };
    let mut magic = [0u8; 4];
    r.read_exact_hashed(&mut magic)?;
    if &magic != BLOCK_MAGIC {
        return Err(PersistError::Format(
            "bad magic; not a Harmony block file".into(),
        ));
    }
    let version = r.read_u32()?;
    if version != BLOCK_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported block-file version {version} (expected {BLOCK_VERSION})"
        )));
    }
    let payload_len = r.read_u64()?;
    if payload_len > BLOCK_MAX_PAYLOAD {
        return Err(PersistError::Format(format!(
            "implausible block payload length {payload_len}"
        )));
    }
    // Length check before allocation: the file must hold exactly the
    // declared payload plus the fixed header/trailer overhead. This also
    // subsumes the trailing-garbage check — any extra byte fails here.
    let expected = BLOCK_OVERHEAD + payload_len;
    if file_len != expected {
        return Err(PersistError::Format(format!(
            "block file length {file_len} disagrees with header (expected {expected})"
        )));
    }
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact_hashed(&mut payload)?;
    let computed = r.hash.0;
    let mut trailer = [0u8; 8];
    r.inner
        .read_exact(&mut trailer)
        .map_err(|_| PersistError::Format("missing checksum trailer".into()))?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(PersistError::Format(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::IvfParams;
    use rand::prelude::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "harmony-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    fn build_index(seed: u64) -> (IvfIndex, VectorStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..500 * 8).map(|_| rng.random_range(-1.0..1.0)).collect();
        let store = VectorStore::from_flat(8, data).unwrap();
        let mut ivf = IvfIndex::train(&store, &IvfParams::new(8).with_seed(seed)).unwrap();
        ivf.add(&store).unwrap();
        (ivf, store)
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let (ivf, store) = build_index(1);
        let path = temp_path("roundtrip");
        save_ivf(&ivf, &path).unwrap();
        let loaded = load_ivf(&path).unwrap();
        assert_eq!(loaded.len(), ivf.len());
        assert_eq!(loaded.nlist(), ivf.nlist());
        assert_eq!(loaded.metric(), ivf.metric());
        for qi in [0usize, 100, 499] {
            assert_eq!(
                loaded.search(store.row(qi), 5, 8).unwrap(),
                ivf.search(store.row(qi), 5, 8).unwrap(),
                "query {qi}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let (ivf, _) = build_index(2);
        let path = temp_path("corrupt");
        save_ivf(&ivf, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match load_ivf(&path) {
            Err(PersistError::Format(msg)) => {
                assert!(
                    msg.contains("checksum")
                        || msg.contains("implausible")
                        || msg.contains("truncated"),
                    "unexpected message: {msg}"
                )
            }
            other => panic!("corruption not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let (ivf, _) = build_index(3);
        let path = temp_path("trunc");
        save_ivf(&ivf, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(load_ivf(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOPE00000000").unwrap();
        match load_ivf(&path) {
            Err(PersistError::Format(msg)) => assert!(msg.contains("magic")),
            other => panic!("bad magic not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (ivf, _) = build_index(4);
        let path = temp_path("trailing");
        save_ivf(&ivf, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAB);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_ivf(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_ivf("/nonexistent/harmony.hivf"),
            Err(PersistError::Io(_))
        ));
    }

    fn sample_delta_log() -> DeltaLog {
        DeltaLog {
            next_seq: 9,
            dim: 4,
            tombstones: vec![(100, 3), (250, 7)],
            pending: vec![
                DeltaRecord {
                    id: 500,
                    cluster: 2,
                    seq: 5,
                    vector: vec![0.5, -1.0, 2.0, 0.25],
                },
                DeltaRecord {
                    id: 501,
                    cluster: 0,
                    seq: 8,
                    vector: vec![1.0, 1.0, -3.0, 4.0],
                },
            ],
        }
    }

    #[test]
    fn delta_log_roundtrips() {
        let path = temp_path("delta-roundtrip");
        let log = sample_delta_log();
        save_delta_log(&log, &path).unwrap();
        assert_eq!(load_delta_log(&path).unwrap(), log);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_log_save_is_atomic() {
        // A previous intact log must survive an interrupted rewrite: the
        // writer only renames over the target after the tmp file is
        // complete, so a crash leaves either the old or the new log.
        let path = temp_path("delta-atomic");
        let log = sample_delta_log();
        save_delta_log(&log, &path).unwrap();
        // Simulate a torn in-progress rewrite beside the intact primary.
        std::fs::write(path.with_extension("tmp"), b"HDLT\x01\x00\x00").unwrap();
        assert_eq!(load_delta_log(&path).unwrap(), log);
        std::fs::remove_file(path.with_extension("tmp")).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_log_truncation_detected() {
        let path = temp_path("delta-trunc");
        save_delta_log(&sample_delta_log(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            load_delta_log(&path),
            Err(PersistError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_log_corruption_detected() {
        let path = temp_path("delta-corrupt");
        save_delta_log(&sample_delta_log(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match load_delta_log(&path) {
            Err(PersistError::Format(msg)) => assert!(
                msg.contains("checksum")
                    || msg.contains("implausible")
                    || msg.contains("watermark"),
                "unexpected message: {msg}"
            ),
            other => panic!("corruption not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_log_wrong_magic_rejected() {
        let path = temp_path("delta-magic");
        std::fs::write(&path, b"HIVF0000000000000000").unwrap();
        match load_delta_log(&path) {
            Err(PersistError::Format(msg)) => assert!(msg.contains("magic")),
            other => panic!("bad magic not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_file_roundtrips() {
        let path = temp_path("block-roundtrip");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        save_block_file(&path, &payload).unwrap();
        assert_eq!(load_block_file(&path).unwrap(), payload);
        // Empty payloads are legal (an empty grid block spills to nothing).
        save_block_file(&path, &[]).unwrap();
        assert_eq!(load_block_file(&path).unwrap(), Vec::<u8>::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_file_length_mismatch_rejected_before_allocation() {
        let path = temp_path("block-lenlie");
        save_block_file(&path, &[7u8; 64]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Lie in the header: claim a payload far larger than the file. A
        // loader that allocated from the header alone would reserve ~1 GiB
        // here; the size check must reject it first.
        bytes[8..16].copy_from_slice(&(1u64 << 30).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_block_file(&path) {
            Err(PersistError::Format(msg)) => {
                assert!(msg.contains("disagrees"), "unexpected message: {msg}")
            }
            other => panic!("length lie not caught: {other:?}"),
        }
        // An implausibly huge declared length is rejected even if a
        // matching file size could be fabricated.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_block_file(&path) {
            Err(PersistError::Format(msg)) => {
                assert!(msg.contains("implausible"), "unexpected message: {msg}")
            }
            other => panic!("huge length not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_file_truncation_and_garbage_rejected() {
        let path = temp_path("block-trunc");
        save_block_file(&path, &[42u8; 256]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            load_block_file(&path),
            Err(PersistError::Format(_))
        ));
        let mut padded = bytes.clone();
        padded.push(0xCD);
        std::fs::write(&path, &padded).unwrap();
        assert!(matches!(
            load_block_file(&path),
            Err(PersistError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_file_corruption_detected() {
        let path = temp_path("block-corrupt");
        save_block_file(&path, &[9u8; 512]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match load_block_file(&path) {
            Err(PersistError::Format(msg)) => {
                assert!(msg.contains("checksum"), "unexpected message: {msg}")
            }
            other => panic!("corruption not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_file_wrong_magic_rejected() {
        let path = temp_path("block-magic");
        std::fs::write(&path, b"HIVF000000000000000000000000").unwrap();
        match load_block_file(&path) {
            Err(PersistError::Format(msg)) => assert!(msg.contains("magic")),
            other => panic!("bad magic not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_log_seq_past_watermark_rejected() {
        let path = temp_path("delta-watermark");
        let mut log = sample_delta_log();
        log.pending[1].seq = log.next_seq; // not yet issued — inconsistent
        save_delta_log(&log, &path).unwrap();
        match load_delta_log(&path) {
            Err(PersistError::Format(msg)) => assert!(msg.contains("watermark")),
            other => panic!("inconsistent watermark not caught: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
