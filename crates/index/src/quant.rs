//! Pluggable block representations: SQ8 scalar quantization (§ "two-stage
//! scan" refactor).
//!
//! Harmony's grid blocks historically stored raw `f32` rows. This module
//! adds the second representation, **SQ8**: each dimension-slice of a block
//! is quantized to one byte per coordinate with an affine per-slice code
//! `v ≈ min + scale · c`, `c ∈ [0, 255]`, where `min`/`scale` are computed
//! over *all* rows × dimensions of the slice. Stage-1 scans run entirely
//! over the codes via the integer kernels in [`crate::distance`]; a small
//! survivor set (`top-k × rerank_scale`) is then re-ranked with exact f32
//! arithmetic.
//!
//! The contract a representation must satisfy (see DESIGN.md "BlockRepr"):
//!
//! 1. **Scan** — produce a deterministic lower-is-better partial score per
//!    row per dimension slice ([`Sq8Segment::l2_partial`],
//!    [`Sq8Segment::ip_dot`]).
//! 2. **Error bound** — advertise a per-coordinate round-trip bound
//!    ([`Sq8Segment::coord_error_bound`]) so prune bounds can be widened to
//!    stay exact-over-quantized (`harmony-core::pruning`).
//! 3. **Memory accounting** — report resident payload bytes
//!    ([`Sq8Segment::memory_bytes`]).
//! 4. **Wire codec** — survive migration bit-identically: a dimension
//!    sub-range slice ([`Sq8Segment::slice_dims`]) inherits `min`/`scale`
//!    *verbatim* and recomputes only integer sums, so re-assembled blocks
//!    score exactly like freshly sliced ones.

use crate::distance::{ip_u8, l2_sq_u8};

/// Which in-memory representation a grid block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockRepr {
    /// Raw row-major `f32` coordinates (the original representation).
    #[default]
    F32,
    /// Per-dimension-slice affine scalar quantization to one byte per
    /// coordinate, scanned in two stages (quantized stage-1 → exact f32
    /// re-rank of the survivor set).
    Sq8,
}

impl BlockRepr {
    /// Name used in CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            BlockRepr::F32 => "f32",
            BlockRepr::Sq8 => "sq8",
        }
    }

    /// Parses a CLI name (`"f32"` / `"sq8"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(BlockRepr::F32),
            "sq8" => Some(BlockRepr::Sq8),
            _ => None,
        }
    }

    /// `true` when stage-1 scans run over quantized codes and prune bounds
    /// must be widened by the quantization error.
    pub fn is_quantized(self) -> bool {
        matches!(self, BlockRepr::Sq8)
    }
}

impl std::fmt::Display for BlockRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One self-contained SQ8-quantized dimension slice of a list block.
///
/// A freshly built block holds exactly one segment spanning its whole
/// dimension range; migration slices segments column-wise and destinations
/// simply concatenate the received segments (sorted by `dim_start`) — no
/// re-quantization ever happens after build, which is what makes results
/// bit-identical across transports and across a live migration.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Segment {
    /// Absolute first dimension (inclusive) this segment covers.
    pub dim_start: u64,
    /// Absolute one-past-last dimension.
    pub dim_end: u64,
    /// Affine offset: `v ≈ min + scale · code`.
    pub min: f32,
    /// Affine step `(max − min) / 255`; `0` for constant slices, in which
    /// case every code is 0 and dequantization is exact.
    pub scale: f32,
    /// Row-major codes, `dim_end − dim_start` wide per row.
    pub codes: Vec<u8>,
    /// Per-row sum of codes (the inner-product affine cross term).
    pub code_sums: Vec<u32>,
}

impl Sq8Segment {
    /// Number of dimensions per row.
    #[inline]
    pub fn width(&self) -> usize {
        (self.dim_end - self.dim_start) as usize
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.codes.len().checked_div(self.width()).unwrap_or(0)
    }

    /// Quantizes a row-major `f32` slice (`width` coordinates per row)
    /// covering absolute dimensions `[dim_start, dim_start + width)`.
    ///
    /// `min`/`max` are taken over every entry, so no data coordinate is
    /// clamped and the round-trip error is bounded by
    /// [`Self::coord_error_bound`]. Inputs must be finite.
    pub fn quantize(flat: &[f32], width: usize, dim_start: u64) -> Self {
        debug_assert!(width == 0 || flat.len().is_multiple_of(width));
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in flat {
            min = min.min(v);
            max = max.max(v);
        }
        if flat.is_empty() {
            min = 0.0;
            max = 0.0;
        }
        // f64 keeps the step finite even for ranges that overflow f32
        // (e.g. min = -MAX, max = +MAX).
        let scale = ((max as f64 - min as f64) / 255.0) as f32;
        let codes: Vec<u8> = flat
            .iter()
            .map(|&v| {
                if scale > 0.0 {
                    ((v as f64 - min as f64) / scale as f64)
                        .round()
                        .clamp(0.0, 255.0) as u8
                } else {
                    0
                }
            })
            .collect();
        let rows = flat.len().checked_div(width).unwrap_or(0);
        let code_sums = (0..rows)
            .map(|r| {
                codes[r * width..(r + 1) * width]
                    .iter()
                    .map(|&c| c as u32)
                    .sum()
            })
            .collect();
        Self {
            dim_start,
            dim_end: dim_start + width as u64,
            min,
            scale,
            codes,
            code_sums,
        }
    }

    /// The codes of one row.
    #[inline]
    pub fn row_codes(&self, row: usize) -> &[u8] {
        let w = self.width();
        &self.codes[row * w..(row + 1) * w]
    }

    /// Dequantizes one code back to its `f32` approximation. Computed in
    /// f64 so extreme `min`/`scale` pairs stay finite.
    #[inline]
    pub fn dequant(&self, code: u8) -> f32 {
        (self.min as f64 + self.scale as f64 * code as f64) as f32
    }

    /// Advertised per-coordinate round-trip bound for *data* (not query)
    /// coordinates: the rounding half-step plus slack for the f32 rounding
    /// of `scale` and the dequantization arithmetic. Query coordinates may
    /// clamp; their error is measured exactly by [`Self::quantize_query`].
    #[inline]
    pub fn coord_error_bound(&self) -> f32 {
        0.5 * self.scale + (self.min.abs() + 255.0 * self.scale) * f32::EPSILON * 4.0
    }

    /// Row-vector L2 error bound `‖p − dq(p)‖ ≤ coord_bound · √width`.
    #[inline]
    pub fn row_error_bound(&self) -> f32 {
        self.coord_error_bound() * (self.width() as f32).sqrt()
    }

    /// Quantizes a query slice against this segment's affine code. Query
    /// values outside `[min, max]` clamp; the *exact* residual
    /// `‖q − dq(qc)‖²` is returned so prune-bound widening never has to
    /// assume anything about the query.
    pub fn quantize_query(&self, q: &[f32]) -> Sq8Query {
        debug_assert_eq!(q.len(), self.width());
        let mut codes = Vec::with_capacity(q.len());
        let mut code_sum = 0u32;
        let mut err_sq = 0f64;
        for &v in q {
            let c = if self.scale > 0.0 {
                ((v as f64 - self.min as f64) / self.scale as f64)
                    .round()
                    .clamp(0.0, 255.0) as u8
            } else {
                0
            };
            codes.push(c);
            code_sum += c as u32;
            let d = v as f64 - self.dequant(c) as f64;
            err_sq += d * d;
        }
        Sq8Query {
            codes,
            code_sum,
            err_sq: err_sq as f32,
        }
    }

    /// Stage-1 L2 partial of `row` against a quantized query:
    /// `‖dq(q) − dq(p)‖² = scale² · Σ (qc − pc)²` (integer kernel).
    #[inline]
    pub fn l2_partial(&self, qq: &Sq8Query, row: usize) -> f32 {
        self.scale * self.scale * l2_sq_u8(&qq.codes, self.row_codes(row)) as f32
    }

    /// Stage-1 dot product of `row` against a quantized query:
    /// `dq(q) · dq(p) = w·min² + min·scale·(Σqc + Σpc) + scale²·(qc·pc)`.
    #[inline]
    pub fn ip_dot(&self, qq: &Sq8Query, row: usize) -> f32 {
        let w = self.width() as f32;
        let cross = (qq.code_sum + self.code_sums[row]) as f32;
        let int_dot = ip_u8(&qq.codes, self.row_codes(row)) as f32;
        w * self.min * self.min + self.min * self.scale * cross + self.scale * self.scale * int_dot
    }

    /// Squared L2 norm of the dequantized `row` (migration norm rebuild).
    pub fn dequant_row_norm_sq(&self, row: usize) -> f64 {
        self.row_codes(row)
            .iter()
            .map(|&c| {
                let v = self.dequant(c) as f64;
                v * v
            })
            .sum()
    }

    /// Column-slices the segment to absolute dimensions `[start, end)`
    /// (must lie within the segment). `min`/`scale` are inherited
    /// **verbatim** and only the integer sums are recomputed, so scoring a
    /// sliced-and-reassembled block is bit-identical to scoring the
    /// original.
    ///
    /// # Panics
    /// Panics when the range is not contained in the segment.
    pub fn slice_dims(&self, start: u64, end: u64) -> Sq8Segment {
        assert!(
            self.dim_start <= start && start <= end && end <= self.dim_end,
            "slice {start}..{end} outside segment {}..{}",
            self.dim_start,
            self.dim_end
        );
        let w = self.width();
        let off = (start - self.dim_start) as usize;
        let sw = (end - start) as usize;
        let rows = self.rows();
        let mut codes = Vec::with_capacity(rows * sw);
        for r in 0..rows {
            codes.extend_from_slice(&self.codes[r * w + off..r * w + off + sw]);
        }
        let code_sums = (0..rows)
            .map(|r| codes[r * sw..(r + 1) * sw].iter().map(|&c| c as u32).sum())
            .collect();
        Sq8Segment {
            dim_start: start,
            dim_end: end,
            min: self.min,
            scale: self.scale,
            codes,
            code_sums,
        }
    }

    /// Resident payload bytes of this segment (codes + sums + header).
    pub fn memory_bytes(&self) -> usize {
        self.codes.capacity() + self.code_sums.capacity() * 4 + 24
    }
}

/// A query slice quantized against one [`Sq8Segment`]'s affine code.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Query {
    /// Quantized (clamped) query codes, segment-width wide.
    pub codes: Vec<u8>,
    /// Sum of the query codes (inner-product cross term).
    pub code_sum: u32,
    /// Exact `‖q − dq(qc)‖²` over this segment — the query side of the
    /// prune-bound widening.
    pub err_sq: f32,
}

/// A query prepared against every segment of one SQ8 list block, plus the
/// error terms that widen the prune bounds for that list.
#[derive(Debug, Clone)]
pub struct Sq8BlockQuery {
    /// Per-segment quantized queries, parallel to the block's segments.
    pub per_seg: Vec<Sq8Query>,
    /// Query-side error `E_q = √(Σ_seg ‖q_seg − dq(qc_seg)‖²)` — exact.
    pub err: f32,
    /// Data-side error bound `E_p = √(Σ_seg row_error_bound²)`.
    pub data_err: f32,
}

/// Quantizes `qdims` (the query coordinates of the block, starting at
/// absolute dimension `block_dim_start`) against each segment of a list.
pub fn prepare_block_query(
    segs: &[Sq8Segment],
    qdims: &[f32],
    block_dim_start: u64,
) -> Sq8BlockQuery {
    let mut per_seg = Vec::with_capacity(segs.len());
    let mut err_sq = 0f32;
    let mut data_err_sq = 0f32;
    for seg in segs {
        let rel = (seg.dim_start - block_dim_start) as usize;
        let qq = seg.quantize_query(&qdims[rel..rel + seg.width()]);
        err_sq += qq.err_sq;
        let e = seg.row_error_bound();
        data_err_sq += e * e;
        per_seg.push(qq);
    }
    Sq8BlockQuery {
        per_seg,
        err: err_sq.sqrt(),
        data_err: data_err_sq.sqrt(),
    }
}

/// Stage-1 L2 partial of `row` across every segment of a block.
#[inline]
pub fn l2_partial_row(segs: &[Sq8Segment], bq: &Sq8BlockQuery, row: usize) -> f32 {
    segs.iter()
        .zip(&bq.per_seg)
        .map(|(s, q)| s.l2_partial(q, row))
        .sum()
}

/// Stage-1 dot product of `row` across every segment of a block.
#[inline]
pub fn ip_dot_row(segs: &[Sq8Segment], bq: &Sq8BlockQuery, row: usize) -> f32 {
    segs.iter()
        .zip(&bq.per_seg)
        .map(|(s, q)| s.ip_dot(q, row))
        .sum()
}

/// Total resident payload bytes of a block's segments.
pub fn segs_memory_bytes(segs: &[Sq8Segment]) -> usize {
    segs.iter().map(Sq8Segment::memory_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_from(values: &[f32], width: usize) -> Sq8Segment {
        Sq8Segment::quantize(values, width, 0)
    }

    #[test]
    fn repr_names_roundtrip() {
        for r in [BlockRepr::F32, BlockRepr::Sq8] {
            assert_eq!(BlockRepr::parse(r.name()), Some(r));
        }
        assert_eq!(BlockRepr::parse("pq4"), None);
        assert!(BlockRepr::Sq8.is_quantized());
        assert!(!BlockRepr::F32.is_quantized());
        assert_eq!(BlockRepr::default(), BlockRepr::F32);
    }

    #[test]
    fn constant_slice_dequantizes_exactly() {
        let s = seg_from(&[3.25; 12], 4);
        assert_eq!(s.scale, 0.0);
        assert!(s.codes.iter().all(|&c| c == 0));
        for r in 0..3 {
            for &c in s.row_codes(r) {
                assert_eq!(s.dequant(c), 3.25);
            }
        }
        assert_eq!(s.coord_error_bound(), 3.25 * f32::EPSILON * 4.0);
    }

    #[test]
    fn round_trip_error_within_bound_basic() {
        let vals: Vec<f32> = (0..64)
            .map(|i| (i as f32 * 0.7).sin() * 5.0 - 2.0)
            .collect();
        let s = seg_from(&vals, 8);
        let bound = s.coord_error_bound();
        for (i, &v) in vals.iter().enumerate() {
            let back = s.dequant(s.codes[i]);
            assert!(
                (v - back).abs() <= bound,
                "coord {i}: |{v} - {back}| > {bound}"
            );
        }
    }

    #[test]
    fn l2_partial_matches_dequantized_distance() {
        let vals: Vec<f32> = (0..32).map(|i| (i as f32 * 1.3).cos() * 3.0).collect();
        let s = seg_from(&vals, 8);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.41).sin()).collect();
        let qq = s.quantize_query(&q);
        for row in 0..4 {
            let got = s.l2_partial(&qq, row);
            let want: f32 = (0..8)
                .map(|j| {
                    let d = s.dequant(qq.codes[j]) - s.dequant(s.row_codes(row)[j]);
                    d * d
                })
                .sum();
            assert!(
                (got - want).abs() <= want.abs() * 1e-4 + 1e-5,
                "row {row}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn ip_dot_matches_dequantized_dot() {
        let vals: Vec<f32> = (0..32)
            .map(|i| (i as f32 * 0.9).sin() * 2.0 - 0.5)
            .collect();
        let s = seg_from(&vals, 8);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.23).cos() * 1.5).collect();
        let qq = s.quantize_query(&q);
        for row in 0..4 {
            let got = s.ip_dot(&qq, row);
            let want: f32 = (0..8)
                .map(|j| s.dequant(qq.codes[j]) * s.dequant(s.row_codes(row)[j]))
                .sum();
            assert!(
                (got - want).abs() <= want.abs() * 1e-3 + 1e-3,
                "row {row}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn query_error_is_exact_even_when_clamped() {
        // Query far outside the data range clamps to code 255.
        let s = seg_from(&[0.0, 1.0, 2.0, 3.0], 4);
        let q = [10.0f32, -5.0, 1.5, 2.0];
        let qq = s.quantize_query(&q);
        assert_eq!(qq.codes[0], 255);
        assert_eq!(qq.codes[1], 0);
        let want: f32 = (0..4)
            .map(|j| {
                let d = q[j] - s.dequant(qq.codes[j]);
                d * d
            })
            .sum();
        assert!((qq.err_sq - want).abs() <= want * 1e-5);
    }

    #[test]
    fn slice_inherits_affine_code_verbatim() {
        let vals: Vec<f32> = (0..40).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        let s = Sq8Segment::quantize(&vals, 10, 16);
        let left = s.slice_dims(16, 20);
        let right = s.slice_dims(20, 26);
        assert_eq!(left.min, s.min);
        assert_eq!(left.scale.to_bits(), s.scale.to_bits());
        assert_eq!(right.scale.to_bits(), s.scale.to_bits());
        // Codes are column-copies: integer kernels over the concatenation
        // match the original exactly.
        for r in 0..4 {
            let mut rebuilt: Vec<u8> = left.row_codes(r).to_vec();
            rebuilt.extend_from_slice(right.row_codes(r));
            assert_eq!(rebuilt, s.row_codes(r));
            assert_eq!(
                left.code_sums[r] + right.code_sums[r],
                s.code_sums[r],
                "sums must decompose"
            );
        }
    }

    #[test]
    fn block_query_scoring_decomposes_over_segments() {
        let vals: Vec<f32> = (0..48).map(|i| (i as f32 * 0.61).cos() * 2.0).collect();
        let s = Sq8Segment::quantize(&vals, 12, 0);
        let split = [s.slice_dims(0, 5), s.slice_dims(5, 12)];
        let q: Vec<f32> = (0..12).map(|i| (i as f32 * 0.17).sin()).collect();
        let whole = prepare_block_query(std::slice::from_ref(&s), &q, 0);
        let parts = prepare_block_query(&split, &q, 0);
        for row in 0..4 {
            // Integer kernels decompose exactly; the f32 scale² product
            // reassociates, so compare with a small tolerance.
            let a = l2_partial_row(std::slice::from_ref(&s), &whole, row);
            let b = l2_partial_row(&split, &parts, row);
            assert!((a - b).abs() <= a.abs() * 1e-5 + 1e-6, "{a} vs {b}");
            let a = ip_dot_row(std::slice::from_ref(&s), &whole, row);
            let b = ip_dot_row(&split, &parts, row);
            assert!((a - b).abs() <= a.abs() * 1e-4 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn memory_is_about_one_byte_per_coordinate() {
        let vals = vec![0.5f32; 128 * 32];
        let s = Sq8Segment::quantize(&vals, 32, 0);
        let f32_bytes = vals.len() * 4;
        let sq8_bytes = s.memory_bytes();
        assert!(
            (f32_bytes as f64 / sq8_bytes as f64) >= 3.0,
            "expected >=3x reduction, got {f32_bytes}/{sq8_bytes}"
        );
    }

    #[test]
    fn empty_block_quantizes_to_empty_segment() {
        let s = Sq8Segment::quantize(&[], 4, 8);
        assert_eq!(s.rows(), 0);
        assert_eq!(s.width(), 4);
        assert_eq!(s.scale, 0.0);
        let qq = s.quantize_query(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(qq.codes.len(), 4);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Maps a plain `[-1, 1)` sample vector into one of several
        /// adversarial regimes: ordinary magnitudes, tiny scales, huge
        /// scales (ranges that overflow f32 subtraction), constant slices,
        /// and all-negative mins.
        fn adversarialize(base: &[f32], mode: usize) -> Vec<f32> {
            match mode {
                0 => base.iter().map(|v| v * 1e3).collect(),
                1 => base.iter().map(|v| v * 1e-30).collect(),
                2 => base.iter().map(|v| v * 3.0e38).collect(),
                3 => vec![base[0] * 1e2 - 7.25; base.len()],
                _ => base.iter().map(|v| v.abs() * -1e4 - 1.0).collect(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Round-trip error stays within the advertised bound for
            /// adversarial ranges: constant slices, tiny/huge scales,
            /// negative mins.
            #[test]
            fn round_trip_error_within_advertised_bound(
                base in proptest::collection::vec(-1.0f32..1.0f32, 1..96),
                mode in 0usize..5,
                width in 1usize..9,
            ) {
                let vals = adversarialize(&base, mode);
                let rows = vals.len() / width;
                let flat = &vals[..rows * width];
                let s = Sq8Segment::quantize(flat, width, 0);
                prop_assert!(s.scale.is_finite() && s.scale >= 0.0);
                let bound = s.coord_error_bound() as f64;
                for (i, &v) in flat.iter().enumerate() {
                    let back = s.dequant(s.codes[i]) as f64;
                    let err = (v as f64 - back).abs();
                    prop_assert!(
                        err <= bound,
                        "coord {i}: err {err} > bound {bound} (min {} scale {})",
                        s.min, s.scale
                    );
                }
            }

            /// Slicing a segment anywhere preserves codes column-for-column
            /// and decomposes the integer sums exactly.
            #[test]
            fn slices_preserve_codes_and_sums(
                vals in proptest::collection::vec(-50.0f32..50.0f32, 8..64),
                width in 2usize..8,
                cut_seed in proptest::num::u64::ANY,
            ) {
                let rows = vals.len() / width;
                prop_assume!(rows > 0);
                let flat = &vals[..rows * width];
                let s = Sq8Segment::quantize(flat, width, 4);
                let cut = 4 + 1 + (cut_seed % (width as u64 - 1));
                let a = s.slice_dims(4, cut);
                let b = s.slice_dims(cut, 4 + width as u64);
                for r in 0..rows {
                    let mut rebuilt = a.row_codes(r).to_vec();
                    rebuilt.extend_from_slice(b.row_codes(r));
                    prop_assert_eq!(rebuilt, s.row_codes(r).to_vec());
                    prop_assert_eq!(a.code_sums[r] + b.code_sums[r], s.code_sums[r]);
                }
            }

            /// The L2 stage-1 partial lower-bounds the exact distance once
            /// widened by the measured query error plus the advertised data
            /// error: `‖q−p‖ ≥ ‖dq(q)−dq(p)‖ − E_q − E_p`.
            #[test]
            fn widened_quantized_distance_lower_bounds_exact(
                vals in proptest::collection::vec(-20.0f32..20.0f32, 8..64),
                q in proptest::collection::vec(-25.0f32..25.0f32, 8..9),
            ) {
                let width = 8;
                let rows = vals.len() / width;
                prop_assume!(rows > 0);
                let flat = &vals[..rows * width];
                let s = Sq8Segment::quantize(flat, width, 0);
                let bq = prepare_block_query(std::slice::from_ref(&s), &q, 0);
                for row in 0..rows {
                    let exact: f32 = (0..width)
                        .map(|j| {
                            let d = q[j] - flat[row * width + j];
                            d * d
                        })
                        .sum();
                    let quant = l2_partial_row(std::slice::from_ref(&s), &bq, row);
                    let eps = bq.err + bq.data_err;
                    let lower = (quant.max(0.0).sqrt() - eps).max(0.0);
                    prop_assert!(
                        lower * lower <= exact * (1.0 + 1e-4) + 1e-5,
                        "row {row}: widened bound {} exceeds exact {exact}",
                        lower * lower
                    );
                }
            }
        }
    }
}
