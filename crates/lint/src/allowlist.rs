//! `lint.allow`: the checked-in record of deliberate exceptions.
//!
//! One entry per line:
//!
//! ```text
//! RULE_ID  path/from/repo/root.rs  fn_name  # one-line justification
//! ```
//!
//! `fn_name` is the enclosing function of the finding, or `-` for
//! file-level findings. Every entry must carry a `#` justification
//! (enforced as `HL-ALLOW-JUSTIFY`), and entries that no longer suppress
//! anything are flagged as `HL-ALLOW-STALE` so the file cannot rot.

use crate::findings::{Finding, Rule};
use std::path::Path;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule ID string, e.g. `HL-FORBID-UNWRAP`.
    pub rule: String,
    /// Repo-relative file the exception applies to.
    pub file: String,
    /// Enclosing function name, `-` for file-level findings.
    pub func: String,
    /// Text after `#`, trimmed. Empty when the `#` is missing.
    pub justification: String,
    /// 1-based line in `lint.allow`.
    pub line: u32,
    /// Set when the entry suppressed at least one finding this run.
    pub used: bool,
}

/// Loaded allowlist. A missing file is an empty allowlist, not an error.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Repo-relative path of the allowlist file (for finding locations).
    pub path: String,
    /// Parsed entries.
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Loads `lint.allow` from `path` (repo-relative name `rel` used in
    /// findings). Returns `Err` only on malformed entries.
    pub fn load(path: &Path, rel: &str) -> Result<Allowlist, String> {
        let mut al = Allowlist {
            path: rel.to_string(),
            entries: Vec::new(),
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return Ok(al);
        };
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, just) = match line.split_once('#') {
                Some((h, j)) => (h.trim(), j.trim().to_string()),
                None => (line, String::new()),
            };
            let parts: Vec<&str> = head.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(format!(
                    "{rel}:{}: expected `RULE_ID file fn  # justification`, got `{line}`",
                    ln + 1
                ));
            }
            al.entries.push(Entry {
                rule: parts[0].to_string(),
                file: parts[1].to_string(),
                func: parts[2].to_string(),
                justification: just,
                line: ln as u32 + 1,
                used: false,
            });
        }
        Ok(al)
    }

    /// `true` when an entry covers the finding; marks that entry used.
    pub fn permits(&mut self, f: &Finding) -> bool {
        let func = if f.func.is_empty() { "-" } else { &f.func };
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == f.rule.id() && e.file == f.file && e.func == func {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Findings about the allowlist itself: unused (stale) entries and
    /// entries with no justification.
    pub fn audit(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for e in &self.entries {
            if e.justification.is_empty() {
                out.push(Finding::new(
                    Rule::AllowJustify,
                    self.path.clone(),
                    e.line,
                    "",
                    format!(
                        "allowlist entry `{} {} {}` has no `# justification`",
                        e.rule, e.file, e.func
                    ),
                ));
            }
            if !e.used {
                out.push(Finding::new(
                    Rule::AllowStale,
                    self.path.clone(),
                    e.line,
                    "",
                    format!(
                        "allowlist entry `{} {} {}` no longer matches any finding",
                        e.rule, e.file, e.func
                    ),
                ));
            }
        }
        out
    }

    /// Renders a bootstrap allowlist covering `findings`, for
    /// `--fix-allowlist`. Existing entries are preserved; new ones get a
    /// placeholder justification the author must edit.
    pub fn bootstrap(&self, findings: &[Finding]) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push("# lint.allow — deliberate exceptions to harmony-lint rules.".into());
        lines.push("# Format: RULE_ID  file  fn  # one-line justification".into());
        lines.push(String::new());
        let mut seen: Vec<(String, String, String)> = Vec::new();
        for e in &self.entries {
            if e.used {
                let just = if e.justification.is_empty() {
                    "EDIT: justify this exception".to_string()
                } else {
                    e.justification.clone()
                };
                lines.push(format!("{}  {}  {}  # {}", e.rule, e.file, e.func, just));
                seen.push((e.rule.clone(), e.file.clone(), e.func.clone()));
            }
        }
        for f in findings {
            if matches!(f.rule, Rule::AllowStale | Rule::AllowJustify) {
                continue;
            }
            let func = if f.func.is_empty() {
                "-".to_string()
            } else {
                f.func.clone()
            };
            let key = (f.rule.id().to_string(), f.file.clone(), func.clone());
            if seen.contains(&key) {
                continue;
            }
            lines.push(format!(
                "{}  {}  {}  # EDIT: justify this exception",
                f.rule.id(),
                f.file,
                func
            ));
            seen.push(key);
        }
        lines.push(String::new());
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_text(text: &str) -> Allowlist {
        let dir = std::env::temp_dir().join(format!("hl-allow-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("lint.allow");
        std::fs::write(&p, text).unwrap();
        Allowlist::load(&p, "lint.allow").unwrap()
    }

    #[test]
    fn permits_and_marks_used() {
        let mut al = entry_text("HL-FORBID-UNWRAP  crates/a.rs  spawn  # fallible twin exists\n");
        let f = Finding::new(Rule::ForbidUnwrap, "crates/a.rs", 10, "spawn", "x");
        assert!(al.permits(&f));
        assert!(al.audit().is_empty());
    }

    #[test]
    fn stale_and_unjustified_entries_flagged() {
        let al = entry_text(
            "HL-FORBID-UNWRAP  crates/a.rs  spawn  # ok\nHL-LOCK-ORDER  crates/b.rs  f\n",
        );
        let findings = al.audit();
        // Both entries unused → 2 stale; second also unjustified.
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == Rule::AllowStale)
                .count(),
            2
        );
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == Rule::AllowJustify)
                .count(),
            1
        );
    }

    #[test]
    fn missing_file_is_empty() {
        let al = Allowlist::load(Path::new("/nonexistent/lint.allow"), "lint.allow").unwrap();
        assert!(al.entries.is_empty());
    }

    #[test]
    fn bootstrap_renders_new_entries() {
        let al = entry_text("");
        let f = Finding::new(Rule::ForbidUnwrap, "crates/a.rs", 3, "go", "msg");
        let text = al.bootstrap(&[f]);
        assert!(text.contains("HL-FORBID-UNWRAP  crates/a.rs  go  # EDIT"));
    }
}
