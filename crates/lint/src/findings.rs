//! Finding representation and the stable rule-ID catalogue.

use std::fmt;

/// Stable rule identifiers. The string form is what appears in output and
/// in `lint.allow`, so renaming one is a breaking change for allowlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Enum variant missing from the `encode` match of its `Wire` impl.
    CodecEncode,
    /// Enum variant missing from the `decode` tag dispatch.
    CodecDecode,
    /// Enum variant never mentioned in the codec property test.
    CodecTest,
    /// Two variants encode with the same discriminant tag.
    CodecTagDup,
    /// Discriminant tags are not the dense range 0..n (a gap shifts or
    /// orphans wire values across versions).
    CodecTagGap,
    /// A variant's encode tag differs from its decode tag.
    CodecTagMismatch,
    /// Struct field never referenced in its own `encode`/`decode` body.
    CodecField,
    /// `unsafe` block or fn without an adjacent `// SAFETY:` comment.
    UnsafeComment,
    /// `#[target_feature]` fn reachable from a caller that does not check
    /// CPU feature availability.
    UnsafeGuard,
    /// Lock acquired while holding a lock that is ordered after it.
    LockOrder,
    /// Lock not declared in `lint.toml` acquired together with ordered locks.
    LockUnknown,
    /// `unwrap()`/`expect()` in a file where panics are forbidden.
    ForbidUnwrap,
    /// Time API (`thread::sleep`, `Instant::now`) in a codec/encode path.
    ForbidTime,
    /// `todo!`/`unimplemented!` anywhere.
    ForbidTodo,
    /// `dbg!` anywhere.
    ForbidDbg,
    /// Allowlist entry that no longer matches anything in the tree.
    AllowStale,
    /// Allowlist entry with no `#` justification.
    AllowJustify,
}

impl Rule {
    /// The stable textual ID.
    pub fn id(self) -> &'static str {
        match self {
            Rule::CodecEncode => "HL-CODEC-ENCODE",
            Rule::CodecDecode => "HL-CODEC-DECODE",
            Rule::CodecTest => "HL-CODEC-TEST",
            Rule::CodecTagDup => "HL-CODEC-TAG-DUP",
            Rule::CodecTagGap => "HL-CODEC-TAG-GAP",
            Rule::CodecTagMismatch => "HL-CODEC-TAG-MISMATCH",
            Rule::CodecField => "HL-CODEC-FIELD",
            Rule::UnsafeComment => "HL-UNSAFE-COMMENT",
            Rule::UnsafeGuard => "HL-UNSAFE-GUARD",
            Rule::LockOrder => "HL-LOCK-ORDER",
            Rule::LockUnknown => "HL-LOCK-UNKNOWN",
            Rule::ForbidUnwrap => "HL-FORBID-UNWRAP",
            Rule::ForbidTime => "HL-FORBID-TIME",
            Rule::ForbidTodo => "HL-FORBID-TODO",
            Rule::ForbidDbg => "HL-FORBID-DBG",
            Rule::AllowStale => "HL-ALLOW-STALE",
            Rule::AllowJustify => "HL-ALLOW-JUSTIFY",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, printable as `file:line  RULE_ID  message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Path relative to the repo root, `/`-separated.
    pub file: String,
    /// 1-based line; 0 when the finding is not tied to a line (e.g. a
    /// stale allowlist entry for a deleted file).
    pub line: u32,
    /// Name of the enclosing function, used as the allowlist key. Empty
    /// for file-level findings.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}  {}  {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Constructs a finding; `func` may be empty for file-level findings.
    pub fn new(
        rule: Rule,
        file: impl Into<String>,
        line: u32,
        func: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            func: func.into(),
            message: message.into(),
        }
    }
}
