//! Unsafe audit (`HL-UNSAFE-*`).
//!
//! * `HL-UNSAFE-COMMENT` — every `unsafe` block, `unsafe fn`, and
//!   `unsafe impl` must carry an adjacent `SAFETY` comment: either in the
//!   contiguous run of tokens between the statement boundary and the
//!   `unsafe` keyword (which covers `// SAFETY:` lines above the item,
//!   doc `# Safety` sections, and attributes in between), or as the first
//!   token inside the block.
//! * `HL-UNSAFE-GUARD` — a `#[target_feature]` function may only be
//!   called from (a) another `#[target_feature]` function, or (b) a
//!   function whose body checks `is_x86_feature_detected!` directly or
//!   via one level of indirection (a helper like `avx2_available()` whose
//!   body performs the check). Calling one on a CPU without the feature
//!   is immediate UB, so the guard must be visible in the caller.

use crate::findings::{Finding, Rule};
use crate::index::FileIndex;
use crate::lexer::Kind;

/// Runs the unsafe family over one file.
pub fn check(fi: &FileIndex, out: &mut Vec<Finding>) {
    check_safety_comments(fi, out);
    check_target_feature_guards(fi, out);
}

fn check_safety_comments(fi: &FileIndex, out: &mut Vec<Finding>) {
    let toks = &fi.toks;
    let n = toks.len();
    for i in 0..n {
        if !toks[i].is_ident("unsafe") {
            continue;
        }
        // Classify what this `unsafe` introduces.
        let next = toks[i + 1..]
            .iter()
            .position(|t| t.kind != Kind::Comment)
            .map(|k| i + 1 + k);
        let what = match next {
            Some(j) if toks[j].is_punct('{') => "block",
            Some(j) if toks[j].is_ident("impl") || toks[j].is_ident("trait") => "impl",
            Some(j) if toks[j].is_ident("fn") || toks[j].is_ident("extern") => {
                // `unsafe fn name` is an item; `unsafe fn(..)` is a
                // pointer type; `unsafe extern "C" fn name` has the
                // keyword a couple of tokens later.
                let fpos = (j..(j + 4).min(n)).find(|&k| toks[k].is_ident("fn"));
                match fpos {
                    Some(f) if toks.get(f + 1).is_some_and(|t| t.kind == Kind::Ident) => "fn",
                    _ => continue,
                }
            }
            _ => continue,
        };
        if has_adjacent_safety(fi, i) {
            continue;
        }
        let func = fi
            .enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        out.push(Finding::new(
            Rule::UnsafeComment,
            fi.path.clone(),
            toks[i].line,
            func,
            format!("`unsafe` {what} without an adjacent `// SAFETY:` comment"),
        ));
    }
}

/// `true` when a SAFETY comment sits between the previous statement
/// boundary and the `unsafe` token at `i`, or directly inside the block.
fn has_adjacent_safety(fi: &FileIndex, i: usize) -> bool {
    let toks = &fi.toks;
    // Backward over the current statement / item header.
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == Kind::Comment {
            if is_safety(&t.text) {
                return true;
            }
            continue;
        }
        if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
    }
    // Forward: first token inside `unsafe { ... }`.
    let mut k = i + 1;
    while k < toks.len() && !toks[k].is_punct('{') {
        if toks[k].is_punct(';') || toks[k].is_punct('}') {
            return false;
        }
        k += 1;
    }
    toks.get(k + 1)
        .is_some_and(|t| t.kind == Kind::Comment && is_safety(&t.text))
}

fn is_safety(comment: &str) -> bool {
    let lower = comment.to_ascii_lowercase();
    lower.contains("safety")
}

fn check_target_feature_guards(fi: &FileIndex, out: &mut Vec<Finding>) {
    let targets: Vec<usize> = (0..fi.fns.len())
        .filter(|&k| {
            fi.fns[k]
                .attrs
                .iter()
                .any(|a| a.starts_with("target_feature"))
        })
        .collect();
    if targets.is_empty() {
        return;
    }
    // Functions that perform the CPU check directly.
    let checkers: Vec<String> = fi
        .fns
        .iter()
        .filter(|f| body_has_ident(fi, f.body_start, f.end, "is_x86_feature_detected"))
        .map(|f| f.name.clone())
        .collect();
    let toks = &fi.toks;
    let n = toks.len();
    for &tk in &targets {
        let target = &fi.fns[tk];
        for i in 0..n {
            if !toks[i].is_ident(&target.name)
                || i + 1 >= n
                || !toks[i + 1].is_punct('(')
                || (i > 0 && toks[i - 1].is_ident("fn"))
            {
                continue;
            }
            // Qualification: `module::name(...)` must name the target's
            // module; a bare `name(...)` must be in the same module.
            let caller = match fi.enclosing_fn(i) {
                Some(c) => c,
                None => continue,
            };
            let qualified = i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].kind == Kind::Ident;
            let matches_target = if qualified {
                target
                    .module
                    .last()
                    .is_some_and(|m| toks[i - 3].is_ident(m))
            } else {
                caller.module == target.module
            };
            if !matches_target || caller.start == target.start {
                continue;
            }
            // Target-feature callers inherit the caller's guarantee.
            if caller.attrs.iter().any(|a| a.starts_with("target_feature")) {
                continue;
            }
            let guarded =
                body_has_ident(fi, caller.body_start, caller.end, "is_x86_feature_detected")
                    || checkers
                        .iter()
                        .any(|c| body_calls(fi, caller.body_start, caller.end, c));
            if !guarded {
                out.push(Finding::new(
                    Rule::UnsafeGuard,
                    fi.path.clone(),
                    toks[i].line,
                    caller.name.clone(),
                    format!(
                        "`{}` calls `#[target_feature]` fn `{}` without a CPU feature check",
                        caller.name,
                        target.qualified()
                    ),
                ));
            }
        }
    }
}

fn body_has_ident(fi: &FileIndex, from: usize, to: usize, ident: &str) -> bool {
    fi.toks[from.min(fi.toks.len())..to.min(fi.toks.len())]
        .iter()
        .any(|t| t.is_ident(ident))
}

fn body_calls(fi: &FileIndex, from: usize, to: usize, name: &str) -> bool {
    let toks = &fi.toks;
    let to = to.min(toks.len());
    (from.min(to)..to).any(|i| toks[i].is_ident(name) && i + 1 < to && toks[i + 1].is_punct('('))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let fi = FileIndex::build("f.rs".into(), lex(src));
        let mut out = Vec::new();
        check(&fi, &mut out);
        out
    }

    #[test]
    fn unsafe_block_without_comment_fires() {
        let out = run("fn f(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::UnsafeComment);
        assert_eq!(out[0].func, "f");
    }

    #[test]
    fn preceding_safety_comment_passes() {
        assert!(run(
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads.\n    unsafe { *p }\n}"
        )
        .is_empty());
    }

    #[test]
    fn safety_comment_above_let_statement_passes() {
        assert!(run(
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid.\n    let v = unsafe { *p };\n    v\n}"
        )
        .is_empty());
    }

    #[test]
    fn safety_comment_inside_block_passes() {
        assert!(run(
            "fn f(p: *const u8) -> u8 {\n    unsafe {\n        // SAFETY: p is valid.\n        *p\n    }\n}"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_fn_with_doc_safety_section_passes() {
        assert!(run(
            "/// Reads a byte.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) -> u8 { *p }"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_impl_requires_comment() {
        let out = run("unsafe impl Send for Foo {}");
        assert_eq!(out.len(), 1);
        assert!(run("// SAFETY: Foo owns its data.\nunsafe impl Send for Foo {}").is_empty());
    }

    #[test]
    fn target_feature_call_without_guard_fires() {
        let src = r#"
mod simd {
    // SAFETY: caller must check avx2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kern(a: &[f32]) -> f32 { 0.0 }
}
pub fn dispatch(a: &[f32]) -> f32 {
    // SAFETY: availability checked... except it is not.
    unsafe { simd::kern(a) }
}
"#;
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::UnsafeGuard);
        assert_eq!(out[0].func, "dispatch");
    }

    #[test]
    fn guard_via_helper_indirection_passes() {
        let src = r#"
mod simd {
    // SAFETY: caller must check avx2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kern(a: &[f32]) -> f32 { 0.0 }
}
fn avx2_available() -> bool { is_x86_feature_detected!("avx2") }
pub fn dispatch(a: &[f32]) -> f32 {
    if avx2_available() {
        // SAFETY: availability checked above.
        return unsafe { simd::kern(a) };
    }
    0.0
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn target_feature_sibling_calls_inherit() {
        let src = r#"
mod simd {
    // SAFETY: caller must check avx2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn outer(a: &[f32]) -> f32 {
        // SAFETY: same feature set as self.
        unsafe { inner(a) }
    }
    // SAFETY: caller must check avx2.
    #[target_feature(enable = "avx2")]
    unsafe fn inner(a: &[f32]) -> f32 { 0.0 }
}
"#;
        assert!(run(src).is_empty());
    }
}
