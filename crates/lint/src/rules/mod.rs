//! The four rule families.

pub mod codec;
pub mod forbid;
pub mod locks;
pub mod unsafe_audit;
