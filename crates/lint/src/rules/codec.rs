//! Codec exhaustiveness (`HL-CODEC-*`).
//!
//! For every enum in the configured codec files that has an `impl Wire`,
//! each variant must appear in the `encode` match, in the `decode` tag
//! dispatch, and in the codec property test, with discriminant tags that
//! are unique, dense (`0..n` — a gap silently shifts the meaning of wire
//! bytes across versions), and identical between encode and decode. For
//! structs with an `impl Wire`, every named field must be referenced in
//! both `encode` and `decode` — a field missing from one side is a frame
//! that decodes shifted.

use crate::findings::{Finding, Rule};
use crate::index::{matching, FileIndex, FnInfo};
use crate::lexer::{Kind, Tok};

/// Enum definition: name plus variants with their declaration lines.
struct EnumDef {
    name: String,
    variants: Vec<(String, u32)>,
}

/// Struct definition with named fields.
struct StructDef {
    name: String,
    fields: Vec<(String, u32)>,
}

/// Runs the codec family. `files` are the indexed codec files;
/// `test_file` is the indexed property test (`None` if missing — that is
/// itself reported by the driver).
pub fn check(files: &[&FileIndex], test_file: Option<&FileIndex>, out: &mut Vec<Finding>) {
    for fi in files {
        let enums = enum_defs(fi);
        let structs = struct_defs(fi);
        for im in &fi.impls {
            if im.trait_name != "Wire" || im.in_test {
                continue;
            }
            let encode = impl_fn(fi, im.start, im.end, "encode");
            let decode = impl_fn(fi, im.start, im.end, "decode");
            if let Some(e) = enums.iter().find(|e| e.name == im.type_name) {
                check_enum(fi, e, encode, decode, test_file, out);
            } else if let Some(s) = structs.iter().find(|s| s.name == im.type_name) {
                check_struct(fi, s, encode, decode, out);
            }
            // Impls over types not defined here (macro targets, std
            // containers) have no variant/field list to audit.
        }
    }
}

fn check_enum(
    fi: &FileIndex,
    e: &EnumDef,
    encode: Option<&FnInfo>,
    decode: Option<&FnInfo>,
    test_file: Option<&FileIndex>,
    out: &mut Vec<Finding>,
) {
    let mut enc_tags: Vec<(String, u32, Option<u64>)> = Vec::new();
    for (variant, vline) in &e.variants {
        // encode coverage + tag.
        let enc = encode.and_then(|f| arm_in(fi, f, &e.name, variant));
        match enc {
            None => out.push(Finding::new(
                Rule::CodecEncode,
                fi.path.clone(),
                *vline,
                "encode",
                format!(
                    "variant `{}::{}` missing from `encode` match",
                    e.name, variant
                ),
            )),
            Some(at) => {
                let tag = encode.and_then(|f| enc_tag(fi, f, &e.name, at));
                enc_tags.push((variant.clone(), *vline, tag));
            }
        }
        // decode coverage + tag.
        let dec = decode.and_then(|f| arm_in(fi, f, &e.name, variant));
        match dec {
            None => out.push(Finding::new(
                Rule::CodecDecode,
                fi.path.clone(),
                *vline,
                "decode",
                format!(
                    "variant `{}::{}` missing from `decode` tag dispatch",
                    e.name, variant
                ),
            )),
            Some(at) => {
                let dtag = dec_tag(fi, at);
                if let (Some((_, _, Some(et))), Some(dt)) =
                    (enc_tags.iter().find(|(v, _, _)| v == variant), dtag)
                {
                    if *et != dt {
                        out.push(Finding::new(
                            Rule::CodecTagMismatch,
                            fi.path.clone(),
                            *vline,
                            "decode",
                            format!(
                                "variant `{}::{}` encodes tag {et} but decodes tag {dt}",
                                e.name, variant
                            ),
                        ));
                    }
                }
            }
        }
        // Property-test coverage.
        if let Some(tf) = test_file {
            if !mentions(tf, &e.name, variant) {
                out.push(Finding::new(
                    Rule::CodecTest,
                    fi.path.clone(),
                    *vline,
                    "-",
                    format!(
                        "variant `{}::{}` never exercised by {}",
                        e.name, variant, tf.path
                    ),
                ));
            }
        }
    }
    // Tag uniqueness and density over the encode side.
    let mut tags: Vec<(u64, &str, u32)> = enc_tags
        .iter()
        .filter_map(|(v, l, t)| t.map(|t| (t, v.as_str(), *l)))
        .collect();
    tags.sort_unstable();
    for w in tags.windows(2) {
        if w[0].0 == w[1].0 {
            out.push(Finding::new(
                Rule::CodecTagDup,
                fi.path.clone(),
                w[1].2,
                "encode",
                format!(
                    "variants `{}::{}` and `{}::{}` both encode tag {}",
                    e.name, w[0].1, e.name, w[1].1, w[0].0
                ),
            ));
        }
    }
    if tags.len() == e.variants.len() {
        for (i, (t, v, l)) in tags.iter().enumerate() {
            if *t != i as u64 {
                out.push(Finding::new(
                    Rule::CodecTagGap,
                    fi.path.clone(),
                    *l,
                    "encode",
                    format!(
                        "tags of `{}` are not dense: expected {i} next, `{}::{v}` encodes {t}",
                        e.name, e.name
                    ),
                ));
                break;
            }
        }
    }
}

fn check_struct(
    fi: &FileIndex,
    s: &StructDef,
    encode: Option<&FnInfo>,
    decode: Option<&FnInfo>,
    out: &mut Vec<Finding>,
) {
    for (field, fline) in &s.fields {
        for (f, which) in [(encode, "encode"), (decode, "decode")] {
            let Some(f) = f else { continue };
            let body = &fi.toks[f.body_start..f.end.min(fi.toks.len())];
            if !body.iter().any(|t| t.is_ident(field)) {
                out.push(Finding::new(
                    Rule::CodecField,
                    fi.path.clone(),
                    *fline,
                    which,
                    format!("field `{}.{}` never referenced in `{which}`", s.name, field),
                ));
            }
        }
    }
}

/// Finds the fn named `name` whose definition lies inside `[start, end)`.
fn impl_fn<'a>(fi: &'a FileIndex, start: usize, end: usize, name: &str) -> Option<&'a FnInfo> {
    fi.fns
        .iter()
        .find(|f| f.name == name && f.start >= start && f.end <= end)
}

/// Token index of `Qualifier::Variant` inside `f`'s body, where the
/// qualifier is the enum name or `Self`. Returns the variant-token index.
fn arm_in(fi: &FileIndex, f: &FnInfo, enum_name: &str, variant: &str) -> Option<usize> {
    let toks = &fi.toks;
    let end = f.end.min(toks.len());
    (f.body_start..end).find(|&i| {
        i >= 3
            && toks[i].is_ident(variant)
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && (toks[i - 3].is_ident(enum_name) || toks[i - 3].is_ident("Self"))
    })
}

/// Discriminant written by the encode arm starting at variant token `at`:
/// the first `<n>u8` literal before the next arm pattern.
fn enc_tag(fi: &FileIndex, f: &FnInfo, enum_name: &str, at: usize) -> Option<u64> {
    let toks = &fi.toks;
    let end = f.end.min(toks.len());
    let mut i = at + 1;
    while i < end {
        let t = &toks[i];
        // Next arm pattern → this arm never wrote a tag.
        if t.kind == Kind::Ident
            && (t.text == enum_name || t.text == "Self")
            && i + 2 < end
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
        {
            return None;
        }
        if t.kind == Kind::Literal && t.text.ends_with("u8") {
            return parse_num(&t.text);
        }
        i += 1;
    }
    None
}

/// Discriminant matched by the decode arm containing variant token `at`:
/// the literal immediately before the nearest preceding `=>`.
fn dec_tag(fi: &FileIndex, at: usize) -> Option<u64> {
    let toks = &fi.toks;
    let mut i = at;
    while i >= 2 {
        if toks[i].is_punct('>') && toks[i - 1].is_punct('=') {
            let before = &toks[i - 2];
            if before.kind == Kind::Literal {
                return parse_num(&before.text);
            }
            return None;
        }
        i -= 1;
    }
    None
}

fn parse_num(text: &str) -> Option<u64> {
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// `true` when the test file mentions `Enum::Variant`.
fn mentions(tf: &FileIndex, enum_name: &str, variant: &str) -> bool {
    let toks = &tf.toks;
    (0..toks.len()).any(|i| {
        i >= 3
            && toks[i].is_ident(variant)
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident(enum_name)
    })
}

/// Parses `enum Name { ... }` definitions with their variant names.
fn enum_defs(fi: &FileIndex) -> Vec<EnumDef> {
    let toks = &fi.toks;
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if toks[i].is_ident("enum")
            && i + 2 < n
            && toks[i + 1].kind == Kind::Ident
            && !fi.in_test(i)
        {
            // Skip generics between the name and `{`.
            let mut j = i + 2;
            while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < n && toks[j].is_punct('{') {
                let close = matching(toks, j, "{", "}");
                out.push(EnumDef {
                    name: toks[i + 1].text.clone(),
                    variants: variant_names(toks, j, close),
                });
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Variant names at depth 1 of an enum body: the first ident of each
/// comma-separated entry, with attributes and payloads skipped wholesale.
fn variant_names(toks: &[Tok], open: usize, close: usize) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut expect = true;
    let mut i = open + 1;
    while i < close && i < toks.len() {
        let t = &toks[i];
        if t.kind == Kind::Comment {
            i += 1;
            continue;
        }
        if t.is_punct('#') && i + 1 < close && toks[i + 1].is_punct('[') {
            i = matching(toks, i + 1, "[", "]") + 1;
            continue;
        }
        if expect && t.kind == Kind::Ident {
            out.push((t.text.clone(), t.line));
            expect = false;
            i += 1;
            continue;
        }
        if t.is_punct('(') {
            i = matching(toks, i, "(", ")") + 1;
            continue;
        }
        if t.is_punct('{') {
            i = matching(toks, i, "{", "}") + 1;
            continue;
        }
        if t.is_punct(',') {
            expect = true;
        }
        i += 1;
    }
    out
}

/// Parses `struct Name { field: Ty, ... }` definitions (named fields only).
fn struct_defs(fi: &FileIndex) -> Vec<StructDef> {
    let toks = &fi.toks;
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if toks[i].is_ident("struct")
            && i + 2 < n
            && toks[i + 1].kind == Kind::Ident
            && !fi.in_test(i)
        {
            let mut j = i + 2;
            while j < n
                && !toks[j].is_punct('{')
                && !toks[j].is_punct(';')
                && !toks[j].is_punct('(')
            {
                j += 1;
            }
            if j < n && toks[j].is_punct('{') {
                let close = matching(toks, j, "{", "}");
                let mut fields = Vec::new();
                let mut depth = 0i32;
                for k in j..=close.min(n - 1) {
                    let t = &toks[k];
                    if t.kind == Kind::Punct {
                        match t.text.as_str() {
                            "{" | "(" | "[" | "<" => depth += 1,
                            "}" | ")" | "]" => depth -= 1,
                            ">" if k > 0 && !toks[k - 1].is_punct('-') => depth -= 1,
                            _ => {}
                        }
                    }
                    // `field:` at depth 1, not `::`.
                    if depth == 1
                        && t.kind == Kind::Ident
                        && t.text != "pub"
                        && k < close
                        && toks[k + 1].is_punct(':')
                        && !(k + 1 < close && toks[k + 2].is_punct(':'))
                        && !(k > 0 && toks[k - 1].is_punct(':'))
                    {
                        fields.push((t.text.clone(), t.line));
                    }
                }
                out.push(StructDef {
                    name: toks[i + 1].text.clone(),
                    fields,
                });
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const GOOD: &str = r#"
pub enum Msg { A(u8), B, C { x: u32 } }
impl Wire for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::A(v) => { 0u8.encode(buf); v.encode(buf); }
            Msg::B => 1u8.encode(buf),
            Msg::C { x } => { 2u8.encode(buf); x.encode(buf); }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::A(u8::decode(buf)?)),
            1 => Ok(Msg::B),
            2 => Ok(Msg::C { x: u32::decode(buf)? }),
            t => Err(CodecError::bad(t)),
        }
    }
}
"#;

    const TEST_SRC: &str = "fn roundtrip() { let _ = [Msg::A(1), Msg::B, Msg::C { x: 2 }]; }";

    fn run(src: &str, test_src: Option<&str>) -> Vec<Finding> {
        let fi = FileIndex::build("codec.rs".into(), lex(src));
        let tf = test_src.map(|s| FileIndex::build("props.rs".into(), lex(s)));
        let mut out = Vec::new();
        check(&[&fi], tf.as_ref(), &mut out);
        out
    }

    #[test]
    fn clean_codec_passes() {
        assert!(run(GOOD, Some(TEST_SRC)).is_empty());
    }

    #[test]
    fn missing_decode_arm_fires() {
        let bad = GOOD.replace("1 => Ok(Msg::B),", "");
        let out = run(&bad, Some(TEST_SRC));
        assert!(out
            .iter()
            .any(|f| f.rule == Rule::CodecDecode && f.message.contains("Msg::B")));
        // Dropping an arm also orphans its tag; density still holds.
        assert!(!out.iter().any(|f| f.rule == Rule::CodecTagGap));
    }

    #[test]
    fn missing_encode_arm_fires() {
        let bad = GOOD.replace("Msg::B => 1u8.encode(buf),", "");
        let out = run(&bad, Some(TEST_SRC));
        assert!(out
            .iter()
            .any(|f| f.rule == Rule::CodecEncode && f.message.contains("Msg::B")));
    }

    #[test]
    fn duplicate_tag_fires() {
        let bad = GOOD.replace("Msg::B => 1u8.encode(buf),", "Msg::B => 0u8.encode(buf),");
        let out = run(&bad, Some(TEST_SRC));
        assert!(out.iter().any(|f| f.rule == Rule::CodecTagDup));
    }

    #[test]
    fn tag_gap_fires() {
        let bad = GOOD
            .replace("Msg::B => 1u8.encode(buf),", "Msg::B => 7u8.encode(buf),")
            .replace("1 => Ok(Msg::B),", "7 => Ok(Msg::B),");
        let out = run(&bad, Some(TEST_SRC));
        assert!(out.iter().any(|f| f.rule == Rule::CodecTagGap));
    }

    #[test]
    fn encode_decode_tag_mismatch_fires() {
        let bad = GOOD.replace("1 => Ok(Msg::B),", "3 => Ok(Msg::B),");
        let out = run(&bad, Some(TEST_SRC));
        assert!(out.iter().any(|f| f.rule == Rule::CodecTagMismatch));
    }

    #[test]
    fn missing_test_mention_fires() {
        let out = run(
            GOOD,
            Some("fn roundtrip() { let _ = [Msg::A(1), Msg::B]; }"),
        );
        assert!(out
            .iter()
            .any(|f| f.rule == Rule::CodecTest && f.message.contains("Msg::C")));
    }

    #[test]
    fn struct_field_missing_from_decode_fires() {
        let src = r#"
pub struct Frame { pub seq: u64, pub len: u32 }
impl Wire for Frame {
    fn encode(&self, buf: &mut Vec<u8>) { self.seq.encode(buf); self.len.encode(buf); }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let seq = u64::decode(buf)?;
        Ok(Frame { seq, len: 0 })
    }
}
"#;
        assert!(run(src, None).is_empty());
        let bad = src.replace(
            "Ok(Frame { seq, len: 0 })",
            "Ok(Frame { seq, ..Default::default() })",
        );
        let out = run(&bad, None);
        assert!(out
            .iter()
            .any(|f| f.rule == Rule::CodecField && f.message.contains("Frame.len")));
    }
}
