//! Lock-ordering analysis (`HL-LOCK-ORDER`, `HL-LOCK-UNKNOWN`).
//!
//! `lint.toml` declares, per file, the order in which that file's named
//! locks must be acquired. For every non-test function the rule walks the
//! body linearly, simulating the held-lock set:
//!
//! * an acquisition is `receiver.lock()` / `.read()` / `.write()` with
//!   empty parens (io `read(&mut buf)` / `write(&buf)` take arguments and
//!   are ignored), where `receiver` is the identifier before the final dot;
//! * a guard is *held* only when the statement is `let g = <acq>;`, with
//!   `.expect(..)` / `.unwrap()` / `.unwrap_or_else(..)` allowed in the
//!   chain — anything else (a field access, a call argument) makes the
//!   guard a temporary that dies at the end of the statement;
//! * held guards are released by `drop(g)` or by leaving the enclosing
//!   brace scope.
//!
//! Acquiring a declared lock while holding one that the order places
//! after it (or the same lock twice) is `HL-LOCK-ORDER`. Acquiring an
//! undeclared lock while a declared one is held is `HL-LOCK-UNKNOWN`:
//! new lock edges must be added to the declared order before they ship.
//! The walk is linear (no control-flow graph), so a `drop` inside one
//! branch releases for the remainder of the function — this trades false
//! negatives for zero control-flow false positives.

use crate::config::LockOrder;
use crate::findings::{Finding, Rule};
use crate::index::FileIndex;
use crate::lexer::Kind;

#[derive(Debug)]
struct Held {
    name: String,
    var: String,
    depth: i32,
    line: u32,
}

/// Runs the lock-order family over one file with its declared order.
pub fn check(fi: &FileIndex, order: &LockOrder, out: &mut Vec<Finding>) {
    for f in &fi.fns {
        if f.in_test || f.body_start >= f.end {
            continue;
        }
        walk_fn(
            fi,
            order,
            f.body_start,
            f.end.min(fi.toks.len()),
            &f.name,
            out,
        );
    }
}

fn walk_fn(
    fi: &FileIndex,
    order: &LockOrder,
    body_start: usize,
    end: usize,
    fn_name: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &fi.toks;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut i = body_start;
    while i < end {
        let t = &toks[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        // drop(var) releases.
        if t.is_ident("drop")
            && i + 3 < end
            && toks[i + 1].is_punct('(')
            && toks[i + 2].kind == Kind::Ident
            && toks[i + 3].is_punct(')')
        {
            let var = &toks[i + 2].text;
            if let Some(pos) = held.iter().rposition(|h| h.var == *var) {
                held.remove(pos);
            }
            i += 4;
            continue;
        }
        // receiver.lock()/.read()/.write() with empty parens.
        let acq = t.kind == Kind::Ident
            && i + 4 < end
            && toks[i + 1].is_punct('.')
            && matches!(toks[i + 2].text.as_str(), "lock" | "read" | "write")
            && toks[i + 2].kind == Kind::Ident
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_punct(')');
        if !acq {
            i += 1;
            continue;
        }
        let recv = t.text.clone();
        let line = t.line;
        let new_idx = order.order.iter().position(|l| *l == recv);
        match new_idx {
            Some(ni) => {
                for h in &held {
                    let hi = order
                        .order
                        .iter()
                        .position(|l| *l == h.name)
                        .unwrap_or(usize::MAX);
                    if hi >= ni {
                        out.push(Finding::new(
                            Rule::LockOrder,
                            fi.path.clone(),
                            line,
                            fn_name,
                            format!(
                                "acquires `{recv}` while holding `{}` (acquired line {}); declared order requires `{recv}` first",
                                h.name, h.line
                            ),
                        ));
                    }
                }
            }
            None => {
                if !held.is_empty() {
                    out.push(Finding::new(
                        Rule::LockUnknown,
                        fi.path.clone(),
                        line,
                        fn_name,
                        format!(
                            "acquires undeclared lock `{recv}` while holding `{}`; add it to the lock order in lint.toml",
                            held.last().map(|h| h.name.as_str()).unwrap_or("?")
                        ),
                    ));
                }
            }
        }
        // Guard-preserving suffix chain, then `;` + let-binding → held.
        let mut j = i + 5;
        loop {
            if j + 1 < end
                && toks[j].is_punct('.')
                && matches!(
                    toks[j + 1].text.as_str(),
                    "expect" | "unwrap" | "unwrap_or_else"
                )
                && j + 2 < end
                && toks[j + 2].is_punct('(')
            {
                j = crate::index::matching(toks, j + 2, "(", ")") + 1;
                continue;
            }
            break;
        }
        let ends_stmt = j < end && toks[j].is_punct(';');
        if ends_stmt {
            if let Some(var) = let_binding(fi, i) {
                if new_idx.is_some() {
                    held.push(Held {
                        name: recv,
                        var,
                        depth,
                        line,
                    });
                }
            }
        }
        i += 5;
    }
}

/// When the acquisition chain starting near token `i` belongs to a
/// `let [mut] NAME = ...` statement, returns `NAME`.
fn let_binding(fi: &FileIndex, i: usize) -> Option<String> {
    let toks = &fi.toks;
    // Walk back over the receiver chain: idents, `.`, `&`, `*`, `(`.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        let chainlike = t.kind == Kind::Ident && !t.is_ident("let") && !t.is_ident("mut")
            || t.kind == Kind::Punct && matches!(t.text.as_str(), "." | "&" | "*" | "(");
        if chainlike {
            j -= 1;
        } else {
            break;
        }
    }
    if j == 0 || !toks[j - 1].is_punct('=') {
        return None;
    }
    // `let NAME =` or `let mut NAME =`.
    let name_at = j.checked_sub(2)?;
    if toks[name_at].kind != Kind::Ident {
        return None;
    }
    let before = name_at.checked_sub(1)?;
    let is_let = toks[before].is_ident("let")
        || (toks[before].is_ident("mut") && before > 0 && toks[before - 1].is_ident("let"));
    is_let.then(|| toks[name_at].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, order: &[&str]) -> Vec<Finding> {
        let fi = FileIndex::build("f.rs".into(), lex(src));
        let lo = LockOrder {
            file: "f.rs".into(),
            order: order.iter().map(|s| s.to_string()).collect(),
        };
        let mut out = Vec::new();
        check(&fi, &lo, &mut out);
        out
    }

    const ORDER: &[&str] = &["supervisor", "ingest", "control"];

    #[test]
    fn in_order_acquisition_passes() {
        let src = "fn f(&self) {\n  let sup = self.supervisor.lock();\n  let ing = self.ingest.lock();\n  let ctl = self.control.lock();\n}";
        assert!(run(src, ORDER).is_empty());
    }

    #[test]
    fn inversion_fires() {
        let src =
            "fn f(&self) {\n  let ctl = self.control.lock();\n  let ing = self.ingest.lock();\n}";
        let out = run(src, ORDER);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::LockOrder);
        assert_eq!(out[0].func, "f");
        assert!(out[0].message.contains("`ingest`"));
    }

    #[test]
    fn drop_releases_before_reacquire() {
        let src = "fn f(&self) {\n  let ctl = self.control.lock();\n  drop(ctl);\n  let ing = self.ingest.lock();\n}";
        assert!(run(src, ORDER).is_empty());
    }

    #[test]
    fn brace_exit_releases() {
        let src = "fn f(&self) {\n  {\n    let ctl = self.control.lock();\n  }\n  let ing = self.ingest.lock();\n}";
        assert!(run(src, ORDER).is_empty());
    }

    #[test]
    fn temporaries_do_not_hold() {
        // The bool binds, not the guard: released at statement end.
        let src = "fn f(&self) {\n  let due = self.control.lock().pending;\n  let ing = self.ingest.lock();\n}";
        assert!(run(src, ORDER).is_empty());
    }

    #[test]
    fn expect_chain_still_binds_the_guard() {
        let src = "fn f(&self) {\n  let ctl = self.control.lock().expect(\"poisoned\");\n  let ing = self.ingest.lock();\n}";
        let out = run(src, ORDER);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn reacquiring_same_lock_fires() {
        let src = "fn f(&self) {\n  let a = self.ingest.lock();\n  let b = self.ingest.lock();\n}";
        let out = run(src, ORDER);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`ingest`"));
    }

    #[test]
    fn undeclared_lock_under_held_lock_fires() {
        let src =
            "fn f(&self) {\n  let ing = self.ingest.lock();\n  let m = self.mystery.lock();\n}";
        let out = run(src, ORDER);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::LockUnknown);
    }

    #[test]
    fn io_write_with_args_is_not_a_lock() {
        let src = "fn f(&self) {\n  let ing = self.ingest.lock();\n  self.stream.write(&buf);\n}";
        assert!(run(src, ORDER).is_empty());
    }
}
