//! Forbidden-API rules.
//!
//! * `HL-FORBID-TODO` / `HL-FORBID-DBG` — `todo!`, `unimplemented!` and
//!   `dbg!` anywhere, tests included: they are edit-time scaffolding and
//!   must never merge.
//! * `HL-FORBID-UNWRAP` — `.unwrap()` / `.expect(` in files listed under
//!   `forbid.no_panic` (worker, transport, codec): a panic there kills a
//!   router or supervisor thread and wedges the cluster. Test code is
//!   exempt; deliberate exceptions go in `lint.allow` with a
//!   justification.
//! * `HL-FORBID-TIME` — `thread::sleep` / `Instant::now` in files listed
//!   under `forbid.no_time` (codec paths): encode/decode must stay
//!   deterministic and non-blocking so frames can be re-encoded for
//!   retries and replays byte-for-byte.

use crate::config::Config;
use crate::findings::{Finding, Rule};
use crate::index::FileIndex;
use crate::lexer::Kind;

/// Runs the forbidden-API family over one file.
pub fn check(fi: &FileIndex, cfg: &Config, out: &mut Vec<Finding>) {
    let no_panic = cfg.no_panic.contains(&fi.path);
    let no_time = cfg.no_time.contains(&fi.path);
    let toks = &fi.toks;
    let n = toks.len();

    let fn_name = |i: usize| {
        fi.enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_default()
    };

    for i in 0..n {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        let bang = i + 1 < n && toks[i + 1].is_punct('!');
        match t.text.as_str() {
            "todo" | "unimplemented" if bang => {
                out.push(Finding::new(
                    Rule::ForbidTodo,
                    fi.path.clone(),
                    t.line,
                    fn_name(i),
                    format!("`{}!` must not be committed", t.text),
                ));
            }
            "dbg" if bang => {
                out.push(Finding::new(
                    Rule::ForbidDbg,
                    fi.path.clone(),
                    t.line,
                    fn_name(i),
                    "`dbg!` must not be committed",
                ));
            }
            "unwrap" | "expect"
                if no_panic
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 1 < n
                    && toks[i + 1].is_punct('(')
                    && !fi.in_test(i) =>
            {
                out.push(Finding::new(
                    Rule::ForbidUnwrap,
                    fi.path.clone(),
                    t.line,
                    fn_name(i),
                    format!(
                        "`.{}()` in a no-panic file; return an error or allowlist with justification",
                        t.text
                    ),
                ));
            }
            "sleep"
                if no_time
                    && i >= 2
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && !fi.in_test(i) =>
            {
                out.push(Finding::new(
                    Rule::ForbidTime,
                    fi.path.clone(),
                    t.line,
                    fn_name(i),
                    "`thread::sleep` in a codec path",
                ));
            }
            "now"
                if no_time
                    && i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("Instant")
                    && !fi.in_test(i) =>
            {
                out.push(Finding::new(
                    Rule::ForbidTime,
                    fi.path.clone(),
                    t.line,
                    fn_name(i),
                    "`Instant::now` in a codec path",
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, no_panic: bool, no_time: bool) -> Vec<Finding> {
        let fi = FileIndex::build("f.rs".into(), lex(src));
        let mut cfg = Config::default();
        if no_panic {
            cfg.no_panic.push("f.rs".into());
        }
        if no_time {
            cfg.no_time.push("f.rs".into());
        }
        let mut out = Vec::new();
        check(&fi, &cfg, &mut out);
        out
    }

    #[test]
    fn todo_and_dbg_fire_everywhere() {
        let out = run("fn f() { todo!() }\nfn g() { dbg!(1); }", false, false);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rule, Rule::ForbidTodo);
        assert_eq!(out[1].rule, Rule::ForbidDbg);
        assert_eq!(out[0].func, "f");
    }

    #[test]
    fn unwrap_fires_only_in_no_panic_files_outside_tests() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } }";
        assert_eq!(run(src, true, false).len(), 1);
        assert!(run(src, false, false).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }", true, false);
        assert!(out.is_empty());
    }

    #[test]
    fn time_apis_fire_in_no_time_files() {
        let out = run(
            "fn f() { std::thread::sleep(d); let t = Instant::now(); }",
            false,
            true,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == Rule::ForbidTime));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let out = run(
            "fn f() { let s = \"todo!\"; } // dbg!(1) and x.unwrap()",
            true,
            true,
        );
        assert!(out.is_empty());
    }
}
