//! Structural index over one file's token stream.
//!
//! A single pass records, for every function and `impl` block, its token
//! interval, module path, attributes, and whether it sits inside a
//! `#[cfg(test)]` region. Rules consume this instead of re-deriving brace
//! structure themselves.

use crate::lexer::{Kind, Tok};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Module path inside the file (`[]` at top level).
    pub module: Vec<String>,
    /// Attribute texts with whitespace removed, e.g. `cfg(test)`,
    /// `target_feature(enable="avx2,fma")`.
    pub attrs: Vec<String>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Inside a `#[cfg(test)]` module or itself a `#[test]`/`#[cfg(test)]` item.
    pub in_test: bool,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body `{` (== `end` for bodyless decls).
    pub body_start: usize,
    /// Token index one past the closing `}` (or past the `;`).
    pub end: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
}

impl FnInfo {
    /// `module::name` qualification for matching call sites.
    pub fn qualified(&self) -> String {
        let mut q = self.module.join("::");
        if !q.is_empty() {
            q.push_str("::");
        }
        q.push_str(&self.name);
        q
    }
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Trait name, empty for inherent impls.
    pub trait_name: String,
    /// Self-type head identifier (`Vec` for `Vec<T>`); verbatim token text
    /// when not an identifier (e.g. `$ty` inside a macro body).
    pub type_name: String,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Token index of the `impl` keyword.
    pub start: usize,
    /// Token index of the body `{`.
    pub body_start: usize,
    /// Token index one past the closing `}`.
    pub end: usize,
    /// Line of the `impl` keyword.
    pub line: u32,
}

/// Index over one file.
#[derive(Debug)]
pub struct FileIndex {
    /// Repo-relative, `/`-separated path.
    pub path: String,
    /// The file's tokens.
    pub toks: Vec<Tok>,
    /// All `fn` items in source order.
    pub fns: Vec<FnInfo>,
    /// All `impl` blocks in source order.
    pub impls: Vec<ImplInfo>,
    /// Token intervals `[start, end)` under `#[cfg(test)]`.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileIndex {
    /// Builds the index for a file's tokens.
    pub fn build(path: String, toks: Vec<Tok>) -> FileIndex {
        let mut idx = FileIndex {
            path,
            toks,
            fns: Vec::new(),
            impls: Vec::new(),
            test_regions: Vec::new(),
        };
        idx.scan();
        idx
    }

    /// Innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.start <= i && i < f.end)
            .max_by_key(|f| f.start)
    }

    /// `true` when token `i` lies inside a test region or test fn.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= i && i < e)
            || self.enclosing_fn(i).is_some_and(|f| f.in_test)
    }

    fn scan(&mut self) {
        let toks = &self.toks;
        let n = toks.len();
        let mut i = 0usize;
        // (module-name, close-brace token index) for each open `mod {`.
        let mut mod_stack: Vec<(String, usize)> = Vec::new();
        let mut pending_attrs: Vec<String> = Vec::new();
        // Non-attr, non-comment tokens since the last item boundary; used
        // to find `unsafe` modifiers in front of `fn`.
        let mut modifiers: Vec<usize> = Vec::new();

        let mut fns = Vec::new();
        let mut impls = Vec::new();
        let mut test_regions = Vec::new();

        while i < n {
            let t = &toks[i];
            // Pop closed modules.
            while mod_stack.last().is_some_and(|&(_, close)| i > close) {
                mod_stack.pop();
            }
            match t.kind {
                Kind::Comment => {
                    i += 1;
                    continue;
                }
                Kind::Punct if t.text == "#" => {
                    // Attribute `#[...]` or `#![...]`.
                    let mut j = i + 1;
                    if j < n && toks[j].is_punct('!') {
                        j += 1;
                    }
                    if j < n && toks[j].is_punct('[') {
                        let close = matching(toks, j, "[", "]");
                        let text: String = toks[j + 1..close]
                            .iter()
                            .filter(|t| t.kind != Kind::Comment)
                            .map(|t| t.text.as_str())
                            .collect();
                        pending_attrs.push(text);
                        i = close + 1;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                Kind::Ident => {}
                _ => {
                    if t.text == ";" || t.text == "{" || t.text == "}" {
                        modifiers.clear();
                        pending_attrs.clear();
                    }
                    i += 1;
                    continue;
                }
            }
            match t.text.as_str() {
                "mod" if i + 1 < n && toks[i + 1].kind == Kind::Ident => {
                    let name = toks[i + 1].text.clone();
                    // `mod name;` declarations have no body.
                    if i + 2 < n && toks[i + 2].is_punct('{') {
                        let close = matching(toks, i + 2, "{", "}");
                        if is_cfg_test(&pending_attrs) {
                            test_regions.push((i, close + 1));
                        }
                        mod_stack.push((name, close));
                        pending_attrs.clear();
                        modifiers.clear();
                        i += 3;
                    } else {
                        pending_attrs.clear();
                        modifiers.clear();
                        i += 2;
                    }
                    continue;
                }
                "fn" if i + 1 < n && toks[i + 1].kind == Kind::Ident => {
                    let name = toks[i + 1].text.clone();
                    let is_unsafe = modifiers.iter().any(|&m| toks[m].is_ident("unsafe"));
                    // Body `{` or `;` terminating a bodyless declaration.
                    let mut j = i + 2;
                    while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    let (body_start, end) = if j < n && toks[j].is_punct('{') {
                        (j, matching(toks, j, "{", "}") + 1)
                    } else {
                        (j.min(n), j.min(n) + 1)
                    };
                    let in_test = !test_regions.is_empty()
                        && test_regions.iter().any(|&(s, e)| s <= i && i < e)
                        || pending_attrs
                            .iter()
                            .any(|a| a == "test" || a == "cfg(test)");
                    if pending_attrs.iter().any(|a| a == "cfg(test)") {
                        test_regions.push((i, end));
                    }
                    fns.push(FnInfo {
                        name,
                        module: mod_stack.iter().map(|(m, _)| m.clone()).collect(),
                        attrs: std::mem::take(&mut pending_attrs),
                        is_unsafe,
                        in_test,
                        start: i,
                        body_start,
                        end,
                        line: t.line,
                    });
                    modifiers.clear();
                    // Descend INTO the body (nested fns, inner items).
                    i = body_start.min(n);
                    if i < n && toks[i].is_punct('{') {
                        i += 1;
                    } else {
                        i = end.min(n);
                    }
                    continue;
                }
                "impl" => {
                    // Scan the header for `for` and the body `{`.
                    let mut j = i + 1;
                    let mut for_at = None;
                    while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        if toks[j].is_ident("for") && for_at.is_none() {
                            for_at = Some(j);
                        }
                        j += 1;
                    }
                    if j < n && toks[j].is_punct('{') {
                        let close = matching(toks, j, "{", "}");
                        let (trait_name, type_name) = match for_at {
                            Some(f) => (last_ident(toks, i + 1, f), first_ident(toks, f + 1, j)),
                            None => (String::new(), first_ident(toks, i + 1, j)),
                        };
                        let in_test = test_regions.iter().any(|&(s, e)| s <= i && i < e)
                            || pending_attrs.iter().any(|a| a == "cfg(test)");
                        if pending_attrs.iter().any(|a| a == "cfg(test)") {
                            test_regions.push((i, close + 1));
                        }
                        impls.push(ImplInfo {
                            trait_name,
                            type_name,
                            in_test,
                            start: i,
                            body_start: j,
                            end: close + 1,
                            line: t.line,
                        });
                        pending_attrs.clear();
                        modifiers.clear();
                        // Descend into the body for its fns.
                        i = j + 1;
                        continue;
                    }
                    i = j;
                    continue;
                }
                _ => {
                    modifiers.push(i);
                    i += 1;
                }
            }
        }
        self.fns = fns;
        self.impls = impls;
        self.test_regions = test_regions;
    }
}

/// `true` when an attribute list contains `cfg(test)` (including compound
/// forms like `cfg(all(test,target_arch="x86_64"))`).
fn is_cfg_test(attrs: &[String]) -> bool {
    attrs
        .iter()
        .any(|a| a.starts_with("cfg(") && a.contains("test"))
}

/// Index of the token matching `open` at `open_idx` (e.g. `{`/`}`); returns
/// the last token index when unbalanced so callers never overrun.
pub fn matching(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == Kind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn last_ident(toks: &[Tok], from: usize, to: usize) -> String {
    toks[from..to]
        .iter()
        .rev()
        .find(|t| t.kind == Kind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

fn first_ident(toks: &[Tok], from: usize, to: usize) -> String {
    toks[from..to.min(toks.len())]
        .iter()
        .find(|t| t.kind == Kind::Ident && t.text != "dyn")
        .map(|t| t.text.clone())
        .or_else(|| {
            toks[from..to.min(toks.len())]
                .iter()
                .find(|t| t.kind != Kind::Comment)
                .map(|t| t.text.clone())
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn idx(src: &str) -> FileIndex {
        FileIndex::build("test.rs".into(), lex(src))
    }

    #[test]
    fn fns_with_modules_and_unsafe() {
        let fi = idx(
            "mod avx2 {\n  pub unsafe fn l2(a: &[f32]) -> f32 { 0.0 }\n}\npub fn l2() -> f32 { 1.0 }\n",
        );
        assert_eq!(fi.fns.len(), 2);
        assert_eq!(fi.fns[0].qualified(), "avx2::l2");
        assert!(fi.fns[0].is_unsafe);
        assert_eq!(fi.fns[1].qualified(), "l2");
        assert!(!fi.fns[1].is_unsafe);
    }

    #[test]
    fn cfg_test_marks_regions_and_fns() {
        let fi =
            idx("fn real() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { real(); }\n}\n");
        assert!(!fi.fns[0].in_test);
        assert!(fi.fns[1].in_test);
        let call = fi
            .toks
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.is_ident("real"))
            .map(|(k, _)| k)
            .unwrap();
        assert!(fi.in_test(call));
        assert!(!fi.in_test(0));
    }

    #[test]
    fn impls_capture_trait_and_type() {
        let fi = idx(
            "impl Wire for ToWorker {\n fn encode(&self, b: &mut Vec<u8>) {}\n}\nimpl<T: Wire> Wire for Vec<T> { }\nimpl Engine { fn go(&self) {} }\n",
        );
        assert_eq!(fi.impls.len(), 3);
        assert_eq!(fi.impls[0].trait_name, "Wire");
        assert_eq!(fi.impls[0].type_name, "ToWorker");
        assert_eq!(fi.impls[1].type_name, "Vec");
        assert_eq!(fi.impls[2].trait_name, "");
        assert_eq!(fi.impls[2].type_name, "Engine");
        // fns inside impls are found.
        assert!(fi.fns.iter().any(|f| f.name == "encode"));
        assert!(fi.fns.iter().any(|f| f.name == "go"));
    }

    #[test]
    fn attrs_are_normalized() {
        let fi = idx("#[target_feature(enable = \"avx2,fma\")]\npub unsafe fn k() {}\n");
        assert_eq!(fi.fns[0].attrs, vec!["target_feature(enable=\"avx2,fma\")"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let fi = idx("fn takes(f: fn(i32) -> i32) -> i32 { f(1) }\n");
        assert_eq!(fi.fns.len(), 1);
        assert_eq!(fi.fns[0].name, "takes");
    }
}
