//! `harmony-lint` CLI.
//!
//! ```text
//! harmony-lint [--root DIR] [--fix-allowlist]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/config error. Findings print
//! one per line as `file:line  RULE_ID  message` so CI logs and editors
//! can jump straight to them.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_allowlist = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root requires a directory"),
            },
            "--fix-allowlist" => fix_allowlist = true,
            "--help" | "-h" => {
                println!(
                    "harmony-lint [--root DIR] [--fix-allowlist]\n\
                     Static analysis for the Harmony workspace; see DESIGN.md §7."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(harmony_lint::default_root);

    if fix_allowlist {
        return bootstrap(&root);
    }

    match harmony_lint::run(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            eprintln!(
                "harmony-lint: {} file(s), {} finding(s), {} allowlisted",
                report.files,
                report.findings.len(),
                report.suppressed
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("harmony-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--fix-allowlist`: rewrite `lint.allow` so it covers every current
/// finding, with placeholder justifications the author must edit.
fn bootstrap(root: &std::path::Path) -> ExitCode {
    let cfg = match harmony_lint::config::load(&root.join("lint.toml")) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("harmony-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut al =
        match harmony_lint::allowlist::Allowlist::load(&root.join("lint.allow"), "lint.allow") {
            Ok(a) => a,
            Err(e) => {
                eprintln!("harmony-lint: error: {e}");
                return ExitCode::from(2);
            }
        };
    match harmony_lint::run_with(root, &cfg, &mut al) {
        Ok(report) => {
            let text = al.bootstrap(&report.findings);
            if let Err(e) = std::fs::write(root.join("lint.allow"), text) {
                eprintln!("harmony-lint: error: cannot write lint.allow: {e}");
                return ExitCode::from(2);
            }
            eprintln!(
                "harmony-lint: wrote lint.allow covering {} finding(s); edit the EDIT: placeholders",
                report.findings.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("harmony-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("harmony-lint: {msg}\nusage: harmony-lint [--root DIR] [--fix-allowlist]");
    ExitCode::from(2)
}
