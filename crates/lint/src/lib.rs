//! harmony-lint: repo-invariant static analysis for the Harmony workspace.
//!
//! The compiler cannot see the invariants this crate enforces: wire-codec
//! exhaustiveness across encode/decode/proptest, `SAFETY` obligations on
//! `unsafe` code, the lock-acquisition order that keeps router and
//! supervisor threads deadlock-free, and the no-panic discipline of the
//! hot paths. See DESIGN.md §7 for the rule catalogue and allowlist
//! policy; configuration lives in `lint.toml`, deliberate exceptions in
//! `lint.allow`, both at the repo root.

pub mod allowlist;
pub mod config;
pub mod findings;
pub mod index;
pub mod lexer;
pub mod rules;

use allowlist::Allowlist;
use config::Config;
use findings::Finding;
use index::FileIndex;
use std::path::{Path, PathBuf};

/// Result of one lint run.
#[derive(Debug)]
pub struct Report {
    /// Active findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the allowlist.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Runs all rules over the tree at `root` using `root/lint.toml` and
/// `root/lint.allow`.
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg = config::load(&root.join("lint.toml"))?;
    let mut al = Allowlist::load(&root.join("lint.allow"), "lint.allow")?;
    run_with(root, &cfg, &mut al)
}

/// Runs all rules with explicit config and allowlist (fixture tests use
/// this to point at synthetic trees).
pub fn run_with(root: &Path, cfg: &Config, al: &mut Allowlist) -> Result<Report, String> {
    let mut files = Vec::new();
    collect(root, root, cfg, &mut files)?;
    files.sort();

    let mut indexed = Vec::with_capacity(files.len());
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        indexed.push(FileIndex::build(rel.clone(), lexer::lex(&text)));
    }

    let mut raw: Vec<Finding> = Vec::new();
    for fi in &indexed {
        rules::forbid::check(fi, cfg, &mut raw);
        rules::unsafe_audit::check(fi, &mut raw);
        for lo in &cfg.lock_orders {
            if lo.file == fi.path {
                rules::locks::check(fi, lo, &mut raw);
            }
        }
    }
    let codec_files: Vec<&FileIndex> = indexed
        .iter()
        .filter(|fi| cfg.codec_files.contains(&fi.path))
        .collect();
    let test_file = indexed.iter().find(|fi| fi.path == cfg.codec_test_file);
    rules::codec::check(&codec_files, test_file, &mut raw);

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        if al.permits(&f) {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.extend(al.audit());
    findings.sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));
    Ok(Report {
        findings,
        suppressed,
        files: indexed.len(),
    })
}

/// Recursively collects repo-relative `.rs` paths under `dir`.
fn collect(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" || excluded(cfg, &rel) {
                continue;
            }
            collect(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") && !excluded(cfg, &rel) {
            out.push(rel);
        }
    }
    Ok(())
}

fn excluded(cfg: &Config, rel: &str) -> bool {
    cfg.exclude
        .iter()
        .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Default repo root: the workspace that contains this crate.
pub fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
