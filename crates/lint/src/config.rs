//! `lint.toml` loading.
//!
//! The container has no crates.io access, so this is a purpose-built
//! parser for the subset of TOML the config actually uses: `[section]`
//! headers, `[[section]]` array-of-tables headers, string values, and
//! (possibly multiline) string arrays. Anything else is a hard error —
//! a silently ignored config line is worse than a loud one.

use std::path::Path;

/// Declared lock order for one file: `order[i]` must be acquired before
/// `order[j]` whenever `i < j` and both are held.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// Repo-relative file the order applies to.
    pub file: String,
    /// Lock names (the field identifier the lock lives behind), outermost
    /// first.
    pub order: Vec<String>,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory prefixes (repo-relative) excluded from all rules.
    pub exclude: Vec<String>,
    /// Files holding `Wire` impls to check for codec exhaustiveness.
    pub codec_files: Vec<String>,
    /// Property-test file that must mention every wire enum variant.
    pub codec_test_file: String,
    /// Files where `unwrap()`/`expect()` are forbidden outside the allowlist.
    pub no_panic: Vec<String>,
    /// Files where `thread::sleep`/`Instant::now` are forbidden (codec and
    /// encode paths must stay deterministic and non-blocking).
    pub no_time: Vec<String>,
    /// Declared lock orders, one per file.
    pub lock_orders: Vec<LockOrder>,
}

/// Parses config text. `origin` is used in error messages only.
pub fn parse(text: &str, origin: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();

    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            section = name.trim().to_string();
            if section == "lock_order" {
                cfg.lock_orders.push(LockOrder::default());
            } else {
                return Err(format!(
                    "{origin}:{}: unknown array-of-tables [[{section}]]",
                    ln + 1
                ));
            }
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("{origin}:{}: expected `key = value`", ln + 1));
        };
        let key = line[..eq].trim().to_string();
        let mut val = line[eq + 1..].trim().to_string();
        // Multiline array: keep consuming until the closing bracket.
        if val.starts_with('[') && !balanced(&val) {
            for (_, cont) in lines.by_ref() {
                val.push(' ');
                val.push_str(strip_comment(cont).trim());
                if balanced(&val) {
                    break;
                }
            }
        }
        set(&mut cfg, &section, &key, &val).map_err(|e| format!("{origin}:{}: {e}", ln + 1))?;
    }
    Ok(cfg)
}

/// Loads and parses `lint.toml` from `path`.
pub fn load(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text, &path.display().to_string())
}

fn set(cfg: &mut Config, section: &str, key: &str, val: &str) -> Result<(), String> {
    match (section, key) {
        ("paths", "exclude") => cfg.exclude = parse_array(val)?,
        ("codec", "files") => cfg.codec_files = parse_array(val)?,
        ("codec", "test_file") => cfg.codec_test_file = parse_string(val)?,
        ("forbid", "no_panic") => cfg.no_panic = parse_array(val)?,
        ("forbid", "no_time") => cfg.no_time = parse_array(val)?,
        ("lock_order", "file") => {
            order_mut(cfg)?.file = parse_string(val)?;
        }
        ("lock_order", "order") => {
            order_mut(cfg)?.order = parse_array(val)?;
        }
        _ => return Err(format!("unknown key `{key}` in section `[{section}]`")),
    }
    Ok(())
}

fn order_mut(cfg: &mut Config) -> Result<&mut LockOrder, String> {
    cfg.lock_orders
        .last_mut()
        .ok_or_else(|| "key outside a [[lock_order]] table".to_string())
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// `true` when every `[` has a matching `]` (strings respected).
fn balanced(val: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in val.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(val: &str) -> Result<String, String> {
    let v = val.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or_else(|| format!("expected a quoted string, got `{v}`"))
}

fn parse_array(val: &str) -> Result<Vec<String>, String> {
    let v = val.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_round_trips() {
        let text = r#"
# harmony-lint configuration
[paths]
exclude = ["target", "vendor"]

[codec]
files = [
    "crates/core/src/messages.rs",   # wire enums
    "crates/cluster/src/codec.rs",
]
test_file = "tests/codec_frame_props.rs"

[forbid]
no_panic = ["crates/core/src/worker.rs"]
no_time = ["crates/cluster/src/codec.rs"]

[[lock_order]]
file = "crates/core/src/engine.rs"
order = ["supervisor", "ingest", "base"]

[[lock_order]]
file = "crates/cluster/src/transport.rs"
order = ["senders", "state"]
"#;
        let cfg = parse(text, "test").unwrap();
        assert_eq!(cfg.exclude, vec!["target", "vendor"]);
        assert_eq!(cfg.codec_files.len(), 2);
        assert_eq!(cfg.codec_test_file, "tests/codec_frame_props.rs");
        assert_eq!(cfg.lock_orders.len(), 2);
        assert_eq!(
            cfg.lock_orders[0].order,
            vec!["supervisor", "ingest", "base"]
        );
        assert_eq!(cfg.lock_orders[1].file, "crates/cluster/src/transport.rs");
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(parse("[codec]\nbogus = \"x\"\n", "test").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[codec]\ntest_file = \"a#b.rs\"\n", "test").unwrap();
        assert_eq!(cfg.codec_test_file, "a#b.rs");
    }
}
