//! A minimal comment- and string-aware Rust lexer.
//!
//! The build environment has no crates.io access, so `syn` is not an
//! option (the same vendored-stand-in constraint as PR 1). The rules in
//! this crate only need a token stream that
//!
//! * never confuses comment or string contents with code (`"unsafe"` in a
//!   string must not trigger the unsafe audit),
//! * keeps comments *as tokens* (the `// SAFETY:` audit reads them), and
//! * records the 1-based source line of every token.
//!
//! Anything fancier — full expression grammar, type resolution — is out of
//! scope by design: the rules operate on token patterns plus brace-depth
//! tracking, which is exactly as much parsing as hand-maintained invariants
//! need.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer/float/char/byte literal (text preserved verbatim).
    Literal,
    /// String literal (contents preserved, quotes included).
    Str,
    /// Single punctuation character.
    Punct,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
    /// Line or block comment, text preserved verbatim.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: Kind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// `true` for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token vector. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: the lint
/// must degrade gracefully on code mid-edit.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    // Advances `line` for every newline in b[from..to).
    fn count_lines(b: &[char], from: usize, to: usize, line: &mut u32) {
        *line += b[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    }

    while i < n {
        let c = b[i];
        let start_line = line;
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Comment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            count_lines(&b, start, i, &mut line);
            out.push(Tok {
                kind: Kind::Comment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# with any # count.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                while k < n && b[k] == '#' {
                    k += 1;
                }
                k < n && b[k] == '"'
            } else {
                false
            }
        } {
            let start = i;
            if b[i] == 'b' {
                i += 1;
            }
            i += 1; // r
            let mut hashes = 0;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '"' {
                    let mut k = i + 1;
                    let mut seen = 0;
                    while k < n && b[k] == '#' && seen < hashes {
                        k += 1;
                        seen += 1;
                    }
                    if seen == hashes {
                        i = k;
                        break;
                    }
                }
                i += 1;
            }
            count_lines(&b, start, i, &mut line);
            out.push(Tok {
                kind: Kind::Str,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Ordinary / byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start = i;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            let end = i.min(n);
            count_lines(&b, start, end, &mut line);
            out.push(Tok {
                kind: Kind::Str,
                text: b[start..end].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let mut k = i + 1;
                while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                    k += 1;
                }
                if k >= n || b[k] != '\'' {
                    out.push(Tok {
                        kind: Kind::Lifetime,
                        text: b[i..k].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            // Char literal, possibly escaped.
            let start = i;
            i += 1;
            if i < n && b[i] == '\\' {
                i += 2;
                // \u{...}
                while i < n && b[i] != '\'' {
                    i += 1;
                }
            } else if i < n {
                i += 1;
            }
            if i < n && b[i] == '\'' {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Literal,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Ident,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Numeric literal (suffixes like `0u8`, `1_000`, `1.5e3` included).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Literal,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Single punctuation character.
        out.push(Tok {
            kind: Kind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds(r#"let x = "unsafe { }"; // unsafe trailing"#);
        assert!(toks
            .iter()
            .filter(|(k, _)| *k == Kind::Ident)
            .all(|(_, t)| t != "unsafe"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Comment).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 1);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* a /* b */ c */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (Kind::Ident, "fn".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"r#"has "quotes" and // not a comment"# after"##);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, Kind::Str);
        assert_eq!(toks[1], (Kind::Ident, "after".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str 'x' '\\n'");
        assert_eq!(toks[1].0, Kind::Lifetime);
        assert_eq!(toks[1].1, "'a");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Literal && t == "'x'"));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let toks = lex("/* one\ntwo */\nfn f() {}\n\"a\nb\"\nlast");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
        let last = toks.iter().find(|t| t.is_ident("last")).unwrap();
        assert_eq!(last.line, 6);
    }

    #[test]
    fn numeric_suffixes_stay_one_token() {
        let toks = kinds("0u8.encode(buf)");
        assert_eq!(toks[0], (Kind::Literal, "0u8".to_string()));
        assert_eq!(toks[1], (Kind::Punct, ".".to_string()));
    }
}
