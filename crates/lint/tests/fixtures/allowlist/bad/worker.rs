pub fn handle(msg: Option<u8>) -> u8 {
    msg.unwrap_or(0)
}
