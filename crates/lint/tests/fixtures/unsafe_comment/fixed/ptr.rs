pub fn read_byte(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
