mod avx2 {
    /// # Safety
    /// Caller must ensure the CPU supports `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kern(a: &[f32]) -> f32 {
        a[0]
    }
}

pub fn dispatch(a: &[f32]) -> f32 {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: availability checked above.
        return unsafe { avx2::kern(a) };
    }
    a[0]
}
