mod avx2 {
    /// # Safety
    /// Caller must ensure the CPU supports `avx2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kern(a: &[f32]) -> f32 {
        a[0]
    }
}

pub fn dispatch(a: &[f32]) -> f32 {
    // SAFETY: trust me.
    unsafe { avx2::kern(a) }
}
