fn roundtrip() {
    let cases = [Msg::A(7), Msg::B, Msg::C(9)];
}
