pub enum Msg {
    A(u8),
    B,
    C(u32),
}

impl Wire for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::A(v) => {
                0u8.encode(buf);
                v.encode(buf);
            }
            Msg::B => 0u8.encode(buf),
            Msg::C(x) => {
                2u8.encode(buf);
                x.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::A(u8::decode(buf)?)),
            0 => Ok(Msg::B),
            2 => Ok(Msg::C(u32::decode(buf)?)),
            t => Err(CodecError::bad(t)),
        }
    }
}
