impl Engine {
    fn compact(&self) {
        let ctl = self.control.lock();
        let ing = self.ingest.lock();
        drop(ing);
        drop(ctl);
    }
}
