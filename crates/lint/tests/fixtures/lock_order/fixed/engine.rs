impl Engine {
    fn compact(&self) {
        let ing = self.ingest.lock();
        let ctl = self.control.lock();
        drop(ctl);
        drop(ing);
    }
}
