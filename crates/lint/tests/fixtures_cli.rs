//! End-to-end tests: the `harmony-lint` binary over the checked-in
//! fixtures (a bad and a fixed tree per rule family), the library over
//! the real repo (must be clean), and mutation tests that delete a real
//! decode arm / SAFETY comment and assert the pass catches it at the
//! right location.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the binary with `--root dir`; returns (exit_code, stdout).
fn lint(dir: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_harmony-lint"))
        .arg("--root")
        .arg(dir)
        .output()
        .expect("run harmony-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Asserts `bad/` fails mentioning `expect_line`, and `fixed/` passes.
fn check_pair(name: &str, expect_line: &str) {
    let (code, stdout) = lint(&fixture(name).join("bad"));
    assert_eq!(code, 1, "{name}/bad should fail; stdout:\n{stdout}");
    assert!(
        stdout.contains(expect_line),
        "{name}/bad stdout should contain `{expect_line}`:\n{stdout}"
    );
    let (code, stdout) = lint(&fixture(name).join("fixed"));
    assert_eq!(code, 0, "{name}/fixed should pass; stdout:\n{stdout}");
}

#[test]
fn codec_missing_decode_arm() {
    check_pair("codec_decode", "codec.rs:3  HL-CODEC-DECODE");
}

#[test]
fn codec_tag_collision() {
    check_pair("codec_tags", "HL-CODEC-TAG-DUP");
}

#[test]
fn unsafe_without_safety_comment() {
    check_pair("unsafe_comment", "ptr.rs:2  HL-UNSAFE-COMMENT");
}

#[test]
fn target_feature_without_guard() {
    check_pair("unsafe_guard", "HL-UNSAFE-GUARD");
}

#[test]
fn lock_inversion() {
    check_pair("lock_order", "engine.rs:4  HL-LOCK-ORDER");
}

#[test]
fn forbidden_unwrap() {
    check_pair("forbid", "worker.rs:2  HL-FORBID-UNWRAP");
}

#[test]
fn allowlist_stale_entry_fails_and_justified_entry_suppresses() {
    check_pair("allowlist", "HL-ALLOW-STALE");
}

#[test]
fn fix_allowlist_bootstraps_a_clean_run() {
    // Copy the failing forbid fixture to a scratch dir, bootstrap the
    // allowlist, and verify the tree then lints clean.
    let dir = std::env::temp_dir().join(format!("hl-bootstrap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    for f in ["lint.toml", "worker.rs"] {
        std::fs::copy(fixture("forbid").join("bad").join(f), dir.join(f)).expect("copy fixture");
    }
    let (code, _) = lint(&dir);
    assert_eq!(code, 1);
    let status = Command::new(env!("CARGO_BIN_EXE_harmony-lint"))
        .arg("--root")
        .arg(&dir)
        .arg("--fix-allowlist")
        .status()
        .expect("run --fix-allowlist");
    assert!(status.success());
    let allow = std::fs::read_to_string(dir.join("lint.allow")).expect("lint.allow written");
    assert!(allow.contains("HL-FORBID-UNWRAP  worker.rs  handle"));
    let (code, stdout) = lint(&dir);
    assert_eq!(code, 0, "bootstrapped tree should pass:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repo_tree_is_clean() {
    let report = harmony_lint::run(&harmony_lint::default_root()).expect("lint repo");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "repo tree has findings:\n{}",
        rendered.join("\n")
    );
}

/// Deleting a single `decode` arm of the real `ToWorker` must fail with
/// `HL-CODEC-DECODE` pointing into messages.rs.
#[test]
fn real_toworker_decode_arm_deletion_is_caught() {
    let root = harmony_lint::default_root();
    let src = std::fs::read_to_string(root.join("crates/core/src/messages.rs"))
        .expect("read messages.rs");
    let arm_line = src
        .lines()
        .find(|l| l.contains("=> Ok(ToWorker::"))
        .expect("a ToWorker decode arm");
    let mutated = src.replacen(arm_line, "", 1);

    let dir = std::env::temp_dir().join(format!("hl-decode-mut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    std::fs::write(dir.join("messages.rs"), mutated).expect("write mutated");
    std::fs::write(
        dir.join("lint.toml"),
        "[codec]\nfiles = [\"messages.rs\"]\n",
    )
    .expect("write config");
    // Only the codec rule matters here; the copied file would otherwise
    // also trip path rules it is exempt from in its real location.
    let cfg = harmony_lint::config::load(&dir.join("lint.toml")).expect("config");
    let mut al = harmony_lint::allowlist::Allowlist::default();
    let report = harmony_lint::run_with(&dir, &cfg, &mut al).expect("lint scratch");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule.id() == "HL-CODEC-DECODE" && f.file == "messages.rs"),
        "expected HL-CODEC-DECODE in messages.rs, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deleting any `// SAFETY:` comment in the real distance.rs must fail
/// with `HL-UNSAFE-COMMENT`.
#[test]
fn real_distance_safety_comment_deletion_is_caught() {
    let root = harmony_lint::default_root();
    let src = std::fs::read_to_string(root.join("crates/index/src/distance.rs"))
        .expect("read distance.rs");
    let safety_line = src
        .lines()
        .find(|l| l.trim_start().starts_with("// SAFETY:"))
        .expect("a SAFETY comment");
    let mutated = src.replacen(safety_line, "", 1);

    let dir = std::env::temp_dir().join(format!("hl-safety-mut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    std::fs::write(dir.join("distance.rs"), mutated).expect("write mutated");
    std::fs::write(dir.join("lint.toml"), "").expect("write config");
    let cfg = harmony_lint::config::load(&dir.join("lint.toml")).expect("config");
    let mut al = harmony_lint::allowlist::Allowlist::default();
    let report = harmony_lint::run_with(&dir, &cfg, &mut al).expect("lint scratch");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule.id() == "HL-UNSAFE-COMMENT" && f.file == "distance.rs"),
        "expected HL-UNSAFE-COMMENT in distance.rs, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
