//! Markdown + CSV table emission.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-ordered results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the markdown rendering to stdout and writes a CSV copy under
    /// `out_dir/<name>.csv`. IO failures are reported, not fatal.
    pub fn emit(&self, out_dir: &Path, name: &str) {
        print!("{}", self.to_markdown());
        let path: PathBuf = out_dir.join(format!("{name}.csv"));
        if let Err(e) = fs::create_dir_all(out_dir) {
            eprintln!("warning: cannot create {}: {e}", out_dir.display());
            return;
        }
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Formats a float with `digits` decimals, trimming noise.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a byte count in MiB.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a"));
        assert!(md.contains("x,y"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(mib(2 * 1024 * 1024), "2.0MiB");
    }
}
