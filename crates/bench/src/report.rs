//! Markdown + CSV table emission.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-ordered results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the markdown rendering to stdout and writes a CSV copy under
    /// `out_dir/<name>.csv`. IO failures are reported, not fatal.
    pub fn emit(&self, out_dir: &Path, name: &str) {
        print!("{}", self.to_markdown());
        let path: PathBuf = out_dir.join(format!("{name}.csv"));
        if let Err(e) = fs::create_dir_all(out_dir) {
            eprintln!("warning: cannot create {}: {e}", out_dir.display());
            return;
        }
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// A minimal JSON value for machine-readable benchmark summaries. The
/// build environment vendors no serde; this hand-rolled subset (objects,
/// arrays, strings, numbers, bools) is everything the harness emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer (exact, no float formatting).
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Starts an empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (builder style).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: impl Into<String>, value: Json) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders pretty-printed JSON with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Num(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Writes `json` to `out_dir/BENCH_<name>.json` — the machine-readable
/// companion of [`Table::emit`]. IO failures are reported, not fatal.
pub fn emit_bench_json(out_dir: &Path, name: &str, json: &Json) {
    let path = out_dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    if let Err(e) = fs::write(&path, json.render()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("[saved {}]", path.display());
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of an unsorted sample set.
/// Returns 0.0 for an empty slice.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN latency samples"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Formats a float with `digits` decimals, trimming noise.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a byte count in MiB.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a"));
        assert!(md.contains("x,y"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(mib(2 * 1024 * 1024), "2.0MiB");
    }

    #[test]
    fn json_renders_nested_structures() {
        let j = Json::obj()
            .field("bench", Json::Str("multi_client".into()))
            .field("qps", Json::Num(1234.5))
            .field("ok", Json::Bool(true))
            .field(
                "rows",
                Json::Arr(vec![Json::obj()
                    .field("clients", Json::Int(4))
                    .field("p99_ms", Json::Num(2.5))]),
            );
        let s = j.render();
        assert!(s.contains("\"bench\": \"multi_client\""));
        assert!(s.contains("\"qps\": 1234.5"));
        assert!(s.contains("\"clients\": 4"));
        assert!(s.contains("\"p99_ms\": 2.5"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_strings_and_nulls_non_finite() {
        let s = Json::obj()
            .field("msg", Json::Str("a\"b\\c\nd".into()))
            .field("nan", Json::Num(f64::NAN))
            .render();
        assert!(s.contains(r#""msg": "a\"b\\c\nd""#));
        assert!(s.contains("\"nan\": null"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut xs, 50.0), 2.0);
        assert_eq!(percentile(&mut xs, 99.0), 4.0);
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }
}
