//! Minimal argument parsing shared by every benchmark binary.

use std::path::PathBuf;

use harmony_cluster::TransportKind;
use harmony_index::BlockRepr;

/// Common benchmark knobs.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset cardinality multiplier vs the paper's Table 2 sizes.
    pub scale: f64,
    /// Queries per measurement.
    pub queries: usize,
    /// Worker machines (the paper's default is 4).
    pub workers: usize,
    /// Coarser sweeps for smoke runs.
    pub quick: bool,
    /// Output directory for CSV copies.
    pub out_dir: PathBuf,
    /// Cluster fabric: in-process channels or real loopback TCP.
    pub transport: TransportKind,
    /// Block representation: exact f32 or SQ8 two-stage.
    pub repr: BlockRepr,
}

impl Default for BenchArgs {
    fn default() -> Self {
        let scale = std::env::var("HARMONY_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.02);
        Self {
            scale,
            queries: 200,
            workers: 4,
            quick: false,
            out_dir: PathBuf::from("bench_results"),
            transport: TransportKind::InProc,
            repr: BlockRepr::F32,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`. Unknown flags abort with usage.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument stream (testable).
    ///
    /// # Panics
    /// Panics on malformed flags — acceptable in a bench binary.
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--scale" => out.scale = take("--scale").parse().expect("bad --scale"),
                "--queries" => out.queries = take("--queries").parse().expect("bad --queries"),
                "--workers" => out.workers = take("--workers").parse().expect("bad --workers"),
                "--out-dir" => out.out_dir = PathBuf::from(take("--out-dir")),
                "--quick" => out.quick = true,
                "--transport" => {
                    out.transport = match take("--transport").as_str() {
                        "inproc" => TransportKind::InProc,
                        "tcp" => TransportKind::tcp(),
                        other => panic!("bad --transport {other} (expected inproc|tcp)"),
                    }
                }
                "--repr" => {
                    out.repr = match take("--repr").as_str() {
                        "f32" => BlockRepr::F32,
                        "sq8" => BlockRepr::Sq8,
                        other => panic!("bad --repr {other} (expected f32|sq8)"),
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale f] [--queries n] [--workers n] [--out-dir d] \
                         [--transport inproc|tcp] [--repr f32|sq8] [--quick]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(out.scale > 0.0, "--scale must be positive");
        assert!(out.queries > 0, "--queries must be positive");
        assert!(out.workers > 0, "--workers must be positive");
        out
    }

    /// Lowercase name of the selected block representation.
    pub fn repr_name(&self) -> &'static str {
        match self.repr {
            BlockRepr::F32 => "f32",
            BlockRepr::Sq8 => "sq8",
        }
    }

    /// Artifact name for the selected representation: the f32 baseline keeps
    /// the bare `base` name, sq8 runs get a `_sq8` suffix so both sets of
    /// CSV/JSON outputs can coexist in one `--out-dir`.
    pub fn out_name(&self, base: &str) -> String {
        match self.repr {
            BlockRepr::F32 => base.to_string(),
            BlockRepr::Sq8 => format!("{base}_sq8"),
        }
    }

    /// Queries clamped for quick mode.
    pub fn effective_queries(&self) -> usize {
        if self.quick {
            self.queries.min(50)
        } else {
            self.queries
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sane() {
        let a = parse(&[]);
        assert!(a.scale > 0.0);
        assert_eq!(a.workers, 4);
        assert!(!a.quick);
    }

    #[test]
    fn flags_override() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--queries",
            "10",
            "--workers",
            "8",
            "--quick",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.queries, 10);
        assert_eq!(a.workers, 8);
        assert!(a.quick);
        assert_eq!(a.effective_queries(), 10);
    }

    #[test]
    fn quick_clamps_queries() {
        let a = parse(&["--queries", "500", "--quick"]);
        assert_eq!(a.effective_queries(), 50);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn transport_flag_selects_fabric() {
        assert!(matches!(parse(&[]).transport, TransportKind::InProc));
        assert!(matches!(
            parse(&["--transport", "inproc"]).transport,
            TransportKind::InProc
        ));
        assert!(matches!(
            parse(&["--transport", "tcp"]).transport,
            TransportKind::Tcp(_)
        ));
    }

    #[test]
    #[should_panic(expected = "bad --transport")]
    fn bad_transport_panics() {
        parse(&["--transport", "carrier-pigeon"]);
    }

    #[test]
    fn repr_flag_selects_representation() {
        assert!(matches!(parse(&[]).repr, BlockRepr::F32));
        assert!(matches!(parse(&["--repr", "f32"]).repr, BlockRepr::F32));
        assert!(matches!(parse(&["--repr", "sq8"]).repr, BlockRepr::Sq8));
    }

    #[test]
    #[should_panic(expected = "bad --repr")]
    fn bad_repr_panics() {
        parse(&["--repr", "fp16"]);
    }

    #[test]
    fn out_name_suffixes_sq8_only() {
        assert_eq!(parse(&[]).out_name("fig6"), "fig6");
        assert_eq!(parse(&["--repr", "sq8"]).out_name("fig6"), "fig6_sq8");
        assert_eq!(parse(&["--repr", "sq8"]).repr_name(), "sq8");
    }
}
