//! Figure 11b — scalability: speedup over single-node Faiss at 4 / 8 / 16 /
//! 20 workers for the three distribution strategies.
//!
//! Paper shape: Harmony scales super-linearly (pruning), Harmony-vector
//! tracks the worker count linearly, Harmony-dimension rises then flattens
//! or declines as per-message latency eats the thinner dimension blocks.

use harmony_baseline::FaissLikeEngine;
use harmony_bench::runner::{
    build_harmony, measure_faiss, measure_harmony, nlist_for_clamped, take_queries, BENCH_SEED,
};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;
use harmony_index::Metric;

fn main() {
    let args = BenchArgs::parse();
    let worker_counts: &[usize] = if args.quick { &[4, 8] } else { &[4, 8, 16, 20] };
    let k = 10;

    let dataset = DatasetAnalog::Sift1M.generate(args.scale);
    let nlist = nlist_for_clamped(dataset.len());
    let queries = take_queries(&dataset.queries, args.effective_queries());
    eprintln!(
        "[fig11b] Sift1M analog: {} x {}d, nlist {nlist}",
        dataset.len(),
        dataset.dim()
    );

    let faiss =
        FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &dataset.base).expect("faiss");
    let nprobe = (nlist / 8).max(4);
    let (f_qps, _, _) = measure_faiss(&faiss, &queries, k, nprobe, None);

    let mut table = Table::new(
        "Fig. 11b — speedup over 1-node Faiss vs worker count (paper: Harmony super-linear, vector ~linear, dimension peaks then declines)",
        &["workers", "harmony x", "vector x", "dimension x"],
    );

    for &workers in worker_counts {
        let opts = SearchOptions::new(k).with_nprobe(nprobe);
        let mut cells = vec![workers.to_string()];
        for mode in [
            EngineMode::Harmony,
            EngineMode::HarmonyVector,
            EngineMode::HarmonyDimension,
        ] {
            let engine = build_harmony(&dataset, mode, workers, nlist);
            let m = measure_harmony(&engine, &queries, &opts, None);
            cells.push(report::num(
                if f_qps > 0.0 { m.qps / f_qps } else { 0.0 },
                2,
            ));
            engine.shutdown().expect("shutdown");
        }
        table.row(cells);
    }
    table.emit(&args.out_dir, "fig11b_scalability");
}
