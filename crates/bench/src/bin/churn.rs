//! Ingest churn — the mutable-shard lifecycle under load: QPS and
//! recall@10 before any churn, with pending deltas and tombstones (fresh
//! rows served from the exact-f32 delta scan), *during* a live
//! compaction hammered by 4 concurrent sessions, and after the folded
//! epoch settles.
//!
//! Recall in the churned phases is scored against exact ground truth over
//! the *live* logical set (base − deleted + fresh), so the delta scan and
//! tombstone suppression are graded on what the index should actually
//! contain. Fresh-data recall is reported separately: every live fresh
//! vector's self-query must rank it first — 1.0 by construction.
//!
//! `--assert-churn` turns the run into a smoke check: it exits non-zero
//! unless fresh-data recall is 1.0, the compaction folded rows and
//! dropped tombstones, and no mid-compaction batch lost or duplicated
//! results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use harmony_bench::report::{emit_bench_json, percentile, Json};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{HarmonyConfig, HarmonyEngine, SearchOptions};
use harmony_data::ground_truth::{ground_truth, recall_at_k};
use harmony_data::SyntheticSpec;
use harmony_index::{Metric, VectorStore};

const SEED: u64 = 0x00C4_0A11;
const FRESH_BASE_ID: u64 = 1_000_000;

/// A fresh vector absent from the base set: a base row with an
/// index-dependent nudge, unique per `i`.
fn fresh_vector(base: &VectorStore, i: usize) -> Vec<f32> {
    base.row((i * 131) % base.len())
        .iter()
        .enumerate()
        .map(|(j, &x)| x + 0.05 + 0.01 * ((i + j) % 7) as f32)
        .collect()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let assert_churn = raw.iter().any(|a| a == "--assert-churn");
    raw.retain(|a| a != "--assert-churn");
    let args = BenchArgs::parse_from(raw.into_iter());

    let n = if args.quick { 12_000 } else { 48_000 };
    let dim = if args.quick { 32 } else { 64 };
    let nlist = 32;
    let fresh_n = if args.quick { 64 } else { 256 };
    let delete_n = fresh_n / 2;
    let dataset = SyntheticSpec::clustered(n, dim, 8).with_seed(21).generate();
    eprintln!(
        "[churn] {} x {}d, nlist {nlist}, +{fresh_n} upserts, -{delete_n} deletes, repr {:?}",
        n, dim, args.repr
    );

    let config = HarmonyConfig::builder()
        .n_machines(args.workers)
        .nlist(nlist)
        .seed(SEED)
        .transport(args.transport.clone())
        .repr(args.repr)
        .build()
        .expect("valid config");
    let engine = HarmonyEngine::build(config, &dataset.base).expect("engine build");

    let queries: VectorStore = {
        let take: Vec<usize> =
            (0..args.effective_queries().max(64).min(dataset.queries.len())).collect();
        dataset.queries.gather(&take)
    };
    let opts = SearchOptions::new(10).with_nprobe(8);

    let mut table = Table::new(
        "Ingest churn — QPS and recall@10 across the delta/tombstone/compaction lifecycle",
        &[
            "phase",
            "epoch",
            "QPS",
            "recall@10",
            "pending deltas",
            "tombstones",
        ],
    );
    let phase_row = |table: &mut Table, phase: &str, engine: &HarmonyEngine, qps: f64, rec: f64| {
        table.row(vec![
            phase.to_string(),
            engine.current_epoch().to_string(),
            report::num(qps, 1),
            report::num(rec, 4),
            engine.pending_deltas().to_string(),
            engine.tombstone_count().to_string(),
        ]);
    };

    // Phase 1 — pristine index, truth over the base set.
    let truth_base = ground_truth(&dataset.base, &queries, 10, Metric::L2);
    let before = engine.search_batch(&queries, &opts).expect("before batch");
    let before_qps = before.qps_modeled();
    let before_recall = recall_at_k(&truth_base, &before.results, 10);
    phase_row(
        &mut table,
        "before churn",
        &engine,
        before_qps,
        before_recall,
    );

    // Churn: fresh upserts and soft deletes.
    for i in 0..fresh_n {
        engine
            .upsert(FRESH_BASE_ID + i as u64, &fresh_vector(&dataset.base, i))
            .expect("upsert");
    }
    let mut deleted: Vec<u64> = Vec::new();
    for i in 0..delete_n {
        let id = (i * 149 + 3) as u64 % dataset.base.len() as u64;
        if engine.delete(id).expect("delete") {
            deleted.push(id);
        }
    }

    // Exact truth over the live logical set: base − deleted + fresh.
    let live: VectorStore = {
        let mut s = VectorStore::with_capacity(dim, dataset.base.len() + fresh_n);
        for r in 0..dataset.base.len() {
            let id = dataset.base.id(r);
            if !deleted.contains(&id) {
                s.push(id, dataset.base.row(r)).expect("dims");
            }
        }
        for i in 0..fresh_n {
            s.push(FRESH_BASE_ID + i as u64, &fresh_vector(&dataset.base, i))
                .expect("dims");
        }
        s
    };
    let truth_live = ground_truth(&live, &queries, 10, Metric::L2);

    // Phase 2 — pending deltas: fresh rows come from the exact delta scan.
    let churned = engine.search_batch(&queries, &opts).expect("churned batch");
    let churned_qps = churned.qps_modeled();
    let churned_recall = recall_at_k(&truth_live, &churned.results, 10);
    phase_row(
        &mut table,
        "churned (pre-compaction)",
        &engine,
        churned_qps,
        churned_recall,
    );

    // Fresh-data recall: every live fresh vector's self-query ranks it
    // first, at full k, straight off the delta lists.
    let fresh_queries: VectorStore = {
        let mut s = VectorStore::with_capacity(dim, fresh_n);
        for i in 0..fresh_n {
            s.push(i as u64, &fresh_vector(&dataset.base, i))
                .expect("dims");
        }
        s
    };
    let fresh_out = engine
        .search_batch(&fresh_queries, &opts)
        .expect("fresh batch");
    let fresh_hits = fresh_out
        .results
        .iter()
        .enumerate()
        .filter(|(i, r)| r.first().map(|n| n.id) == Some(FRESH_BASE_ID + *i as u64))
        .count();
    let fresh_recall = fresh_hits as f64 / fresh_n as f64;
    eprintln!("[churn] fresh-data recall (self-query top-1): {fresh_recall:.4}");

    // Phase 3 — live compaction under 4 concurrent sessions.
    let stop = AtomicBool::new(false);
    let (creport, live_served, mut live_lat_ms, live_qps_sum, live_batches) =
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..4usize {
                let engine = &engine;
                let opts = &opts;
                let stop = &stop;
                let rows: Vec<usize> = (0..32)
                    .map(|i| (t * 977 + i * 31) % queries.len())
                    .collect();
                let batch = queries.gather(&rows);
                handles.push(s.spawn(move || {
                    let mut served = 0usize;
                    let mut lats = Vec::new();
                    let mut qps_sum = 0.0f64;
                    let mut batches = 0usize;
                    while !stop.load(Ordering::Relaxed) || served == 0 {
                        let r0 = Instant::now();
                        let out = engine.search_batch(&batch, opts).expect("live batch");
                        lats.push(r0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(out.results.len(), batch.len(), "lost results");
                        for r in &out.results {
                            let mut ids: Vec<u64> = r.iter().map(|n| n.id).collect();
                            ids.sort_unstable();
                            ids.dedup();
                            assert_eq!(ids.len(), r.len(), "duplicated results");
                        }
                        qps_sum += out.qps_modeled();
                        batches += 1;
                        served += out.results.len();
                    }
                    (served, lats, qps_sum, batches)
                }));
            }
            let creport = engine.compact().expect("live compaction");
            stop.store(true, Ordering::Relaxed);
            let mut served = 0usize;
            let mut lats = Vec::new();
            let mut qps_sum = 0.0f64;
            let mut batches = 0usize;
            for h in handles {
                let (sv, l, q, b) = h.join().expect("session");
                served += sv;
                lats.extend(l);
                qps_sum += q;
                batches += b;
            }
            eprintln!("[churn] {served} live queries served across the compaction, none lost");
            (creport, served, lats, qps_sum, batches)
        });
    let during_qps = if live_batches > 0 {
        live_qps_sum / live_batches as f64
    } else {
        0.0
    };
    eprintln!(
        "[churn] compaction epoch {}: folded {} rows, dropped {} tombstones",
        creport.epoch, creport.folded_rows, creport.dropped_tombstones
    );
    phase_row(
        &mut table,
        "during compaction",
        &engine,
        during_qps,
        f64::NAN,
    );

    // Phase 4 — settled post-compaction layout; same live truth.
    let after = engine.search_batch(&queries, &opts).expect("after batch");
    let after_qps = after.qps_modeled();
    let after_recall = recall_at_k(&truth_live, &after.results, 10);
    phase_row(
        &mut table,
        "after compaction",
        &engine,
        after_qps,
        after_recall,
    );

    table.emit(&args.out_dir, "churn");
    let summary = Json::obj()
        .field("bench", Json::Str("churn".into()))
        .field("transport", Json::Str(args.transport.label().into()))
        .field("repr", Json::Str(format!("{:?}", args.repr).to_lowercase()))
        .field("workers", Json::Int(args.workers as u64))
        .field("fresh_upserts", Json::Int(fresh_n as u64))
        .field("deletes", Json::Int(deleted.len() as u64))
        .field("fresh_recall_top1", Json::Num(fresh_recall))
        .field("before_qps", Json::Num(before_qps))
        .field("before_recall_at10", Json::Num(before_recall))
        .field("churned_qps", Json::Num(churned_qps))
        .field("churned_recall_at10", Json::Num(churned_recall))
        .field("during_compaction_qps", Json::Num(during_qps))
        .field("after_qps", Json::Num(after_qps))
        .field("after_recall_at10", Json::Num(after_recall))
        .field(
            "compaction",
            Json::obj()
                .field("epoch", Json::Int(creport.epoch))
                .field("folded_rows", Json::Int(creport.folded_rows as u64))
                .field(
                    "dropped_tombstones",
                    Json::Int(creport.dropped_tombstones as u64),
                )
                .field("queries_served", Json::Int(live_served as u64))
                .field("p50_ms", Json::Num(percentile(&mut live_lat_ms, 50.0)))
                .field("p99_ms", Json::Num(percentile(&mut live_lat_ms, 99.0))),
        );
    emit_bench_json(&args.out_dir, "churn", &summary);

    if assert_churn {
        assert!(
            (fresh_recall - 1.0).abs() < f64::EPSILON,
            "--assert-churn: fresh-data recall {fresh_recall} must be 1.0"
        );
        assert!(
            creport.folded_rows > 0 && creport.dropped_tombstones > 0,
            "--assert-churn: compaction must fold rows and drop tombstones"
        );
        assert!(
            after_recall >= churned_recall - 0.02,
            "--assert-churn: post-compaction recall {after_recall:.4} regressed vs churned {churned_recall:.4}"
        );
        eprintln!(
            "[churn] OK: fresh recall 1.0, {} rows folded, recall {:.4} -> {:.4}",
            creport.folded_rows, churned_recall, after_recall
        );
    }
    engine.shutdown().expect("shutdown");
}
