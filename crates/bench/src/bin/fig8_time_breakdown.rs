//! Figure 8 — normalized query time per distribution strategy with its
//! communication / computation / other split.
//!
//! Paper shape (Msong, Sift1M): Harmony-dimension = 100 % (slowest);
//! Harmony-vector ≈ 68.1 / 46.8 %; Harmony ≈ 54.6 / 45.1 % — i.e. Harmony
//! matches or beats vector despite paying some communication, because
//! pruning cuts its computation.

use harmony_bench::runner::{build_harmony, measure_harmony, nlist_for_clamped, take_queries};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;

fn main() {
    let args = BenchArgs::parse();
    let datasets = [DatasetAnalog::Msong, DatasetAnalog::Sift1M];
    let k = 10;

    let mut table = Table::new(
        "Fig. 8 — normalized time and breakdown (paper: dimension 100 %, vector 68.1/46.8 %, Harmony 54.6/45.1 %)",
        &[
            "dataset", "strategy", "normalized time %", "compute %", "comm %", "other %",
        ],
    );

    for analog in datasets {
        let dataset = analog.generate(args.scale);
        let queries = take_queries(&dataset.queries, args.effective_queries());
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!("[fig8] {analog}: {} x {}d", dataset.len(), dataset.dim());
        let opts = SearchOptions::new(k).with_nprobe((nlist / 8).max(4));

        // Measure all three; normalize to the slowest (dimension, per paper).
        let mut rows = Vec::new();
        let mut dim_time = 0.0f64;
        for mode in [
            EngineMode::HarmonyDimension,
            EngineMode::HarmonyVector,
            EngineMode::Harmony,
        ] {
            let engine = build_harmony(&dataset, mode, args.workers, nlist);
            let m = measure_harmony(&engine, &queries, &opts, None);
            let time = if m.qps > 0.0 { 1.0 / m.qps } else { 0.0 };
            if mode == EngineMode::HarmonyDimension {
                dim_time = time;
            }
            rows.push((mode, time, m.breakdown));
            engine.shutdown().expect("shutdown");
        }
        for (mode, time, (c, comm, other)) in rows {
            let normalized = if dim_time > 0.0 {
                time / dim_time * 100.0
            } else {
                0.0
            };
            table.row(vec![
                analog.name().to_string(),
                mode.name().to_string(),
                report::num(normalized, 1),
                report::num(c, 1),
                report::num(comm, 1),
                report::num(other, 1),
            ]);
        }
    }
    table.emit(&args.out_dir, "fig8_time_breakdown");
}
