//! Figure 2a — pruning ratio by dimension slice.
//!
//! Paper setup: four machines, each owning one quarter of the dimensions;
//! cumulative pruning ratios reported per slice were 0 / 49.5 / 82.3 /
//! 97.4 %. We run the dimension-partitioned engine on the SIFT analog and
//! report the same cumulative series.

use harmony_bench::runner::{build_harmony, nlist_for_clamped, take_queries};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;

fn main() {
    let args = BenchArgs::parse();
    let dataset = DatasetAnalog::Sift1M.generate(args.scale);
    let queries = take_queries(&dataset.queries, args.effective_queries());
    let nlist = nlist_for_clamped(dataset.len());
    eprintln!(
        "[fig2a] {} vectors x {} dims, {} queries, nlist {nlist}, 4 dimension slices",
        dataset.len(),
        dataset.dim(),
        queries.len()
    );

    let engine = build_harmony(&dataset, EngineMode::HarmonyDimension, 4, nlist);
    let opts = SearchOptions::new(10).with_nprobe((nlist / 8).max(4));
    let _ = engine.search_batch(&queries, &opts).expect("search");
    let stats = engine.collect_stats().expect("stats");
    let ratios = stats.slices.cumulative_ratios();

    let mut table = Table::new(
        "Fig. 2a — cumulative pruning ratio by dimension slice (paper: 0 / 49.5 / 82.3 / 97.4 %)",
        &["dims covered (%)", "pruning ratio (%)", "paper (%)"],
    );
    let paper = [0.0, 49.5, 82.3, 97.4];
    for (i, r) in ratios.iter().enumerate() {
        table.row(vec![
            format!("{}", (i + 1) * 100 / ratios.len().max(1)),
            report::num(*r, 1),
            report::num(paper.get(i).copied().unwrap_or(f64::NAN), 1),
        ]);
    }
    table.emit(&args.out_dir, "fig2a_pruning_ratio");
    println!(
        "\nwork saved by pruning: {:.1}% of point-dimension products",
        stats.slices.work_saved_percent()
    );
    engine.shutdown().expect("shutdown");
}
