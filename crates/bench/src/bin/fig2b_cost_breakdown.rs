//! Figure 2b — time-overhead breakdown of dimension- (D) vs vector-based
//! (V) partitioning under blocking (B) and non-blocking (NB) communication.
//!
//! Paper observation: V's communication share is far below D's (V ≈ 2 %,
//! D up to 52 % blocked / 21 % non-blocked), and non-blocking delivery
//! shrinks the communication share for both.

use harmony_bench::runner::{
    build_harmony_with, measure_harmony, nlist_for_clamped, take_queries, BENCH_SEED,
};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, HarmonyConfig, SearchOptions};
use harmony_data::DatasetAnalog;

fn main() {
    let args = BenchArgs::parse();
    let dataset = DatasetAnalog::Sift1M.generate(args.scale);
    let queries = take_queries(&dataset.queries, args.effective_queries());
    let nlist = nlist_for_clamped(dataset.len());
    eprintln!(
        "[fig2b] {} vectors, {} queries, nlist {nlist}, {} workers",
        dataset.len(),
        queries.len(),
        args.workers
    );

    let mut table = Table::new(
        "Fig. 2b — time overhead breakdown (computation / communication / other %, paper: D_B 52.2/47.6, D_NB 21+, V_B 98.0/2.0, V_NB 98.3/1.7)",
        &["config", "compute %", "comm %", "other %"],
    );

    let opts = SearchOptions::new(10).with_nprobe((nlist / 8).max(4));
    for (mode, tag) in [
        (EngineMode::HarmonyDimension, "D"),
        (EngineMode::HarmonyVector, "V"),
    ] {
        for (pipeline, comm_tag) in [(false, "B"), (true, "NB")] {
            let config = HarmonyConfig::builder()
                .n_machines(args.workers)
                .nlist(nlist)
                .mode(mode)
                .pipeline(pipeline)
                .seed(BENCH_SEED)
                .build()
                .expect("config");
            let engine = build_harmony_with(&dataset, config);
            let m = measure_harmony(&engine, &queries, &opts, None);
            let (c, comm, other) = m.breakdown;
            table.row(vec![
                format!("{tag}_{comm_tag}"),
                report::num(c, 2),
                report::num(comm, 2),
                report::num(other, 2),
            ]);
            engine.shutdown().expect("shutdown");
        }
    }
    table.emit(&args.out_dir, "fig2b_cost_breakdown");
}
