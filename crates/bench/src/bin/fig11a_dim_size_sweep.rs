//! Figure 11a — Harmony speedup over single-node Faiss as a function of
//! dimensionality (64–512) and dataset size (250K–1M Gaussian vectors).
//!
//! Paper shape: speedup grows monotonically along both axes (≈ +26.8 % per
//! dimension doubling, ≈ +25.9 % per size doubling), exceeding the machine
//! count (400 %) in the top-right corner thanks to pruning. Sizes are
//! scaled by `--scale` like every other experiment.

use harmony_baseline::FaissLikeEngine;
use harmony_bench::runner::{
    build_harmony, measure_faiss, measure_harmony, nlist_for_clamped, take_queries, BENCH_SEED,
};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::SyntheticSpec;
use harmony_index::Metric;

fn main() {
    let args = BenchArgs::parse();
    let dims: &[usize] = if args.quick {
        &[64, 256]
    } else {
        &[64, 128, 256, 512]
    };
    let sizes: &[usize] = if args.quick {
        &[250_000, 1_000_000]
    } else {
        &[250_000, 500_000, 750_000, 1_000_000]
    };
    let k = 10;

    let mut table = Table::new(
        "Fig. 11a — Harmony speedup over Faiss (%, paper: 79.7 % at 250Kx64 rising to 413.3 % at 1Mx512)",
        &["vectors (paper-scale)", "dim", "actual n", "faiss QPS", "harmony QPS", "speedup %"],
    );

    for &dim in dims {
        for &size in sizes {
            let n = ((size as f64 * args.scale) as usize).max(2_000);
            let dataset = SyntheticSpec::gaussian(n, dim)
                .with_seed(BENCH_SEED)
                .generate();
            let nlist = nlist_for_clamped(n);
            let queries = take_queries(&dataset.queries, args.effective_queries().min(100));
            eprintln!("[fig11a] {n} x {dim}d (paper-scale {size})");

            let faiss = FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &dataset.base)
                .expect("faiss");
            let harmony = build_harmony(&dataset, EngineMode::Harmony, args.workers, nlist);
            let nprobe = (nlist / 8).max(4);
            let opts = SearchOptions::new(k).with_nprobe(nprobe);
            let (f_qps, _, _) = measure_faiss(&faiss, &queries, k, nprobe, None);
            let h = measure_harmony(&harmony, &queries, &opts, None);
            let speedup = if f_qps > 0.0 {
                h.qps / f_qps * 100.0
            } else {
                0.0
            };
            table.row(vec![
                size.to_string(),
                dim.to_string(),
                n.to_string(),
                report::num(f_qps, 1),
                report::num(h.qps, 1),
                report::num(speedup, 1),
            ]);
            harmony.shutdown().expect("shutdown");
        }
    }
    table.emit(&args.out_dir, "fig11a_dim_size_sweep");
}
