//! Figure 7 — query performance under skewed load.
//!
//! The paper manipulates the query sets "to ensure different load
//! differences on each machine" (§6.2.2): the skew is *machine-targeted*,
//! not merely distribution-shaped. We reproduce that by directing a
//! `level` fraction of the queries at IVF clusters owned by one hot shard
//! of the vector-partitioned layout (queries are perturbed centroids of
//! those clusters), the adversarial case for vector-based partitioning.
//!
//! Paper shape: as load variance grows, Harmony-vector's QPS collapses
//! (−56 % average); Harmony-dimension stays flat; Harmony stays flat *and*
//! on top.

use harmony_bench::runner::{build_harmony, measure_harmony, nlist_for_clamped, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, HarmonyEngine, SearchOptions};
use harmony_data::DatasetAnalog;
use harmony_index::VectorStore;
use rand::prelude::*;

/// Hot clusters of shard 0 whose probe neighborhoods stay inside shard 0:
/// for each cluster owned by the hot shard, score how many of its `nprobe`
/// nearest clusters are also owned by the shard, and keep the top quarter.
/// Queries aimed at these clusters route (nearly) all their work to one
/// machine under vector partitioning — the paper's "hot partition" case.
fn shard_local_hot_clusters(engine: &HarmonyEngine, nprobe: usize) -> Vec<u32> {
    let centroids = engine.centroids();
    let shard0: std::collections::HashSet<u32> =
        engine.shard_clusters()[0].iter().copied().collect();
    let mut scored: Vec<(usize, u32)> = shard0
        .iter()
        .map(|&c| {
            let probes = harmony_index::kmeans::nearest_centroids(
                centroids.row(c as usize),
                centroids,
                nprobe,
            );
            let inside = probes.iter().filter(|p| shard0.contains(p)).count();
            (inside, c)
        })
        .collect();
    scored.sort_unstable_by(|a, b| b.cmp(a));
    scored
        .iter()
        .take((scored.len() / 4).max(1))
        .map(|&(_, c)| c)
        .collect()
}

/// Queries aimed at the hot shard with probability `level`, uniform
/// elsewhere. Each query is a jittered copy of a cluster centroid, so its
/// probes concentrate around the chosen cluster.
fn targeted_queries(
    vector_engine: &HarmonyEngine,
    hot_clusters: &[u32],
    level: f64,
    n: usize,
    seed: u64,
) -> VectorStore {
    let centroids = vector_engine.centroids();
    let nlist = centroids.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = VectorStore::with_capacity(centroids.dim(), n);
    for i in 0..n {
        let cluster = if rng.random_bool(level.clamp(0.0, 1.0)) && !hot_clusters.is_empty() {
            hot_clusters[rng.random_range(0..hot_clusters.len())] as usize
        } else {
            rng.random_range(0..nlist)
        };
        let mut q = centroids.row(cluster).to_vec();
        for x in q.iter_mut() {
            *x += rng.random_range(-0.01..0.01f32);
        }
        queries.push(i as u64, &q).expect("dims match");
    }
    queries
}

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M]
    } else {
        &[
            DatasetAnalog::Sift1M,
            DatasetAnalog::Msong,
            DatasetAnalog::Deep1M,
            DatasetAnalog::Glove1_2M,
        ]
    };
    let skew_levels: &[f64] = if args.quick {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let k = 10;

    let mut table = Table::new(
        "Fig. 7 — average QPS vs load variance (4 workers; paper: vector −56 % under skew, Harmony stable & on top)",
        &[
            "dataset", "skew", "harmony QPS", "vector QPS", "dimension QPS",
            "vector load σ (ms)", "harmony load σ (ms)",
        ],
    );

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!(
            "[fig7] {analog}: {} x {}d, nlist {nlist}",
            dataset.len(),
            dataset.dim()
        );
        let harmony = build_harmony(&dataset, EngineMode::Harmony, args.workers, nlist);
        let vector = build_harmony(&dataset, EngineMode::HarmonyVector, args.workers, nlist);
        let dimension = build_harmony(&dataset, EngineMode::HarmonyDimension, args.workers, nlist);
        // Few probes per query keep the per-query footprint on few shards —
        // the regime where hot partitions hurt vector partitioning most.
        let nprobe = 4;
        let opts = SearchOptions::new(k).with_nprobe(nprobe);
        let hot_clusters = shard_local_hot_clusters(&vector, nprobe);

        for &level in skew_levels {
            let queries = targeted_queries(
                &vector,
                &hot_clusters,
                level,
                args.effective_queries(),
                BENCH_SEED ^ level.to_bits(),
            );
            let h = measure_harmony(&harmony, &queries, &opts, None);
            let v = measure_harmony(&vector, &queries, &opts, None);
            let d = measure_harmony(&dimension, &queries, &opts, None);
            table.row(vec![
                analog.name().to_string(),
                report::num(level, 2),
                report::num(h.qps, 1),
                report::num(v.qps, 1),
                report::num(d.qps, 1),
                report::num(v.imbalance / 1e6, 3),
                report::num(h.imbalance / 1e6, 3),
            ]);
        }
        harmony.shutdown().expect("shutdown");
        vector.shutdown().expect("shutdown");
        dimension.shutdown().expect("shutdown");
    }
    table.emit(&args.out_dir, "fig7_skewed_load");
}
