//! Figure 10 — index build time breakdown: Train / Add / Pre-assign.
//!
//! Paper shape: Train and Add are nearly identical across methods (the
//! clustering is shared); Pre-assign exists only for the distributed
//! engines and is larger for dimension-including plans, scaling with data
//! size.

use harmony_baseline::FaissLikeEngine;
use harmony_bench::runner::{build_harmony, nlist_for_clamped, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::EngineMode;
use harmony_data::DatasetAnalog;
use harmony_index::Metric;

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M, DatasetAnalog::Msong]
    } else {
        &DatasetAnalog::SMALL
    };

    let mut table = Table::new(
        "Fig. 10 — index build time breakdown (ms)",
        &["dataset", "method", "train", "add", "pre-assign", "total"],
    );

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!(
            "[fig10] {analog}: {} x {}d, nlist {nlist}",
            dataset.len(),
            dataset.dim()
        );

        for (mode, label) in [
            (Some(EngineMode::HarmonyVector), "Vector"),
            (Some(EngineMode::Harmony), "Harmony"),
            (Some(EngineMode::HarmonyDimension), "Dimension"),
            (None, "Faiss"),
        ] {
            let (train, add, preassign) = match mode {
                Some(mode) => {
                    let engine = build_harmony(&dataset, mode, args.workers, nlist);
                    let s = engine.build_stats().clone();
                    engine.shutdown().expect("shutdown");
                    (s.train, s.add, s.preassign)
                }
                None => {
                    let engine =
                        FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &dataset.base)
                            .expect("faiss");
                    let s = engine.build_stats().clone();
                    (s.train, s.add, std::time::Duration::ZERO)
                }
            };
            let ms = |d: std::time::Duration| report::num(d.as_secs_f64() * 1e3, 1);
            table.row(vec![
                analog.name().to_string(),
                label.to_string(),
                ms(train),
                ms(add),
                ms(preassign),
                ms(train + add + preassign),
            ]);
        }
    }
    table.emit(&args.out_dir, "fig10_build_time");
}
