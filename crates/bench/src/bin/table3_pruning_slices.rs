//! Table 3 — average pruning ratio per dimension slice across the eight
//! 4-node datasets.
//!
//! Paper shape: slice 1 is always 0 %; slice 2 averages 33.6 %; slice 3
//! 66.2 %; slice 4 exceeds 80 % on every dataset; absolute values vary
//! strongly with the data distribution (Glove prunes worst, time series
//! best).

use harmony_bench::runner::{build_harmony, nlist_for_clamped, take_queries};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;

fn main() {
    let args = BenchArgs::parse();
    let mut table = Table::new(
        "Table 3 — cumulative pruning ratio per slice (4 dimension slices)",
        &[
            "dataset",
            "slice1 %",
            "slice2 %",
            "slice3 %",
            "slice4 %",
            "average %",
        ],
    );

    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M, DatasetAnalog::Msong]
    } else {
        &DatasetAnalog::SMALL
    };

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let queries = take_queries(&dataset.queries, args.effective_queries());
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!(
            "[table3] {analog}: {} x {}d, nlist {nlist}",
            dataset.len(),
            dataset.dim()
        );
        let engine = build_harmony(&dataset, EngineMode::HarmonyDimension, 4, nlist);
        let opts = SearchOptions::new(10).with_nprobe((nlist / 8).max(4));
        let _ = engine.search_batch(&queries, &opts).expect("search");
        let stats = engine.collect_stats().expect("stats");
        let ratios = stats.slices.cumulative_ratios();
        let avg = stats.slices.average_ratio();
        let cell = |i: usize| report::num(ratios.get(i).copied().unwrap_or(0.0), 2);
        table.row(vec![
            analog.name().to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            report::num(avg, 2),
        ]);
        engine.shutdown().expect("shutdown");
    }
    table.emit(&args.out_dir, "table3_pruning_slices");
}
