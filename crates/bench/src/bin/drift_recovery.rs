//! Drift recovery — Fig. 7 extended to *runtime*: QPS before a workload
//! drift, during it on the stale plan, and after the adaptive replanning
//! supervisor live-migrates to a layout that fits.
//!
//! The scenario is the flash-sale drift of §6.2.2 taken online: the engine
//! is deployed on vector partitioning (the stale plan), traffic then
//! concentrates on a hot set smaller than the shard count, and the plan
//! supervisor — fed only by the engine's own probe counters — must switch
//! plans under live traffic. The migration runs while ≥ 4 concurrent
//! sessions keep querying; the harness verifies none of their results are
//! lost or duplicated.
//!
//! `--assert-switch` turns the run into a smoke check: it exits non-zero
//! unless the supervisor actually switched plans and the post-switch QPS
//! beats the stale plan.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use harmony_bench::report::{emit_bench_json, percentile, Json};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{
    EngineMode, HarmonyConfig, HarmonyEngine, ReplanConfig, ReplanOutcome, SearchOptions,
};
use harmony_data::SyntheticSpec;
use harmony_index::VectorStore;
use rand::prelude::*;

const SEED: u64 = 0x000D_21F7;

/// Queries jittered around one centroid: their probes concentrate on a hot
/// set smaller than the shard count — the drift no re-packing can absorb.
fn hot_queries(engine: &HarmonyEngine, cluster: usize, n: usize, seed: u64) -> VectorStore {
    let centroids = engine.centroids();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = VectorStore::with_capacity(centroids.dim(), n);
    for i in 0..n {
        let mut q = centroids.row(cluster).to_vec();
        for x in q.iter_mut() {
            *x += rng.random_range(-0.01..0.01f32);
        }
        queries.push(i as u64, &q).expect("dims match");
    }
    queries
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let assert_switch = raw.iter().any(|a| a == "--assert-switch");
    raw.retain(|a| a != "--assert-switch");
    let args = BenchArgs::parse_from(raw.into_iter());

    // Big lists and wide vectors keep per-probe computation above the
    // per-message network cost — the paper's 1M-vector regime, where a hot
    // partition genuinely starves the cluster (Figs. 6-7).
    let n = if args.quick { 24_000 } else { 64_000 };
    let dim = if args.quick { 64 } else { 96 };
    let nlist = 16;
    let dataset = SyntheticSpec::clustered(n, dim, 8).with_seed(21).generate();
    eprintln!("[drift_recovery] {} x {}d, nlist {nlist}", n, dim);

    // Deployed on the stale plan: pure vector partitioning, supervisor in
    // manual-tick mode so the phases are cleanly separated.
    let config = HarmonyConfig::builder()
        .n_machines(args.workers)
        .nlist(nlist)
        .mode(EngineMode::HarmonyVector)
        .seed(SEED)
        .replan(ReplanConfig {
            min_window_queries: 32,
            amortize_windows: 200.0,
            ..ReplanConfig::default()
        })
        .transport(args.transport.clone())
        .build()
        .expect("valid config");
    let engine = HarmonyEngine::build(config, &dataset.base).expect("engine build");

    let mut table = Table::new(
        "Drift recovery — QPS before drift, on the stale plan, and after the supervisor replans",
        &["phase", "plan", "epoch", "QPS", "load max/mean"],
    );
    let phase_row = |table: &mut Table, phase: &str, engine: &HarmonyEngine, qps: f64, imb: f64| {
        table.row(vec![
            phase.to_string(),
            engine.plan().label(),
            engine.current_epoch().to_string(),
            report::num(qps, 1),
            report::num(imb, 3),
        ]);
    };

    let queries = args.effective_queries().max(64);
    let opts = SearchOptions::new(10).with_nprobe(4);
    let hot_opts = SearchOptions::new(10).with_nprobe(2);

    // Phase 1 — before the drift: uniform traffic on the deployed plan.
    let uniform: VectorStore = {
        let take: Vec<usize> = (0..queries.min(dataset.queries.len())).collect();
        dataset.queries.gather(&take)
    };
    let before = engine.search_batch(&uniform, &opts).expect("uniform batch");
    phase_row(
        &mut table,
        "before drift (uniform)",
        &engine,
        before.qps_modeled(),
        before.snapshot.imbalance_ratio(),
    );

    // Phase 2 — the drift hits: hot traffic on the stale plan. Two batches
    // so the hot signal dominates the observation window.
    let hot = hot_queries(&engine, 3, queries, SEED ^ 0x99);
    engine
        .search_batch(&hot, &hot_opts)
        .expect("warm drift batch");
    let stale = engine.search_batch(&hot, &hot_opts).expect("stale batch");
    let stale_qps = stale.qps_modeled();
    phase_row(
        &mut table,
        "during drift (stale plan)",
        &engine,
        stale_qps,
        stale.snapshot.imbalance_ratio(),
    );

    // Phase 3 — replanning under live traffic: 4 concurrent sessions keep
    // querying while the supervisor migrates. Every in-flight batch must
    // come back complete and duplicate-free.
    let stop = AtomicBool::new(false);
    let (outcome, live_served, mut live_lat_ms) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let engine = &engine;
            let hot_opts = &hot_opts;
            let stop = &stop;
            let batch = hot_queries(engine, 3, 32, SEED ^ (0x1000 + t));
            handles.push(s.spawn(move || {
                let mut served = 0usize;
                let mut lats = Vec::new();
                while !stop.load(Ordering::Relaxed) || served == 0 {
                    let r0 = Instant::now();
                    let out = engine.search_batch(&batch, hot_opts).expect("live batch");
                    lats.push(r0.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(out.results.len(), batch.len(), "lost results");
                    for r in &out.results {
                        let mut ids: Vec<u64> = r.iter().map(|n| n.id).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        assert_eq!(ids.len(), r.len(), "duplicated results");
                    }
                    served += out.results.len();
                }
                (served, lats)
            }));
        }
        let outcome = engine.supervisor_tick().expect("replan tick");
        stop.store(true, Ordering::Relaxed);
        let mut served = 0usize;
        let mut lats = Vec::new();
        for h in handles {
            let (s, l) = h.join().expect("session");
            served += s;
            lats.extend(l);
        }
        eprintln!("[drift_recovery] {served} live queries served across the migration, none lost");
        (outcome, served, lats)
    });
    match &outcome {
        ReplanOutcome::Switched(r) => eprintln!(
            "[drift_recovery] switched {} -> {}: moved {} clusters, {} pieces, {} KiB over the fabric (modeled {:.2} ms)",
            r.from_plan.label(),
            r.to_plan.label(),
            r.clusters_moved,
            r.network_pieces,
            r.modeled_bytes / 1024,
            r.migration_ns / 1e6,
        ),
        other => eprintln!("[drift_recovery] supervisor outcome: {other:?}"),
    }

    // Phase 4 — after the replan: the same hot traffic on the new layout.
    let after = engine
        .search_batch(&hot, &hot_opts)
        .expect("recovered batch");
    let after_qps = after.qps_modeled();
    phase_row(
        &mut table,
        "after replan",
        &engine,
        after_qps,
        after.snapshot.imbalance_ratio(),
    );

    table.emit(&args.out_dir, "drift_recovery");
    let before_qps = before.qps_modeled();
    let summary = Json::obj()
        .field("bench", Json::Str("drift_recovery".into()))
        .field("transport", Json::Str(args.transport.label().into()))
        .field("workers", Json::Int(args.workers as u64))
        .field(
            "switched",
            Json::Bool(matches!(outcome, ReplanOutcome::Switched(_))),
        )
        .field("plan", Json::Str(engine.plan().label()))
        .field("epoch", Json::Int(engine.current_epoch()))
        .field("before_drift_qps", Json::Num(before_qps))
        .field("stale_plan_qps", Json::Num(stale_qps))
        .field("after_replan_qps", Json::Num(after_qps))
        .field(
            "live_migration",
            Json::obj()
                .field("queries_served", Json::Int(live_served as u64))
                .field("p50_ms", Json::Num(percentile(&mut live_lat_ms, 50.0)))
                .field("p99_ms", Json::Num(percentile(&mut live_lat_ms, 99.0))),
        );
    emit_bench_json(&args.out_dir, "drift_recovery", &summary);

    if assert_switch {
        let switched = matches!(outcome, ReplanOutcome::Switched(_));
        assert!(
            switched,
            "--assert-switch: supervisor did not switch plans under induced skew ({outcome:?})"
        );
        assert!(
            after_qps > stale_qps,
            "--assert-switch: post-replan QPS {after_qps:.0} must beat the stale plan's {stale_qps:.0}"
        );
        eprintln!(
            "[drift_recovery] OK: plan switched and QPS recovered {:.0} -> {:.0}",
            stale_qps, after_qps
        );
    }
    engine.shutdown().expect("shutdown");
}
