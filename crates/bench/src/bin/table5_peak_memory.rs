//! Table 5 — peak memory during query execution.
//!
//! Paper shape: vector < Harmony < dimension; the dimension-partitioning
//! overhead comes from intermediate (carry) state and *shrinks relatively*
//! as dimensionality grows. Measured with the byte-tracking global
//! allocator from `harmony-cluster`, process-wide (client + workers),
//! windowed per engine run.

use harmony_bench::report::Json;
use harmony_bench::runner::{build_harmony_repr, nlist_for_clamped, take_queries};
use harmony_bench::{report, BenchArgs, Table};
use harmony_cluster::mem;
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;

#[global_allocator]
static ALLOC: mem::TrackingAllocator = mem::TrackingAllocator;

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M]
    } else {
        &DatasetAnalog::SMALL
    };
    let k = 10;

    let mut table = Table::new(
        format!(
            "Table 5 — peak query-time memory, repr {} (process-wide; paper: vector < Harmony < dimension, gap shrinks with dims)",
            args.repr_name()
        ),
        &["dataset", "vector peak", "harmony peak", "dimension peak"],
    );
    let mut json_rows: Vec<Json> = Vec::new();

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let nlist = nlist_for_clamped(dataset.len());
        let queries = take_queries(&dataset.queries, args.effective_queries());
        eprintln!("[table5] {analog}: {} x {}d", dataset.len(), dataset.dim());
        let opts = SearchOptions::new(k).with_nprobe((nlist / 8).max(4));

        let mut peaks = Vec::new();
        for mode in [
            EngineMode::HarmonyVector,
            EngineMode::Harmony,
            EngineMode::HarmonyDimension,
        ] {
            let engine = build_harmony_repr(&dataset, mode, args.workers, nlist, args.repr);
            mem::reset_peak();
            let base = mem::current_bytes();
            let _ = engine.search_batch(&queries, &opts).expect("search");
            let peak = mem::peak_bytes().saturating_sub(base);
            peaks.push(peak as u64);
            engine.shutdown().expect("shutdown");
        }
        table.row(vec![
            analog.name().to_string(),
            report::mib(peaks[0]),
            report::mib(peaks[1]),
            report::mib(peaks[2]),
        ]);
        json_rows.push(
            Json::obj()
                .field("dataset", Json::Str(analog.name().to_string()))
                .field("vector_peak_bytes", Json::Int(peaks[0]))
                .field("harmony_peak_bytes", Json::Int(peaks[1]))
                .field("dimension_peak_bytes", Json::Int(peaks[2])),
        );
    }
    let name = args.out_name("table5_peak_memory");
    table.emit(&args.out_dir, &name);
    let summary = Json::obj()
        .field("bench", Json::Str("table5_peak_memory".into()))
        .field("repr", Json::Str(args.repr_name().into()))
        .field("workers", Json::Int(args.workers as u64))
        .field("rows", Json::Arr(json_rows));
    report::emit_bench_json(&args.out_dir, &name, &summary);
    assert!(mem::is_active(), "tracking allocator must be installed");
}
