//! Table 5 — peak memory during query execution.
//!
//! Paper shape: vector < Harmony < dimension; the dimension-partitioning
//! overhead comes from intermediate (carry) state and *shrinks relatively*
//! as dimensionality grows. Measured with the byte-tracking global
//! allocator from `harmony-cluster`, process-wide (client + workers),
//! windowed per engine run.

use harmony_bench::runner::{build_harmony, nlist_for_clamped, take_queries};
use harmony_bench::{report, BenchArgs, Table};
use harmony_cluster::mem;
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;

#[global_allocator]
static ALLOC: mem::TrackingAllocator = mem::TrackingAllocator;

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M]
    } else {
        &DatasetAnalog::SMALL
    };
    let k = 10;

    let mut table = Table::new(
        "Table 5 — peak query-time memory (process-wide; paper: vector < Harmony < dimension, gap shrinks with dims)",
        &["dataset", "vector peak", "harmony peak", "dimension peak"],
    );

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let nlist = nlist_for_clamped(dataset.len());
        let queries = take_queries(&dataset.queries, args.effective_queries());
        eprintln!("[table5] {analog}: {} x {}d", dataset.len(), dataset.dim());
        let opts = SearchOptions::new(k).with_nprobe((nlist / 8).max(4));

        let mut peaks = Vec::new();
        for mode in [
            EngineMode::HarmonyVector,
            EngineMode::Harmony,
            EngineMode::HarmonyDimension,
        ] {
            let engine = build_harmony(&dataset, mode, args.workers, nlist);
            mem::reset_peak();
            let base = mem::current_bytes();
            let _ = engine.search_batch(&queries, &opts).expect("search");
            let peak = mem::peak_bytes().saturating_sub(base);
            peaks.push(peak as u64);
            engine.shutdown().expect("shutdown");
        }
        table.row(vec![
            analog.name().to_string(),
            report::mib(peaks[0]),
            report::mib(peaks[1]),
            report::mib(peaks[2]),
        ]);
    }
    table.emit(&args.out_dir, "table5_peak_memory");
    assert!(mem::is_active(), "tracking allocator must be installed");
}
