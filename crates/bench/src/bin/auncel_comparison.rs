//! §6.5.4 — Harmony vs Auncel under skewed workloads.
//!
//! Paper claim: Auncel behaves like Harmony-vector under skew (fixed vector
//! partitioning), so its throughput degrades as load concentrates, while
//! Harmony's pruning + fine-grained balancing keep it stable and ahead.

use harmony_baseline::{AuncelConfig, AuncelEngine};
use harmony_bench::runner::{build_harmony, measure_harmony, nlist_for_clamped, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::{DatasetAnalog, Workload, WorkloadSpec};

fn main() {
    let args = BenchArgs::parse();
    let k = 10;
    let analog = DatasetAnalog::Sift1M;
    let spec = analog.spec(args.scale);
    let dataset = spec.generate();
    let nlist = nlist_for_clamped(dataset.len());
    eprintln!(
        "[auncel] {analog}: {} x {}d, nlist {nlist}",
        dataset.len(),
        dataset.dim()
    );

    let harmony = build_harmony(&dataset, EngineMode::Harmony, args.workers, nlist);
    let auncel = AuncelEngine::build(
        AuncelConfig {
            n_machines: args.workers,
            nlist,
            seed: BENCH_SEED,
            ..AuncelConfig::default()
        },
        &dataset.base,
    )
    .expect("auncel");

    let mut table = Table::new(
        "§6.5.4 — Harmony vs Auncel under skew (paper: Auncel tracks Harmony-vector and degrades; Harmony stays stable)",
        &[
            "skew", "harmony QPS", "auncel QPS", "harmony/auncel", "auncel probes/query",
        ],
    );

    let levels: &[f64] = if args.quick {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    for &level in levels {
        let workload = Workload::generate(
            &spec,
            &WorkloadSpec::skew_level(level),
            args.effective_queries(),
            BENCH_SEED ^ level.to_bits(),
        );
        let opts = SearchOptions::new(k).with_nprobe((nlist / 8).max(4));
        let h = measure_harmony(&harmony, &workload.queries, &opts, None);

        let (results, _, snapshot) = auncel.search_batch(&workload.queries, k).expect("auncel");
        let probes: usize = results.iter().map(|r| r.probes_used).sum();
        let makespan_ns = snapshot.makespan_ns(harmony_cluster::CommMode::NonBlocking);
        let a_qps = if makespan_ns > 0 {
            workload.len() as f64 / (makespan_ns as f64 / 1e9)
        } else {
            0.0
        };
        table.row(vec![
            report::num(level, 2),
            report::num(h.qps, 1),
            report::num(a_qps, 1),
            format!("{:.2}x", if a_qps > 0.0 { h.qps / a_qps } else { 0.0 }),
            report::num(probes as f64 / workload.len().max(1) as f64, 1),
        ]);
    }
    table.emit(&args.out_dir, "auncel_comparison");
    harmony.shutdown().expect("shutdown");
    auncel.shutdown().expect("shutdown");
}
