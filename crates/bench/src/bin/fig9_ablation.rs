//! Figure 9 — contribution of the three optimization techniques.
//!
//! Paper shape (4 nodes): starting from a non-optimized hybrid deployment,
//! +Balanced load → 1.88 / 1.63×, +Pipeline & asynchronous execution →
//! 2.62 / 1.81×, +Pruning → 3.27 / 3.21× (Msong / Sift1M). The partition
//! grid is pinned to the same hybrid plan for all four variants so the
//! switches — not the plan — explain the deltas. A skewed workload is used,
//! as load balancing only matters when the load can be unbalanced (the
//! paper notes Sift1M's uniform distribution mutes the first two bars).

use harmony_bench::runner::{build_harmony_with, measure_harmony, nlist_for_clamped, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{HarmonyConfig, PartitionPlan, SearchOptions};
use harmony_data::{DatasetAnalog, Workload, WorkloadSpec};

fn main() {
    let args = BenchArgs::parse();
    let datasets = [DatasetAnalog::Msong, DatasetAnalog::Sift1M];
    let k = 10;

    let mut table = Table::new(
        "Fig. 9 — normalized throughput by cumulative optimization (paper Msong: 1.00 / 1.88 / 2.62 / 3.27; Sift1M: 1.00 / 1.63 / 1.81 / 3.21)",
        &["dataset", "variant", "QPS", "normalized"],
    );

    // (label, balanced_load, pipeline, pruning) — cumulative switches.
    let variants = [
        ("Non-optimize", false, false, false),
        ("+Balanced load", true, false, false),
        ("+Pipeline and async execution", true, true, false),
        ("+Pruning", true, true, true),
    ];

    for analog in datasets {
        let spec = analog.spec(args.scale);
        let dataset = spec.generate();
        let nlist = nlist_for_clamped(dataset.len());
        // Moderate skew: balanced-load effects need an imbalanced workload.
        let workload = Workload::generate(
            &spec,
            &WorkloadSpec::skew_level(0.6),
            args.effective_queries(),
            BENCH_SEED,
        );
        eprintln!("[fig9] {analog}: {} x {}d", dataset.len(), dataset.dim());
        let opts = SearchOptions::new(k).with_nprobe((nlist / 8).max(4));
        // Fixed hybrid grid: 2 shards x 2 dim blocks on 4 workers.
        let plan = PartitionPlan::new(2, 2).expect("plan");

        let mut baseline_qps = 0.0f64;
        for (label, balanced, pipeline, pruning) in variants {
            let config = HarmonyConfig::builder()
                .n_machines(4)
                .nlist(nlist)
                .plan(plan)
                .balanced_load(balanced)
                .pipeline(pipeline)
                .pruning(pruning)
                .seed(BENCH_SEED)
                .build()
                .expect("config");
            let engine = build_harmony_with(&dataset, config);
            let m = measure_harmony(&engine, &workload.queries, &opts, None);
            if baseline_qps == 0.0 {
                baseline_qps = m.qps.max(1e-9);
            }
            table.row(vec![
                analog.name().to_string(),
                label.to_string(),
                report::num(m.qps, 1),
                format!("{:.2}x", m.qps / baseline_qps),
            ]);
            engine.shutdown().expect("shutdown");
        }
    }
    table.emit(&args.out_dir, "fig9_ablation");
}
