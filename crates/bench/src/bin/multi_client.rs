//! Multi-client session throughput: aggregate QPS vs number of client
//! threads sharing one engine.
//!
//! The ROADMAP north star is serving heavy multi-user traffic, which needs
//! client-side concurrency on top of worker parallelism. This benchmark
//! drives N client threads against a shared engine two ways:
//!
//! * **serialized** — every `search_batch` call runs under one external
//!   mutex, reproducing the engine's old single-client contract where an
//!   engine-wide lock admitted one batch at a time;
//! * **sessions** — the threads call `search_batch` directly and run as
//!   concurrent sessions multiplexed over the shared worker pool.
//!
//! Each client issues many small requests (a few queries per
//! `search_batch` call, the interactive multi-user shape), and the modeled
//! interconnect latency is *injected for real* (`DelayMode::Sleep`, the
//! substrate's testbed-realism mode): every request spends most of its
//! life waiting on the 0.8 ms-latency blocking fabric, exactly like a
//! client talking to a remote cluster. A serialized client waits those
//! latencies out one request at a time; concurrent sessions overlap them,
//! so aggregate wall QPS scales with client threads until the workers'
//! own send latency saturates. (Injected latency, rather than raw CPU
//! wall time, keeps the comparison meaningful on any core count — the
//! same reasoning behind `qps_modeled` in the figure binaries.)

use std::sync::Mutex;
use std::time::Instant;

use harmony_bench::report::{emit_bench_json, percentile, Json};
use harmony_bench::runner::{build_harmony_with, nlist_for_clamped, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{HarmonyConfig, SearchOptions};
use harmony_data::DatasetAnalog;
use harmony_index::{Metric, VectorStore};

fn main() {
    let args = BenchArgs::parse();
    let dataset = DatasetAnalog::Sift1M.generate(args.scale);
    let nlist = nlist_for_clamped(dataset.len());
    eprintln!(
        "[multi_client] sift analog: {} x {}d, nlist {nlist}, {} workers, {} fabric",
        dataset.len(),
        dataset.dim(),
        args.workers,
        args.transport.label()
    );
    let net = harmony_cluster::NetworkModel {
        bandwidth_gbps: f64::INFINITY,
        latency_ns: 800_000, // 0.8 ms per message, injected below
        per_message_overhead_bytes: 0,
    };
    let config = HarmonyConfig::builder()
        .n_machines(args.workers)
        .nlist(nlist)
        .metric(Metric::L2)
        .seed(BENCH_SEED)
        .pipeline(false) // blocking transport: senders really wait
        .net(net)
        .delay(harmony_cluster::DelayMode::Sleep { scale: 1.0 })
        .transport(args.transport.clone())
        .build()
        .expect("valid config");
    let engine = build_harmony_with(&dataset, config);
    let opts = SearchOptions::new(10).with_nprobe(8);
    // Interactive request shape: a handful of queries per search_batch
    // call, many calls per client.
    let request_size = 4usize;
    let requests_per_client = (args.effective_queries() / request_size).max(8);
    let per_thread = request_size * requests_per_client;

    let thread_counts: &[usize] = if args.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };

    let mut table = Table::new(
        format!(
            "Multi-client sessions — aggregate wall QPS over a blocking 0.8 ms-latency \
             fabric (injected for real), {} workers, {} requests x {} queries per client \
             (serialized = one external client mutex, the pre-session contract)",
            args.workers, requests_per_client, request_size
        ),
        &["clients", "serialized QPS", "sessions QPS", "speedup"],
    );

    // Warm the engine (thread pools, allocator, branch predictors).
    let warmup = dataset
        .base
        .gather(&(0..64.min(dataset.base.len())).collect::<Vec<_>>());
    engine.search_batch(&warmup, &opts).expect("warmup");

    let mut rows: Vec<Json> = Vec::new();
    for &clients in thread_counts {
        // Disjoint per-client request streams drawn from the base set.
        let streams: Vec<Vec<VectorStore>> = (0..clients)
            .map(|t| {
                (0..requests_per_client)
                    .map(|r| {
                        let rows: Vec<usize> = (0..request_size)
                            .map(|i| (t * 7919 + r * 127 + i * 13) % dataset.base.len())
                            .collect();
                        dataset.base.gather(&rows)
                    })
                    .collect()
            })
            .collect();
        let total = (clients * per_thread) as f64;

        let gate = Mutex::new(());
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for stream in &streams {
                let (engine, opts, gate) = (&engine, &opts, &gate);
                s.spawn(move || {
                    for batch in stream {
                        let _serialized = gate.lock().expect("client gate");
                        engine.search_batch(batch, opts).expect("serialized batch");
                    }
                });
            }
        });
        let serialized_qps = total / t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut latencies_ms: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = streams
                .iter()
                .map(|stream| {
                    let (engine, opts) = (&engine, &opts);
                    s.spawn(move || {
                        let mut lats = Vec::with_capacity(stream.len());
                        for batch in stream {
                            let r0 = Instant::now();
                            engine.search_batch(batch, opts).expect("session batch");
                            lats.push(r0.elapsed().as_secs_f64() * 1e3);
                        }
                        lats
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("session thread"))
                .collect()
        });
        let sessions_qps = total / t0.elapsed().as_secs_f64();
        let p50_ms = percentile(&mut latencies_ms, 50.0);
        let p99_ms = percentile(&mut latencies_ms, 99.0);

        table.row(vec![
            clients.to_string(),
            report::num(serialized_qps, 1),
            report::num(sessions_qps, 1),
            format!("{:.2}x", sessions_qps / serialized_qps),
        ]);
        rows.push(
            Json::obj()
                .field("clients", Json::Int(clients as u64))
                .field("serialized_qps", Json::Num(serialized_qps))
                .field("sessions_qps", Json::Num(sessions_qps))
                .field("speedup", Json::Num(sessions_qps / serialized_qps))
                .field("p50_ms", Json::Num(p50_ms))
                .field("p99_ms", Json::Num(p99_ms)),
        );
    }
    engine.shutdown().expect("shutdown");
    table.emit(&args.out_dir, "multi_client");
    let summary = Json::obj()
        .field("bench", Json::Str("multi_client".into()))
        .field("transport", Json::Str(args.transport.label().into()))
        .field("workers", Json::Int(args.workers as u64))
        .field("request_size", Json::Int(request_size as u64))
        .field("requests_per_client", Json::Int(requests_per_client as u64))
        .field("rows", Json::Arr(rows));
    emit_bench_json(&args.out_dir, "multi_client", &summary);
}
