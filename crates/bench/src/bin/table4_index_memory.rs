//! Table 4 — index memory comparison.
//!
//! Paper shape: each distributed node holds ≈ ¼ of the single-node Faiss
//! index (4 workers, no replication); dimension-including plans add ≈ 2 %
//! bookkeeping overhead.
//!
//! With `--repr sq8` the block payloads are scalar-quantized; the extra
//! "block reduction" column reports f32 block bytes ÷ sq8 block bytes from
//! a paired f32 build of the same Harmony-mode engine (target ≥ 3×).

use harmony_baseline::FaissLikeEngine;
use harmony_bench::report::Json;
use harmony_bench::runner::{build_harmony_repr, nlist_for_clamped, take_queries, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, EngineStats, HarmonyEngine, SearchOptions};
use harmony_data::{Dataset, DatasetAnalog};
use harmony_index::{BlockRepr, Metric};

/// Warms every worker with one tiny batch (so all report stats), then
/// collects cluster-wide stats.
fn warm_stats(engine: &HarmonyEngine, dataset: &Dataset) -> EngineStats {
    let queries = take_queries(&dataset.queries, 4);
    let _ = engine
        .search_batch(&queries, &SearchOptions::new(1).with_nprobe(1))
        .expect("warmup");
    engine.collect_stats().expect("stats")
}

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M]
    } else {
        &DatasetAnalog::SMALL
    };
    let sq8 = matches!(args.repr, BlockRepr::Sq8);

    let mut table = Table::new(
        format!(
            "Table 4 — index memory, repr {} (per-node max for distributed; paper: each node ≈ 1/4 of Faiss, dim overhead ≈ +2 %)",
            args.repr_name()
        ),
        &[
            "dataset", "faiss", "vector/node", "harmony/node", "dimension/node",
            "node/faiss ratio", "block bytes", "block reduction",
        ],
    );
    let mut json_rows: Vec<Json> = Vec::new();

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!("[table4] {analog}: {} x {}d", dataset.len(), dataset.dim());

        let faiss =
            FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &dataset.base).expect("faiss");
        let faiss_bytes = faiss.memory_bytes() as u64;

        let mut per_node = Vec::new();
        let mut block_bytes = 0u64;
        for mode in [
            EngineMode::HarmonyVector,
            EngineMode::Harmony,
            EngineMode::HarmonyDimension,
        ] {
            let engine = build_harmony_repr(&dataset, mode, args.workers, nlist, args.repr);
            let stats = warm_stats(&engine, &dataset);
            per_node.push(stats.max_worker_memory_bytes());
            if matches!(mode, EngineMode::Harmony) {
                block_bytes = stats.f32_block_bytes + stats.sq8_block_bytes;
            }
            engine.shutdown().expect("shutdown");
        }

        // Under sq8 a paired f32 build of the Harmony-mode engine anchors
        // the compression ratio; under f32 the ratio is 1 by definition.
        let f32_block_bytes = if sq8 {
            let engine = build_harmony_repr(
                &dataset,
                EngineMode::Harmony,
                args.workers,
                nlist,
                BlockRepr::F32,
            );
            let stats = warm_stats(&engine, &dataset);
            engine.shutdown().expect("shutdown");
            stats.f32_block_bytes
        } else {
            block_bytes
        };
        let reduction = f32_block_bytes as f64 / block_bytes.max(1) as f64;

        let ratio = per_node[1] as f64 / faiss_bytes.max(1) as f64;
        table.row(vec![
            analog.name().to_string(),
            report::mib(faiss_bytes),
            report::mib(per_node[0]),
            report::mib(per_node[1]),
            report::mib(per_node[2]),
            report::num(ratio, 3),
            report::mib(block_bytes),
            format!("{reduction:.2}x"),
        ]);
        json_rows.push(
            Json::obj()
                .field("dataset", Json::Str(analog.name().to_string()))
                .field("faiss_bytes", Json::Int(faiss_bytes))
                .field("vector_node_bytes", Json::Int(per_node[0]))
                .field("harmony_node_bytes", Json::Int(per_node[1]))
                .field("dimension_node_bytes", Json::Int(per_node[2]))
                .field("node_over_faiss", Json::Num(ratio))
                .field("block_bytes", Json::Int(block_bytes))
                .field("f32_block_bytes", Json::Int(f32_block_bytes))
                .field("block_reduction", Json::Num(reduction)),
        );
    }
    let name = args.out_name("table4_index_memory");
    table.emit(&args.out_dir, &name);
    let summary = Json::obj()
        .field("bench", Json::Str("table4_index_memory".into()))
        .field("repr", Json::Str(args.repr_name().into()))
        .field("workers", Json::Int(args.workers as u64))
        .field("rows", Json::Arr(json_rows));
    report::emit_bench_json(&args.out_dir, &name, &summary);
}
