//! Table 4 — index memory comparison.
//!
//! Paper shape: each distributed node holds ≈ ¼ of the single-node Faiss
//! index (4 workers, no replication); dimension-including plans add ≈ 2 %
//! bookkeeping overhead.

use harmony_baseline::FaissLikeEngine;
use harmony_bench::runner::{build_harmony, nlist_for_clamped, take_queries, BENCH_SEED};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;
use harmony_index::Metric;

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M]
    } else {
        &DatasetAnalog::SMALL
    };

    let mut table = Table::new(
        "Table 4 — index memory (per-node max for distributed; paper: each node ≈ 1/4 of Faiss, dim overhead ≈ +2 %)",
        &[
            "dataset", "faiss", "vector/node", "harmony/node", "dimension/node",
            "node/faiss ratio",
        ],
    );

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!("[table4] {analog}: {} x {}d", dataset.len(), dataset.dim());

        let faiss =
            FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &dataset.base).expect("faiss");
        let faiss_bytes = faiss.memory_bytes() as u64;

        let mut per_node = Vec::new();
        for mode in [
            EngineMode::HarmonyVector,
            EngineMode::Harmony,
            EngineMode::HarmonyDimension,
        ] {
            let engine = build_harmony(&dataset, mode, args.workers, nlist);
            // One tiny batch so every worker has loaded and can report.
            let queries = take_queries(&dataset.queries, 4);
            let _ = engine
                .search_batch(&queries, &SearchOptions::new(1).with_nprobe(1))
                .expect("warmup");
            let stats = engine.collect_stats().expect("stats");
            per_node.push(stats.max_worker_memory_bytes());
            engine.shutdown().expect("shutdown");
        }
        let ratio = per_node[1] as f64 / faiss_bytes.max(1) as f64;
        table.row(vec![
            analog.name().to_string(),
            report::mib(faiss_bytes),
            report::mib(per_node[0]),
            report::mib(per_node[1]),
            report::mib(per_node[2]),
            report::num(ratio, 3),
        ]);
    }
    table.emit(&args.out_dir, "table4_index_memory");
}
