//! Multi-tenant tiering — the memory/recall trade of hot/warm/cold
//! namespaces: a 16-namespace corpus in which exactly one tenant is hot
//! and the other 15 are demoted to cold (disk-resident, demand-faulted
//! through the worker block cache). The hot tenant's QPS and recall@10
//! must be unchanged by its neighbors' demotion, while the cluster's
//! RAM-resident block bytes collapse to a fraction of the all-hot
//! footprint.
//!
//! `--assert-tiering` turns the run into a smoke check: it exits non-zero
//! unless the tiered resident bytes are ≤ 25% of the all-hot resident
//! bytes, the hot tenant's recall@10 is unchanged, and cold tenants still
//! answer their queries exactly.

use harmony_bench::report::{emit_bench_json, Json};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{HarmonyConfig, HarmonyEngine, NamespaceConfig, SearchOptions, Temperature};
use harmony_data::ground_truth::{ground_truth, recall_at_k};
use harmony_data::SyntheticSpec;
use harmony_index::{Metric, VectorStore};

const SEED: u64 = 0x71E2_0001;
const TENANTS: usize = 16;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let assert_tiering = raw.iter().any(|a| a == "--assert-tiering");
    raw.retain(|a| a != "--assert-tiering");
    let args = BenchArgs::parse_from(raw.into_iter());

    let per_tenant = if args.quick { 2_000 } else { 8_000 };
    let dim = if args.quick { 32 } else { 64 };
    let nlist = 16;
    eprintln!(
        "[tiering] {TENANTS} tenants x {per_tenant} x {dim}d, nlist {nlist}, repr {:?}",
        args.repr
    );

    // Tenant 0 lives in the default namespace (the engine's build corpus);
    // tenants 1..16 are created over the running cluster.
    let tenant_data: Vec<harmony_data::Dataset> = (0..TENANTS)
        .map(|t| {
            SyntheticSpec::clustered(per_tenant, dim, 8)
                .with_seed(400 + t as u64)
                .generate()
        })
        .collect();
    let config = HarmonyConfig::builder()
        .n_machines(args.workers)
        .nlist(nlist)
        .seed(SEED)
        .transport(args.transport.clone())
        .repr(args.repr)
        .build()
        .expect("valid config");
    let engine = HarmonyEngine::build(config, &tenant_data[0].base).expect("engine build");
    let mut ns_ids = vec![0u16];
    for t in tenant_data.iter().skip(1) {
        let ns = engine
            .create_namespace(
                &NamespaceConfig::default()
                    .with_nlist(nlist)
                    .with_repr(args.repr),
                &t.base,
            )
            .expect("tenant namespace");
        ns_ids.push(ns);
    }

    let opts = SearchOptions::new(10).with_nprobe(8);
    let n_queries = args
        .effective_queries()
        .max(64)
        .min(tenant_data[0].queries.len());
    let hot_queries: VectorStore = tenant_data[0]
        .queries
        .gather(&(0..n_queries).collect::<Vec<_>>());
    let truth = ground_truth(&tenant_data[0].base, &hot_queries, 10, Metric::L2);

    // Phase 1 — every tenant hot: the baseline footprint and recall.
    let before = engine
        .search_batch(&hot_queries, &opts)
        .expect("all-hot batch");
    let hot_qps = before.qps_modeled();
    let hot_recall = recall_at_k(&truth, &before.results, 10);
    let stats = engine.collect_stats().expect("all-hot stats");
    let all_hot_resident = stats.f32_block_bytes + stats.sq8_block_bytes + stats.cache_block_bytes;

    // Phase 2 — demote all but tenant 0 to cold.
    for &ns in &ns_ids[1..] {
        engine
            .set_namespace_tier(ns, Temperature::Cold)
            .expect("demote tenant");
    }
    let stats = engine.collect_stats().expect("tiered stats");
    let tiered_resident = stats.f32_block_bytes + stats.sq8_block_bytes + stats.cache_block_bytes;
    let spilled = stats.spilled_block_bytes;
    let resident_frac = tiered_resident as f64 / all_hot_resident.max(1) as f64;

    // The hot tenant is untouched by its neighbors' demotion.
    let after = engine
        .search_batch(&hot_queries, &opts)
        .expect("tiered batch");
    let tiered_qps = after.qps_modeled();
    let tiered_recall = recall_at_k(&truth, &after.results, 10);

    // Cold tenants still answer exactly, faulting blocks on demand.
    let mut cold_self_hits = 0usize;
    let mut cold_self_total = 0usize;
    for (t, &ns) in ns_ids.iter().enumerate().skip(1) {
        for row in (0..per_tenant).step_by(per_tenant / 4) {
            let got = engine
                .search_ns(ns, tenant_data[t].base.row(row), &opts)
                .expect("cold self-query")
                .neighbors;
            cold_self_total += 1;
            if got.first().map(|n| n.id) == Some(tenant_data[t].base.id(row)) {
                cold_self_hits += 1;
            }
        }
    }
    let cold_self_recall = cold_self_hits as f64 / cold_self_total.max(1) as f64;

    let mut table = Table::new(
        "Multi-tenant tiering — 16 tenants, 1 hot: resident footprint vs hot-tenant quality",
        &[
            "phase",
            "resident MiB",
            "spilled MiB",
            "hot QPS",
            "hot recall@10",
        ],
    );
    table.row(vec![
        "all hot".into(),
        report::num(all_hot_resident as f64 / (1 << 20) as f64, 1),
        report::num(0.0, 1),
        report::num(hot_qps, 1),
        report::num(hot_recall, 4),
    ]);
    table.row(vec![
        "1 hot / 15 cold".into(),
        report::num(tiered_resident as f64 / (1 << 20) as f64, 1),
        report::num(spilled as f64 / (1 << 20) as f64, 1),
        report::num(tiered_qps, 1),
        report::num(tiered_recall, 4),
    ]);
    table.emit(&args.out_dir, "tiering");
    eprintln!(
        "[tiering] resident {tiered_resident} / {all_hot_resident} bytes \
         ({:.1}% of all-hot), cold self-recall {cold_self_recall:.4}",
        resident_frac * 100.0
    );

    let summary = Json::obj()
        .field("bench", Json::Str("tiering".into()))
        .field("transport", Json::Str(args.transport.label().into()))
        .field("repr", Json::Str(format!("{:?}", args.repr).to_lowercase()))
        .field("workers", Json::Int(args.workers as u64))
        .field("tenants", Json::Int(TENANTS as u64))
        .field("vectors_per_tenant", Json::Int(per_tenant as u64))
        .field("all_hot_resident_bytes", Json::Int(all_hot_resident))
        .field("tiered_resident_bytes", Json::Int(tiered_resident))
        .field("spilled_bytes", Json::Int(spilled))
        .field("resident_fraction", Json::Num(resident_frac))
        .field("hot_qps_all_hot", Json::Num(hot_qps))
        .field("hot_qps_tiered", Json::Num(tiered_qps))
        .field("hot_recall_at10_all_hot", Json::Num(hot_recall))
        .field("hot_recall_at10_tiered", Json::Num(tiered_recall))
        .field("cold_self_recall_top1", Json::Num(cold_self_recall));
    emit_bench_json(&args.out_dir, "tiering", &summary);

    if assert_tiering {
        assert!(
            resident_frac <= 0.25,
            "--assert-tiering: tiered resident bytes must be ≤ 25% of all-hot, got {:.1}%",
            resident_frac * 100.0
        );
        assert!(
            (tiered_recall - hot_recall).abs() < f64::EPSILON,
            "--assert-tiering: hot-tenant recall changed ({hot_recall:.4} → {tiered_recall:.4})"
        );
        assert!(
            (cold_self_recall - 1.0).abs() < f64::EPSILON,
            "--assert-tiering: cold tenants must answer self-queries exactly, got {cold_self_recall:.4}"
        );
        assert!(
            spilled > 0,
            "--assert-tiering: cold tenants must spill to disk"
        );
        eprintln!("[tiering] assertions passed");
    }
}
