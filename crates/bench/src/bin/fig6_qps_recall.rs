//! Figure 6 — QPS-recall trade-off: Faiss vs Harmony / Harmony-vector /
//! Harmony-dimension.
//!
//! Paper shape on four workers: all distributed modes beat single-node
//! Faiss (3.75× average); at high recall Harmony exceeds the node count
//! (4.63× average) thanks to pruning; below recall ≈ 0.99 Harmony-vector
//! is the fastest distributed mode. Recall is swept via `nprobe`.

use harmony_baseline::FaissLikeEngine;
use harmony_bench::report::Json;
use harmony_bench::runner::{
    build_harmony_repr, measure_faiss, measure_harmony, nlist_for_clamped, take_queries, truth_for,
    BENCH_SEED,
};
use harmony_bench::{report, BenchArgs, Table};
use harmony_core::{EngineMode, SearchOptions};
use harmony_data::DatasetAnalog;
use harmony_index::Metric;

fn main() {
    let args = BenchArgs::parse();
    let datasets: &[DatasetAnalog] = if args.quick {
        &[DatasetAnalog::Sift1M]
    } else {
        &[
            DatasetAnalog::StarLightCurves,
            DatasetAnalog::Msong,
            DatasetAnalog::Sift1M,
            DatasetAnalog::Deep1M,
            DatasetAnalog::Word2vec,
            DatasetAnalog::Glove1_2M,
        ]
    };
    let k = 10;

    let mut table = Table::new(
        format!(
            "Fig. 6 — QPS vs recall, repr {} (4 workers vs 1-node Faiss; billion-scale analogs run separately via --workers 16)",
            args.repr_name()
        ),
        &[
            "dataset", "nprobe", "recall", "faiss QPS", "harmony QPS", "vector QPS",
            "dimension QPS", "harmony speedup",
        ],
    );
    let mut json_rows: Vec<Json> = Vec::new();

    for &analog in datasets {
        let dataset = analog.generate(args.scale);
        let queries = take_queries(&dataset.queries, args.effective_queries());
        let nlist = nlist_for_clamped(dataset.len());
        eprintln!(
            "[fig6] {analog}: {} x {}d, nlist {nlist}, {} queries",
            dataset.len(),
            dataset.dim(),
            queries.len()
        );
        let truth = truth_for(&dataset, &queries, k);

        let faiss =
            FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &dataset.base).expect("faiss");
        let harmony = build_harmony_repr(
            &dataset,
            EngineMode::Harmony,
            args.workers,
            nlist,
            args.repr,
        );
        let vector = build_harmony_repr(
            &dataset,
            EngineMode::HarmonyVector,
            args.workers,
            nlist,
            args.repr,
        );
        let dimension = build_harmony_repr(
            &dataset,
            EngineMode::HarmonyDimension,
            args.workers,
            nlist,
            args.repr,
        );

        let sweep: Vec<usize> = if args.quick {
            vec![2, 8, nlist / 2]
        } else {
            vec![1, 2, 4, 8, 16, nlist / 4, nlist / 2, nlist]
        };
        let mut sweep: Vec<usize> = sweep.into_iter().filter(|&p| p >= 1).collect();
        sweep.dedup();

        for nprobe in sweep {
            let opts = SearchOptions::new(k).with_nprobe(nprobe);
            let (f_qps, f_recall, _) = measure_faiss(&faiss, &queries, k, nprobe, Some(&truth));
            let h = measure_harmony(&harmony, &queries, &opts, Some(&truth));
            let v = measure_harmony(&vector, &queries, &opts, Some(&truth));
            let d = measure_harmony(&dimension, &queries, &opts, Some(&truth));
            let recall = f_recall.unwrap_or(0.0);
            table.row(vec![
                analog.name().to_string(),
                nprobe.to_string(),
                report::num(recall, 4),
                report::num(f_qps, 1),
                report::num(h.qps, 1),
                report::num(v.qps, 1),
                report::num(d.qps, 1),
                format!("{:.2}x", if f_qps > 0.0 { h.qps / f_qps } else { 0.0 }),
            ]);
            json_rows.push(
                Json::obj()
                    .field("dataset", Json::Str(analog.name().to_string()))
                    .field("nprobe", Json::Int(nprobe as u64))
                    .field("faiss_recall", Json::Num(recall))
                    .field("harmony_recall", Json::Num(h.recall.unwrap_or(0.0)))
                    .field("faiss_qps", Json::Num(f_qps))
                    .field("harmony_qps", Json::Num(h.qps))
                    .field("vector_qps", Json::Num(v.qps))
                    .field("dimension_qps", Json::Num(d.qps)),
            );
        }
        harmony.shutdown().expect("shutdown");
        vector.shutdown().expect("shutdown");
        dimension.shutdown().expect("shutdown");
    }
    let name = args.out_name("fig6_qps_recall");
    table.emit(&args.out_dir, &name);
    let summary = Json::obj()
        .field("bench", Json::Str("fig6_qps_recall".into()))
        .field("repr", Json::Str(args.repr_name().into()))
        .field("k", Json::Int(k as u64))
        .field("workers", Json::Int(args.workers as u64))
        .field("rows", Json::Arr(json_rows));
    report::emit_bench_json(&args.out_dir, &name, &summary);
}
