//! # harmony-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! Harmony paper's evaluation (§6). One binary per experiment lives in
//! `src/bin/`; each prints a markdown table mirroring the paper's
//! rows/series and writes a CSV copy under `bench_results/`.
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig2a_pruning_ratio` | Fig. 2a — pruning ratio by dimension slice |
//! | `fig2b_cost_breakdown` | Fig. 2b — D/V × blocking/non-blocking breakdown |
//! | `fig6_qps_recall` | Fig. 6 — QPS-recall trade-off per dataset |
//! | `fig7_skewed_load` | Fig. 7 — QPS vs load variance |
//! | `fig8_time_breakdown` | Fig. 8 — normalized time per strategy |
//! | `fig9_ablation` | Fig. 9 — optimization contributions |
//! | `table3_pruning_slices` | Table 3 — per-slice pruning ratios |
//! | `fig10_build_time` | Fig. 10 — Train/Add/Pre-assign build time |
//! | `table4_index_memory` | Table 4 — index memory |
//! | `fig11a_dim_size_sweep` | Fig. 11a — speedup vs dims × size |
//! | `fig11b_scalability` | Fig. 11b — speedup vs worker count |
//! | `table5_peak_memory` | Table 5 — peak query memory |
//! | `auncel_comparison` | §6.5.4 — Harmony vs Auncel under skew |
//!
//! Every binary accepts `--scale <f>` (dataset cardinality multiplier vs
//! the paper's Table 2, default 0.02), `--queries <n>`, `--workers <n>`,
//! and `--quick` (coarser sweeps). `HARMONY_BENCH_SCALE` overrides the
//! default scale globally.

pub mod cli;
pub mod report;
pub mod runner;

pub use cli::BenchArgs;
pub use report::Table;
