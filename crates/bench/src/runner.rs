//! Shared experiment runners: engine construction, QPS/recall measurement.
//!
//! Conventions used across every figure/table binary:
//!
//! * **Node ≙ thread.** The Faiss baseline runs single-threaded
//!   ([`harmony_baseline::FaissLikeEngine::search_batch_sequential`]) and
//!   each simulated Harmony worker is one thread, so "4 workers vs 1 node"
//!   compares 4 threads against 1 thread — the paper's node-count ratio.
//! * **Modeled QPS.** Throughput is reported from the modeled cluster
//!   makespan (compute busy time + modeled network time, gated by the
//!   slowest node), which is what the paper's 100 Gb/s testbed would
//!   observe. Wall QPS is also recorded.
//! * **Shared clustering.** All engines of one experiment share `nlist` and
//!   the training seed (§6.1's fairness requirement).

use std::time::Duration;

use harmony_core::{BatchResult, EngineMode, HarmonyConfig, HarmonyEngine, SearchOptions};
use harmony_data::{ground_truth, recall_at_k, Dataset};
use harmony_index::{BlockRepr, Metric, Neighbor, VectorStore};

/// Training seed shared by every engine in the harness.
pub const BENCH_SEED: u64 = 0xBE7C_11ED;

/// `nlist` heuristic: ~√n (Faiss guidance), keeping inverted lists large
/// enough that per-probe computation dominates per-message cost, as in the
/// paper's 1M-vector setups.
pub fn nlist_for(n: usize) -> usize {
    ((n as f64).sqrt() as usize) & !1usize | 2
}

/// Clamps `nlist` to the paper-typical band.
pub fn nlist_for_clamped(n: usize) -> usize {
    nlist_for(n).clamp(16, 512)
}

/// Builds a Harmony engine in `mode` with harness defaults.
///
/// # Panics
/// Panics on build failure — benchmark binaries fail loudly.
pub fn build_harmony(
    dataset: &Dataset,
    mode: EngineMode,
    workers: usize,
    nlist: usize,
) -> HarmonyEngine {
    build_harmony_repr(dataset, mode, workers, nlist, BlockRepr::F32)
}

/// Builds a Harmony engine with an explicit block representation (the
/// `--repr` axis of the SQ8 experiments).
///
/// # Panics
/// Panics on build failure.
pub fn build_harmony_repr(
    dataset: &Dataset,
    mode: EngineMode,
    workers: usize,
    nlist: usize,
    repr: BlockRepr,
) -> HarmonyEngine {
    let config = HarmonyConfig::builder()
        .n_machines(workers)
        .nlist(nlist)
        .metric(Metric::L2)
        .mode(mode)
        .seed(BENCH_SEED)
        .repr(repr)
        .build()
        .expect("valid config");
    HarmonyEngine::build(config, &dataset.base).expect("engine build")
}

/// Builds a Harmony engine from an explicit config over the dataset.
///
/// # Panics
/// Panics on build failure.
pub fn build_harmony_with(dataset: &Dataset, config: HarmonyConfig) -> HarmonyEngine {
    HarmonyEngine::build(config, &dataset.base).expect("engine build")
}

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Modeled queries/second (primary metric — see module docs).
    pub qps: f64,
    /// Wall-clock queries/second at the client.
    pub qps_wall: f64,
    /// Recall@k against exact ground truth (when requested).
    pub recall: Option<f64>,
    /// Three-way time percentages (compute, comm, other).
    pub breakdown: (f64, f64, f64),
    /// Std-dev of per-worker compute load, ns.
    pub imbalance: f64,
    /// The raw batch result.
    pub batch: BatchResult,
}

/// Runs `queries` through a Harmony engine and measures QPS (+ recall
/// against `truth` when provided).
///
/// # Panics
/// Panics on search failure.
pub fn measure_harmony(
    engine: &HarmonyEngine,
    queries: &VectorStore,
    opts: &SearchOptions,
    truth: Option<&[Vec<Neighbor>]>,
) -> Measured {
    let batch = engine.search_batch(queries, opts).expect("search batch");
    let recall = truth.map(|t| recall_at_k(t, &batch.results, opts.k));
    Measured {
        qps: batch.qps_modeled(),
        qps_wall: batch.qps_wall(),
        recall,
        breakdown: batch.breakdown().percentages(),
        imbalance: batch.load_imbalance(),
        batch,
    }
}

/// Measures the sequential Faiss baseline: QPS from single-thread wall time.
///
/// # Panics
/// Panics on search failure.
pub fn measure_faiss(
    engine: &harmony_baseline::FaissLikeEngine,
    queries: &VectorStore,
    k: usize,
    nprobe: usize,
    truth: Option<&[Vec<Neighbor>]>,
) -> (f64, Option<f64>, Duration) {
    let (results, wall) = engine
        .search_batch_sequential(queries, k, nprobe)
        .expect("faiss batch");
    let qps = if wall.as_secs_f64() > 0.0 {
        queries.len() as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    let recall = truth.map(|t| recall_at_k(t, &results, k));
    (qps, recall, wall)
}

/// Exact ground truth for recall scoring (truncates to at most
/// `max_queries` to bound brute-force time).
pub fn truth_for(dataset: &Dataset, queries: &VectorStore, k: usize) -> Vec<Vec<Neighbor>> {
    ground_truth(&dataset.base, queries, k, Metric::L2)
}

/// First `n` queries of a store (or all of them).
pub fn take_queries(store: &VectorStore, n: usize) -> VectorStore {
    let take = n.min(store.len());
    store.gather(&(0..take).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_data::SyntheticSpec;

    #[test]
    fn nlist_heuristic_is_reasonable() {
        assert!(nlist_for_clamped(1_000) >= 16);
        assert!(nlist_for_clamped(1_000_000) <= 512);
        assert!(nlist_for_clamped(10_000) >= 64);
    }

    #[test]
    fn end_to_end_measurement_smoke() {
        let d = SyntheticSpec::clustered(1_000, 8, 8)
            .with_seed(1)
            .generate();
        let queries = take_queries(&d.queries, 8);
        let nlist = 16;
        let engine = build_harmony(&d, EngineMode::Harmony, 2, nlist);
        let truth = truth_for(&d, &queries, 5);
        let opts = SearchOptions::new(5).with_nprobe(4);
        let m = measure_harmony(&engine, &queries, &opts, Some(&truth));
        assert!(m.qps > 0.0);
        assert!(m.recall.unwrap() > 0.3);
        engine.shutdown().unwrap();

        let faiss =
            harmony_baseline::FaissLikeEngine::build(nlist, Metric::L2, BENCH_SEED, &d.base)
                .unwrap();
        let (qps, recall, _) = measure_faiss(&faiss, &queries, 5, 4, Some(&truth));
        assert!(qps > 0.0);
        assert!(recall.unwrap() > 0.3);
    }
}
