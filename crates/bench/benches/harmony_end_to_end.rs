//! Criterion: end-to-end Harmony batch search on a small deployment — the
//! full client → workers → pipeline → merge path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_core::{EngineMode, HarmonyConfig, HarmonyEngine, SearchOptions};
use harmony_data::SyntheticSpec;

fn bench_engine(c: &mut Criterion) {
    let dataset = SyntheticSpec::clustered(8_000, 64, 32)
        .with_seed(1)
        .generate();
    let queries = dataset.queries.gather(&(0..16).collect::<Vec<_>>());
    let mut group = c.benchmark_group("harmony_end_to_end");
    group.sample_size(10);

    for mode in [
        EngineMode::Harmony,
        EngineMode::HarmonyVector,
        EngineMode::HarmonyDimension,
    ] {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(64)
            .mode(mode)
            .seed(7)
            .build()
            .unwrap();
        let engine = HarmonyEngine::build(config, &dataset.base).unwrap();
        let opts = SearchOptions::new(10).with_nprobe(8);
        group.bench_with_input(
            BenchmarkId::new("batch16_8kx64", mode.name()),
            &mode,
            |bench, _| {
                bench.iter(|| {
                    let batch = engine.search_batch(&queries, &opts).unwrap();
                    black_box(batch.results.len())
                })
            },
        );
        engine.shutdown().unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
