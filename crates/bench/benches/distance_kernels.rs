//! Criterion: distance kernels — scalar vs dispatched (AVX2 when present),
//! full-width vs dimension-block partials.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_index::distance::{ip, ip_scalar, l2_sq, l2_sq_scalar, DimRange};

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for dim in [32usize, 128, 512] {
        let (a, b) = vectors(dim);
        group.bench_with_input(BenchmarkId::new("l2_dispatch", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_scalar", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_scalar(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("ip_dispatch", dim), &dim, |bench, _| {
            bench.iter(|| ip(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("ip_scalar", dim), &dim, |bench, _| {
            bench.iter(|| ip_scalar(black_box(&a), black_box(&b)))
        });
    }
    // Partial over a quarter block vs full width: the per-call overhead
    // visible at thin blocks motivates Harmony's per-worker batching.
    let (a, b) = vectors(128);
    let quarter = DimRange::new(0, 32);
    group.bench_function("l2_quarter_block", |bench| {
        bench.iter(|| {
            l2_sq(
                black_box(&a[quarter.start..quarter.end]),
                black_box(&b[quarter.start..quarter.end]),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
