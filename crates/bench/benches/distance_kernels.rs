//! Criterion: distance kernels — scalar vs dispatched (AVX2 when present),
//! f32 vs SQ8 int8 codes, full-width vs dimension-block partials.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_index::distance::{
    ip, ip_scalar, ip_u8, ip_u8_scalar, l2_sq, l2_sq_scalar, l2_sq_u8, l2_sq_u8_scalar, DimRange,
};

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
    (a, b)
}

fn codes(dim: usize) -> (Vec<u8>, Vec<u8>) {
    let a: Vec<u8> = (0..dim).map(|i| (i * 37 % 256) as u8).collect();
    let b: Vec<u8> = (0..dim).map(|i| (i * 11 % 256) as u8).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for dim in [32usize, 128, 512] {
        let (a, b) = vectors(dim);
        group.bench_with_input(BenchmarkId::new("l2_dispatch", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_scalar", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_scalar(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("ip_dispatch", dim), &dim, |bench, _| {
            bench.iter(|| ip(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("ip_scalar", dim), &dim, |bench, _| {
            bench.iter(|| ip_scalar(black_box(&a), black_box(&b)))
        });
        // SQ8 stage-1 kernels on the same widths: the quantized scan's cost
        // per row relative to exact f32 is the two-stage speedup ceiling.
        let (qa, qb) = codes(dim);
        group.bench_with_input(BenchmarkId::new("l2_u8_dispatch", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_u8(black_box(&qa), black_box(&qb)))
        });
        group.bench_with_input(BenchmarkId::new("l2_u8_scalar", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_u8_scalar(black_box(&qa), black_box(&qb)))
        });
        group.bench_with_input(BenchmarkId::new("ip_u8_dispatch", dim), &dim, |bench, _| {
            bench.iter(|| ip_u8(black_box(&qa), black_box(&qb)))
        });
        group.bench_with_input(BenchmarkId::new("ip_u8_scalar", dim), &dim, |bench, _| {
            bench.iter(|| ip_u8_scalar(black_box(&qa), black_box(&qb)))
        });
    }
    // Partial over a quarter block vs full width: the per-call overhead
    // visible at thin blocks motivates Harmony's per-worker batching.
    let (a, b) = vectors(128);
    let quarter = DimRange::new(0, 32);
    group.bench_function("l2_quarter_block", |bench| {
        bench.iter(|| {
            l2_sq(
                black_box(&a[quarter.start..quarter.end]),
                black_box(&b[quarter.start..quarter.end]),
            )
        })
    });
    let (qa, qb) = codes(128);
    group.bench_function("l2_u8_quarter_block", |bench| {
        bench.iter(|| {
            l2_sq_u8(
                black_box(&qa[quarter.start..quarter.end]),
                black_box(&qb[quarter.start..quarter.end]),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
