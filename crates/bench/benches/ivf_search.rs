//! Criterion: single-node IVF-Flat search — the Faiss-baseline hot path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_data::SyntheticSpec;
use harmony_index::{IvfIndex, IvfParams};

fn bench_ivf(c: &mut Criterion) {
    let dataset = SyntheticSpec::clustered(20_000, 64, 32)
        .with_seed(5)
        .generate();
    let mut ivf = IvfIndex::train(&dataset.base, &IvfParams::new(64).with_seed(9)).unwrap();
    ivf.add(&dataset.base).unwrap();
    let query = dataset.queries.row(0).to_vec();

    let mut group = c.benchmark_group("ivf_search");
    for nprobe in [1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("k10_20kx64", nprobe),
            &nprobe,
            |bench, &nprobe| {
                bench.iter(|| black_box(ivf.search(&query, 10, nprobe).unwrap().len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ivf);
criterion_main!(benches);
