//! Criterion: k-means training and assignment — the shared "Train"/"Add"
//! stages of every engine's build (Fig. 10).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harmony_data::SyntheticSpec;
use harmony_index::{KMeans, KMeansConfig};

fn bench_kmeans(c: &mut Criterion) {
    let dataset = SyntheticSpec::clustered(5_000, 32, 16)
        .with_seed(3)
        .generate();
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);

    group.bench_function("train_5k_x32_k16", |bench| {
        bench.iter(|| {
            let km = KMeans::train(&dataset.base, &KMeansConfig::new(16, 7)).unwrap();
            black_box(km.inertia)
        })
    });

    let km = KMeans::train(&dataset.base, &KMeansConfig::new(16, 7)).unwrap();
    group.bench_function("assign_5k_x32_k16", |bench| {
        bench.iter(|| black_box(km.assign(&dataset.base).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
