//! Criterion: wire codec — the serialization cost on every message of the
//! simulated cluster (part of the paper's "other overhead").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_cluster::Wire;
use harmony_core::messages::{Carry, QueryChunk, ToWorker};

fn chunk(dims: usize) -> QueryChunk {
    QueryChunk {
        ns: 0,
        query_id: 42,
        epoch: 0,
        shard: 1,
        k: 10,
        threshold: 3.25,
        clusters: (0..16).collect(),
        dims: (0..dims).map(|i| i as f32 * 0.01).collect(),
        q_total_norm_sq: 1.0,
        order: vec![0, 1, 2, 3],
        position: 0,
        delta_seq: 0,
    }
}

fn carry(survivors: usize) -> Carry {
    Carry {
        ns: 0,
        query_id: 42,
        epoch: 0,
        shard: 1,
        threshold: 3.25,
        next_position: 1,
        indices: (0..survivors as u32).collect(),
        partials: (0..survivors).map(|i| i as f32).collect(),
        visited_norms_sq: vec![],
        q_visited_norm_sq: 0.0,
        quant_eps: 0.0,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for dims in [32usize, 128] {
        let msg = ToWorker::Chunk(chunk(dims));
        group.bench_with_input(BenchmarkId::new("chunk_encode", dims), &dims, |b, _| {
            b.iter(|| black_box(msg.to_bytes().len()))
        });
        let bytes = msg.to_bytes();
        group.bench_with_input(BenchmarkId::new("chunk_decode", dims), &dims, |b, _| {
            b.iter(|| black_box(ToWorker::from_bytes(bytes.clone()).unwrap()))
        });
    }
    for survivors in [100usize, 2_000] {
        let msg = ToWorker::Carry(carry(survivors));
        group.bench_with_input(
            BenchmarkId::new("carry_roundtrip", survivors),
            &survivors,
            |b, _| {
                b.iter(|| {
                    let bytes = msg.to_bytes();
                    black_box(ToWorker::from_bytes(bytes).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
