//! Criterion: top-k heap maintenance — the per-candidate cost on every
//! scan path, and the threshold read used by pruning checks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_index::TopK;
use rand::prelude::*;

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    let mut rng = StdRng::seed_from_u64(7);
    let scores: Vec<f32> = (0..10_000).map(|_| rng.random_range(0.0..100.0)).collect();

    for k in [10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("push_10k_candidates", k),
            &k,
            |bench, &k| {
                bench.iter(|| {
                    let mut topk = TopK::new(k);
                    for (i, &s) in scores.iter().enumerate() {
                        topk.push(i as u64, s);
                    }
                    black_box(topk.threshold())
                })
            },
        );
    }
    group.bench_function("threshold_read", |bench| {
        let mut topk = TopK::new(10);
        for (i, &s) in scores.iter().take(100).enumerate() {
            topk.push(i as u64, s);
        }
        bench.iter(|| black_box(topk.threshold()))
    });
    group.bench_function("merge_two_full_heaps", |bench| {
        let mut a = TopK::new(100);
        let mut b = TopK::new(100);
        for (i, &s) in scores.iter().take(1000).enumerate() {
            a.push(i as u64, s);
            b.push((i + 1000) as u64, s * 0.9);
        }
        bench.iter(|| {
            let mut merged = a.clone();
            merged.merge(&b);
            black_box(merged.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
