//! Exact k-NN ground truth and recall computation.
//!
//! The paper's QPS-recall trade-off (Fig. 6) sweeps `nprobe` and measures
//! recall against exhaustive search. This module computes that ground truth
//! in parallel and scores approximate results with the standard
//! `recall@k = |approx ∩ exact| / k`, averaged over queries.

use harmony_index::{FlatIndex, Metric, Neighbor, VectorStore};

/// Exact top-`k` neighbors of every query, computed by parallel brute force.
pub fn ground_truth(
    base: &VectorStore,
    queries: &VectorStore,
    k: usize,
    metric: Metric,
) -> Vec<Vec<Neighbor>> {
    let flat = FlatIndex::from_store(base.clone(), metric);
    flat.search_batch(queries, k)
        .expect("ground truth dims must match")
}

/// Average recall@k of `results` against `truth`.
///
/// Each entry of both slices is one query's neighbor list, best-first.
/// Result lists shorter than `k` simply contribute fewer hits.
///
/// # Panics
/// Panics if the slices have different lengths or `k == 0`.
pub fn recall_at_k(truth: &[Vec<Neighbor>], results: &[Vec<Neighbor>], k: usize) -> f64 {
    assert_eq!(truth.len(), results.len(), "query count mismatch");
    assert!(k > 0, "k must be positive");
    if truth.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (t, r) in truth.iter().zip(results) {
        let expected: std::collections::HashSet<u64> = t.iter().take(k).map(|n| n.id).collect();
        let hits = r
            .iter()
            .take(k)
            .filter(|n| expected.contains(&n.id))
            .count();
        // Normalize by the achievable maximum (ground truth may hold fewer
        // than k entries for tiny datasets).
        let denom = expected.len().min(k).max(1);
        total += hits as f64 / denom as f64;
    }
    total / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn truth_of_self_queries_is_identity() {
        let d = SyntheticSpec::clustered(300, 8, 4).with_seed(1).generate();
        let queries = d.base.gather(&[5, 10, 15]);
        let truth = ground_truth(&d.base, &queries, 1, Metric::L2);
        assert_eq!(truth[0][0].id, 5);
        assert_eq!(truth[1][0].id, 10);
        assert_eq!(truth[2][0].id, 15);
    }

    #[test]
    fn recall_of_exact_results_is_one() {
        let d = SyntheticSpec::clustered(200, 4, 4).with_seed(2).generate();
        let truth = ground_truth(&d.base, &d.queries, 10, Metric::L2);
        assert_eq!(recall_at_k(&truth, &truth, 10), 1.0);
    }

    #[test]
    fn recall_of_disjoint_results_is_zero() {
        let truth = vec![vec![Neighbor::new(1, 0.0), Neighbor::new(2, 1.0)]];
        let results = vec![vec![Neighbor::new(8, 0.0), Neighbor::new(9, 1.0)]];
        assert_eq!(recall_at_k(&truth, &results, 2), 0.0);
    }

    #[test]
    fn recall_counts_partial_overlap() {
        let truth = vec![vec![
            Neighbor::new(1, 0.0),
            Neighbor::new(2, 1.0),
            Neighbor::new(3, 2.0),
            Neighbor::new(4, 3.0),
        ]];
        let results = vec![vec![
            Neighbor::new(1, 0.0),
            Neighbor::new(3, 2.0),
            Neighbor::new(99, 9.0),
            Neighbor::new(98, 9.5),
        ]];
        assert!((recall_at_k(&truth, &results, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_only_considers_top_k_prefix() {
        let truth = vec![vec![Neighbor::new(1, 0.0), Neighbor::new(2, 1.0)]];
        // Correct id appears beyond position k.
        let results = vec![vec![Neighbor::new(9, 0.0), Neighbor::new(1, 1.0)]];
        assert_eq!(recall_at_k(&truth, &results, 1), 0.0);
        assert_eq!(recall_at_k(&truth, &results, 2), 0.5);
    }

    #[test]
    fn empty_query_set_scores_perfect() {
        assert_eq!(recall_at_k(&[], &[], 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "query count mismatch")]
    fn mismatched_lengths_panic() {
        recall_at_k(&[vec![]], &[], 1);
    }
}
