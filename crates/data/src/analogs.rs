//! Analogs of the paper's evaluation datasets (Table 2).
//!
//! Each analog reproduces the *shape* that matters for distributed ANNS —
//! exact dimensionality, data-type character (smooth time series vs. loose
//! word embeddings), and a proportional query-set size — at a cardinality
//! scaled down by [`DatasetAnalog::generate`]'s `scale` argument so the full
//! evaluation fits a development machine. `scale = 1.0` reproduces the
//! paper's cardinality (1M-class datasets; the two billion-scale sets are
//! capped, see [`DatasetAnalog::full_size`]).
//!
//! | Analog | Size | Dim | Queries | Type |
//! |--------|------|-----|---------|------|
//! | StarLightCurves | 823,600 | 1024 | 1,000 | time series |
//! | Msong | 992,272 | 420 | 1,000 | audio |
//! | Sift1M | 1,000,000 | 128 | 10,000 | image |
//! | Deep1M | 1,000,000 | 256 | 1,000 | image |
//! | Word2vec | 1,000,000 | 300 | 1,000 | word vectors |
//! | HandOutlines | 1,000,000 | 2709 | 370 | time series |
//! | Glove1.2M | 1,193,514 | 200 | 1,000 | text |
//! | Glove2.2M | 2,196,017 | 300 | 1,000 | text |
//! | SpaceV1B | 1,000,000,000 | 100 | 10,000 | text |
//! | Sift1B | 1,000,000,000 | 128 | 10,000 | image |

use crate::synthetic::{Dataset, SyntheticSpec};

/// The character of the embedded data, controlling generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Smooth curves: strong cross-dimension correlation, tight clusters.
    TimeSeries,
    /// Audio features: moderate correlation.
    Audio,
    /// Image descriptors: clustered, weak correlation.
    Image,
    /// Word/text embeddings: diffuse, no correlation.
    Text,
}

impl DataKind {
    fn correlation(self) -> f32 {
        match self {
            DataKind::TimeSeries => 0.9,
            DataKind::Audio => 0.5,
            DataKind::Image => 0.15,
            DataKind::Text => 0.0,
        }
    }

    fn spread(self) -> f32 {
        match self {
            DataKind::TimeSeries => 0.08,
            DataKind::Audio => 0.12,
            DataKind::Image => 0.15,
            DataKind::Text => 0.3,
        }
    }

    /// Eigenspectrum decay: how concentrated the distance energy is in the
    /// leading dimensions. Smooth time series decay fastest; diffuse word
    /// embeddings slowest (they also prune worst in the paper's Table 3).
    fn spectrum_decay(self) -> f32 {
        match self {
            DataKind::TimeSeries => 0.9,
            DataKind::Audio => 0.7,
            DataKind::Image => 0.6,
            DataKind::Text => 0.35,
        }
    }
}

/// One analog per paper dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DatasetAnalog {
    StarLightCurves,
    Msong,
    Sift1M,
    Deep1M,
    Word2vec,
    HandOutlines,
    Glove1_2M,
    Glove2_2M,
    SpaceV1B,
    Sift1B,
}

impl DatasetAnalog {
    /// All ten analogs in the paper's Table 2 order.
    pub const ALL: [DatasetAnalog; 10] = [
        DatasetAnalog::StarLightCurves,
        DatasetAnalog::Msong,
        DatasetAnalog::Sift1M,
        DatasetAnalog::Deep1M,
        DatasetAnalog::Word2vec,
        DatasetAnalog::HandOutlines,
        DatasetAnalog::Glove1_2M,
        DatasetAnalog::Glove2_2M,
        DatasetAnalog::SpaceV1B,
        DatasetAnalog::Sift1B,
    ];

    /// The eight datasets small enough for the paper's 4-node experiments
    /// (§6.2.2 drops the two billion-scale sets).
    pub const SMALL: [DatasetAnalog; 8] = [
        DatasetAnalog::StarLightCurves,
        DatasetAnalog::Msong,
        DatasetAnalog::Sift1M,
        DatasetAnalog::Deep1M,
        DatasetAnalog::Word2vec,
        DatasetAnalog::HandOutlines,
        DatasetAnalog::Glove1_2M,
        DatasetAnalog::Glove2_2M,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetAnalog::StarLightCurves => "StarLightCurves",
            DatasetAnalog::Msong => "Msong",
            DatasetAnalog::Sift1M => "Sift1M",
            DatasetAnalog::Deep1M => "Deep1M",
            DatasetAnalog::Word2vec => "Word2vec",
            DatasetAnalog::HandOutlines => "HandOutlines",
            DatasetAnalog::Glove1_2M => "Glove1.2M",
            DatasetAnalog::Glove2_2M => "Glove2.2M",
            DatasetAnalog::SpaceV1B => "SpaceV1B",
            DatasetAnalog::Sift1B => "Sift1B",
        }
    }

    /// Exact dimensionality from Table 2.
    pub fn dim(self) -> usize {
        match self {
            DatasetAnalog::StarLightCurves => 1024,
            DatasetAnalog::Msong => 420,
            DatasetAnalog::Sift1M => 128,
            DatasetAnalog::Deep1M => 256,
            DatasetAnalog::Word2vec => 300,
            DatasetAnalog::HandOutlines => 2709,
            DatasetAnalog::Glove1_2M => 200,
            DatasetAnalog::Glove2_2M => 300,
            DatasetAnalog::SpaceV1B => 100,
            DatasetAnalog::Sift1B => 128,
        }
    }

    /// Paper cardinality (billion-scale sets are listed at their true size;
    /// generation clamps, see [`DatasetAnalog::generate`]).
    pub fn full_size(self) -> usize {
        match self {
            DatasetAnalog::StarLightCurves => 823_600,
            DatasetAnalog::Msong => 992_272,
            DatasetAnalog::Sift1M => 1_000_000,
            DatasetAnalog::Deep1M => 1_000_000,
            DatasetAnalog::Word2vec => 1_000_000,
            DatasetAnalog::HandOutlines => 1_000_000,
            DatasetAnalog::Glove1_2M => 1_193_514,
            DatasetAnalog::Glove2_2M => 2_196_017,
            DatasetAnalog::SpaceV1B => 1_000_000_000,
            DatasetAnalog::Sift1B => 1_000_000_000,
        }
    }

    /// Query-set size from Table 2.
    pub fn full_queries(self) -> usize {
        match self {
            DatasetAnalog::Sift1M | DatasetAnalog::SpaceV1B | DatasetAnalog::Sift1B => 10_000,
            DatasetAnalog::HandOutlines => 370,
            _ => 1_000,
        }
    }

    /// Data-type character (Table 2's "Data Type" column).
    pub fn kind(self) -> DataKind {
        match self {
            DatasetAnalog::StarLightCurves | DatasetAnalog::HandOutlines => DataKind::TimeSeries,
            DatasetAnalog::Msong => DataKind::Audio,
            DatasetAnalog::Sift1M | DatasetAnalog::Deep1M | DatasetAnalog::Sift1B => {
                DataKind::Image
            }
            DatasetAnalog::Word2vec
            | DatasetAnalog::Glove1_2M
            | DatasetAnalog::Glove2_2M
            | DatasetAnalog::SpaceV1B => DataKind::Text,
        }
    }

    /// `true` for the billion-scale datasets the paper runs on 16 nodes.
    pub fn billion_scale(self) -> bool {
        matches!(self, DatasetAnalog::SpaceV1B | DatasetAnalog::Sift1B)
    }

    /// Builds the generator spec for this analog at the given scale.
    ///
    /// `scale` multiplies the paper cardinality; the result is clamped to
    /// `[1_000, 4_000_000]` so billion-scale analogs stay simulable. Query
    /// counts scale with the same factor but keep at least 32 queries.
    pub fn spec(self, scale: f64) -> SyntheticSpec {
        let n = ((self.full_size() as f64 * scale) as usize).clamp(1_000, 4_000_000);
        let n_queries = ((self.full_queries() as f64 * scale.max(0.01)) as usize).clamp(32, 10_000);
        let kind = self.kind();
        // Cluster count grows with sqrt(n), floor 32: keeps IVF lists at
        // realistic occupancy across scales.
        let components = ((n as f64).sqrt() as usize / 4).clamp(16, 256);
        SyntheticSpec {
            name: self.name().to_string(),
            n,
            dim: self.dim(),
            n_queries,
            components,
            spread: kind.spread(),
            correlation: kind.correlation(),
            spectrum_decay: kind.spectrum_decay(),
            seed: 0x11AB_0000 ^ (self as u64),
        }
    }

    /// Generates the analog dataset at `scale` (see [`DatasetAnalog::spec`]).
    pub fn generate(self, scale: f64) -> Dataset {
        self.spec(scale).generate()
    }
}

impl std::fmt::Display for DatasetAnalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_dimensions_are_exact() {
        assert_eq!(DatasetAnalog::Sift1M.dim(), 128);
        assert_eq!(DatasetAnalog::Msong.dim(), 420);
        assert_eq!(DatasetAnalog::HandOutlines.dim(), 2709);
        assert_eq!(DatasetAnalog::StarLightCurves.dim(), 1024);
        assert_eq!(DatasetAnalog::SpaceV1B.dim(), 100);
    }

    #[test]
    fn small_set_excludes_billion_scale() {
        for d in DatasetAnalog::SMALL {
            assert!(!d.billion_scale(), "{d} should not be billion-scale");
        }
        assert!(DatasetAnalog::Sift1B.billion_scale());
    }

    #[test]
    fn generate_scales_cardinality() {
        let d = DatasetAnalog::Sift1M.generate(0.002);
        assert_eq!(d.len(), 2_000);
        assert_eq!(d.dim(), 128);
        assert!(d.queries.len() >= 32);
        assert_eq!(d.name, "Sift1M");
    }

    #[test]
    fn billion_scale_clamps() {
        let spec = DatasetAnalog::Sift1B.spec(1.0);
        assert_eq!(spec.n, 4_000_000);
        let tiny = DatasetAnalog::Sift1B.spec(1e-9);
        assert_eq!(tiny.n, 1_000);
    }

    #[test]
    fn time_series_more_correlated_than_text() {
        let ts = DatasetAnalog::StarLightCurves.spec(0.01);
        let txt = DatasetAnalog::Glove1_2M.spec(0.01);
        assert!(ts.correlation > txt.correlation);
        assert!(ts.spread < txt.spread);
    }

    #[test]
    fn seeds_differ_across_analogs() {
        let seeds: std::collections::HashSet<u64> = DatasetAnalog::ALL
            .iter()
            .map(|d| d.spec(0.01).seed)
            .collect();
        assert_eq!(seeds.len(), DatasetAnalog::ALL.len());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(DatasetAnalog::Glove1_2M.to_string(), "Glove1.2M");
        assert_eq!(
            DatasetAnalog::StarLightCurves.to_string(),
            "StarLightCurves"
        );
    }
}
