//! Seeded synthetic dataset generation.
//!
//! All generated data is a *Gaussian mixture*: `components` cluster centers
//! drawn uniformly in a box, each point sampled around one center with
//! per-dimension noise. Two knobs shape the data to mimic different
//! modalities:
//!
//! * `spread` — intra-cluster standard deviation relative to the box size:
//!   small values give tight, IVF-friendly clusters (image descriptors);
//!   large values approach an unclustered cloud (word embeddings).
//! * `correlation` — a moving-average smoothing applied across dimensions:
//!   `0.0` leaves dimensions independent; values near `1.0` produce the
//!   smooth curves of time-series datasets. Correlated dimensions make
//!   early dimension blocks more predictive of the full distance, which is
//!   exactly the property that drives the pruning-ratio differences across
//!   datasets in the paper's Table 3.
//! * `spectrum_decay` — per-dimension energy decay `(1 + j)^-decay`. Real
//!   embeddings (SIFT, deep features, audio) have strongly decaying
//!   eigenspectra: the leading dimensions carry most of the distance, so
//!   partial distances over early blocks approximate the full distance and
//!   dimension-level pruning fires early (the paper's Fig. 2a measures up
//!   to 97 % cumulative pruning by the last quarter). `0.0` gives a flat
//!   (isotropic) spectrum.
//!
//! Queries are sampled from the same mixture (uniform component choice by
//! default; see [`crate::workload`] for skewed choices), matching the usual
//! benchmark construction where query and base distributions coincide.

use harmony_index::VectorStore;
use rand::prelude::*;

/// A generated dataset: base vectors plus a query set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name for reports.
    pub name: String,
    /// Base vectors (ids `0..n`).
    pub base: VectorStore,
    /// Query vectors (ids `0..n_queries`).
    pub queries: VectorStore,
    /// Mixture component that generated each base vector.
    pub base_components: Vec<u32>,
    /// Mixture component that generated each query vector.
    pub query_components: Vec<u32>,
    /// Number of mixture components used.
    pub components: usize,
}

impl Dataset {
    /// Dimensionality of the dataset.
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Number of base vectors.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when no base vectors exist.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Number of base vectors.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of query vectors.
    pub n_queries: usize,
    /// Number of Gaussian mixture components.
    pub components: usize,
    /// Intra-cluster standard deviation (box half-width is 1.0).
    pub spread: f32,
    /// Cross-dimension smoothing in `[0, 1)`; higher = smoother rows.
    pub correlation: f32,
    /// Per-dimension energy decay exponent (`0.0` = isotropic).
    pub spectrum_decay: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Single-component Gaussian cloud (`n` points, `dim` dims), as used for
    /// the paper's Fig. 11a dimension/size sweep ("datasets that follow a
    /// Gaussian distribution").
    pub fn gaussian(n: usize, dim: usize) -> Self {
        Self {
            name: format!("gaussian-{n}x{dim}"),
            n,
            dim,
            n_queries: (n / 100).clamp(16, 1000),
            components: 1,
            spread: 0.4,
            correlation: 0.0,
            spectrum_decay: 0.5,
            seed: 0xDA7A,
        }
    }

    /// Clustered mixture with `components` centers — the IVF-friendly shape
    /// of real embedding datasets.
    pub fn clustered(n: usize, dim: usize, components: usize) -> Self {
        Self {
            name: format!("clustered-{n}x{dim}c{components}"),
            n,
            dim,
            n_queries: (n / 100).clamp(16, 1000),
            components: components.max(1),
            spread: 0.12,
            correlation: 0.0,
            spectrum_decay: 0.5,
            seed: 0xDA7A,
        }
    }

    /// Overrides the per-dimension energy decay exponent.
    pub fn with_spectrum_decay(mut self, spectrum_decay: f32) -> Self {
        self.spectrum_decay = spectrum_decay.max(0.0);
        self
    }

    /// Per-dimension amplitude scales `(1 + j)^-decay`.
    fn dim_scales(&self) -> Vec<f32> {
        (0..self.dim)
            .map(|j| ((1 + j) as f32).powf(-self.spectrum_decay))
            .collect()
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the query count.
    pub fn with_queries(mut self, n_queries: usize) -> Self {
        self.n_queries = n_queries;
        self
    }

    /// Overrides the cross-dimension correlation.
    pub fn with_correlation(mut self, correlation: f32) -> Self {
        self.correlation = correlation.clamp(0.0, 0.99);
        self
    }

    /// Overrides the intra-cluster spread.
    pub fn with_spread(mut self, spread: f32) -> Self {
        self.spread = spread;
        self
    }

    /// Overrides the report name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Generates the dataset with uniform query-component weights.
    pub fn generate(&self) -> Dataset {
        self.generate_weighted(None)
    }

    /// The mixture component centers this spec generates (deterministic in
    /// `seed`). Exposed so query workloads can be regenerated against an
    /// existing dataset without re-materializing the base vectors.
    pub fn centers(&self) -> Vec<Vec<f32>> {
        let scales = self.dim_scales();
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.components.max(1))
            .map(|_| {
                (0..self.dim)
                    .map(|j| rng.random_range(-1.0..1.0f32) * scales[j])
                    .collect()
            })
            .collect()
    }

    /// Samples a fresh query set from this spec's mixture, drawing component
    /// choices from `weights` (`None` = uniform) using an independent
    /// `query_seed`. The base vectors of [`SyntheticSpec::generate`] are
    /// untouched — this is how skewed workloads (Fig. 7) are produced against
    /// a fixed dataset.
    ///
    /// # Panics
    /// Panics if `weights` has the wrong length or is not positive-summable.
    pub fn make_queries(
        &self,
        n_queries: usize,
        weights: Option<&[f64]>,
        query_seed: u64,
    ) -> (VectorStore, Vec<u32>) {
        let components = self.components.max(1);
        let scales = self.dim_scales();
        let centers = self.centers();
        let uniform = vec![1.0f64; components];
        let w = match weights {
            Some(w) => {
                assert_eq!(w.len(), components, "weights length mismatch");
                w.to_vec()
            }
            None => uniform,
        };
        let dist = rand::distr::weighted::WeightedIndex::new(&w)
            .expect("weights must be positive and finite");
        let mut rng = StdRng::seed_from_u64(query_seed);
        let mut queries = VectorStore::with_capacity(self.dim, n_queries);
        let mut query_components = Vec::with_capacity(n_queries);
        let mut row = vec![0.0f32; self.dim];
        for i in 0..n_queries {
            let c = dist.sample(&mut rng) as u32;
            self.sample_point(&centers[c as usize], &scales, &mut row, &mut rng);
            queries.push(i as u64, &row).expect("dims match");
            query_components.push(c);
        }
        (queries, query_components)
    }

    /// Generates the dataset, drawing query components from `weights`
    /// (length must equal `components`); `None` means uniform.
    ///
    /// # Panics
    /// Panics if `weights` has the wrong length or sums to zero.
    pub fn generate_weighted(&self, weights: Option<&[f64]>) -> Dataset {
        assert!(self.n > 0 && self.dim > 0, "empty spec");
        let scales = self.dim_scales();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let components = self.components.max(1);

        // Component centers, uniform in [-1, 1]^dim scaled by the spectrum
        // (must draw in the same order as `centers()`).
        let centers: Vec<Vec<f32>> = (0..components)
            .map(|_| {
                (0..self.dim)
                    .map(|j| rng.random_range(-1.0..1.0f32) * scales[j])
                    .collect()
            })
            .collect();

        let mut base = VectorStore::with_capacity(self.dim, self.n);
        let mut base_components = Vec::with_capacity(self.n);
        let mut row = vec![0.0f32; self.dim];
        for i in 0..self.n {
            let c = (i % components) as u32; // exact balance across components
            self.sample_point(&centers[c as usize], &scales, &mut row, &mut rng);
            base.push(i as u64, &row).expect("dims match");
            base_components.push(c);
        }

        // Query sampling: weighted component choice.
        let uniform = vec![1.0f64; components];
        let w = match weights {
            Some(w) => {
                assert_eq!(w.len(), components, "weights length mismatch");
                w.to_vec()
            }
            None => uniform,
        };
        let dist = rand::distr::weighted::WeightedIndex::new(&w)
            .expect("weights must be positive and finite");
        let mut queries = VectorStore::with_capacity(self.dim, self.n_queries);
        let mut query_components = Vec::with_capacity(self.n_queries);
        for i in 0..self.n_queries {
            let c = dist.sample(&mut rng) as u32;
            self.sample_point(&centers[c as usize], &scales, &mut row, &mut rng);
            queries.push(i as u64, &row).expect("dims match");
            query_components.push(c);
        }

        Dataset {
            name: self.name.clone(),
            base,
            queries,
            base_components,
            query_components,
            components,
        }
    }

    /// Samples one point around `center` into `out`; `scales` is the
    /// precomputed per-dimension amplitude profile.
    fn sample_point(&self, center: &[f32], scales: &[f32], out: &mut [f32], rng: &mut StdRng) {
        // Box-Muller pairs are overkill; sum of uniforms (Irwin-Hall, n=4)
        // gives an approximately normal noise term cheaply and portably.
        for ((o, &c), &s) in out.iter_mut().zip(center).zip(scales) {
            let u: f32 = (0..4).map(|_| rng.random_range(-0.5..0.5f32)).sum();
            *o = c + u * self.spread * s;
        }
        // Cross-dimension smoothing: first-order IIR low-pass.
        if self.correlation > 0.0 {
            let a = self.correlation;
            for i in 1..out.len() {
                out[i] = a * out[i - 1] + (1.0 - a) * out[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_index::distance::l2_sq;

    #[test]
    fn generates_requested_shapes() {
        let d = SyntheticSpec::clustered(500, 16, 8)
            .with_queries(37)
            .generate();
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 16);
        assert_eq!(d.queries.len(), 37);
        assert_eq!(d.base_components.len(), 500);
        assert_eq!(d.query_components.len(), 37);
        assert_eq!(d.components, 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSpec::clustered(200, 8, 4).with_seed(1).generate();
        let b = SyntheticSpec::clustered(200, 8, 4).with_seed(1).generate();
        assert_eq!(a.base.as_flat(), b.base.as_flat());
        assert_eq!(a.queries.as_flat(), b.queries.as_flat());
        let c = SyntheticSpec::clustered(200, 8, 4).with_seed(2).generate();
        assert_ne!(a.base.as_flat(), c.base.as_flat());
    }

    #[test]
    fn clusters_are_tighter_than_cloud() {
        let d = SyntheticSpec::clustered(600, 8, 6)
            .with_seed(3)
            .with_spread(0.05)
            .generate();
        // Mean distance within a component must be far below the mean
        // distance across components.
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in (0..600).step_by(17) {
            for j in (1..600).step_by(23) {
                if i == j {
                    continue;
                }
                let dist = l2_sq(d.base.row(i), d.base.row(j));
                if d.base_components[i] == d.base_components[j] {
                    within.push(dist);
                } else {
                    across.push(dist);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&within) * 4.0 < mean(&across));
    }

    #[test]
    fn correlation_smooths_rows() {
        let rough = SyntheticSpec::gaussian(50, 64).with_seed(4).generate();
        let smooth = SyntheticSpec::gaussian(50, 64)
            .with_seed(4)
            .with_correlation(0.95)
            .generate();
        let total_variation = |s: &VectorStore| -> f32 {
            (0..s.len())
                .map(|r| {
                    let row = s.row(r);
                    row.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>()
                })
                .sum()
        };
        assert!(total_variation(&smooth.base) * 3.0 < total_variation(&rough.base));
    }

    #[test]
    fn weighted_queries_respect_weights() {
        let spec = SyntheticSpec::clustered(100, 4, 4)
            .with_seed(5)
            .with_queries(400);
        // All the weight on component 2.
        let d = spec.generate_weighted(Some(&[0.0001, 0.0001, 1000.0, 0.0001]));
        let hits = d.query_components.iter().filter(|&&c| c == 2).count();
        assert!(hits > 390, "only {hits}/400 queries hit the hot component");
    }

    #[test]
    fn base_components_balanced() {
        let d = SyntheticSpec::clustered(400, 4, 8).generate();
        let mut counts = [0usize; 8];
        for &c in &d.base_components {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 50));
    }

    #[test]
    #[should_panic(expected = "weights length mismatch")]
    fn wrong_weight_length_panics() {
        SyntheticSpec::clustered(10, 4, 4).generate_weighted(Some(&[1.0]));
    }
}
