//! Query workload generation with a controllable skew knob.
//!
//! §6.2.2 of the paper manipulates query sets "to ensure different load
//! differences on each machine" and plots QPS against the resulting load
//! variance (Fig. 7). The driver of that variance is *where* queries land:
//! a query sampled near mixture component `c` probes the IVF lists around
//! `c`, so concentrating queries on few components concentrates work on the
//! machines owning those lists.
//!
//! [`WorkloadSpec`] expresses the concentration: uniform, Zipf-weighted, or
//! an explicit hot-set. [`WorkloadSpec::skew_level`] maps a scalar in
//! `[0, 1]` onto a Zipf exponent, giving experiments a single monotone
//! x-axis knob.

use crate::synthetic::SyntheticSpec;
use harmony_index::VectorStore;

/// How query components are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Every mixture component equally likely (balanced load).
    Uniform,
    /// Component `i` drawn with weight `(i + 1)^-s`: classic skew.
    Zipf {
        /// Zipf exponent; `0.0` degenerates to uniform.
        s: f64,
    },
    /// `hot` components absorb `hot_share` of the queries; the rest spread
    /// uniformly over the remaining components.
    HotSet {
        /// Number of hot components.
        hot: usize,
        /// Fraction of queries hitting the hot set, in `[0, 1]`.
        hot_share: f64,
    },
}

impl WorkloadSpec {
    /// Maps `level ∈ [0, 1]` onto a Zipf spec: 0 = uniform, 1 = extreme
    /// concentration (s = 4).
    pub fn skew_level(level: f64) -> Self {
        let level = level.clamp(0.0, 1.0);
        if level == 0.0 {
            WorkloadSpec::Uniform
        } else {
            WorkloadSpec::Zipf { s: level * 4.0 }
        }
    }

    /// Component weights for a mixture of `components` parts.
    ///
    /// # Panics
    /// Panics if `components == 0` or a `HotSet` is invalid.
    pub fn weights(&self, components: usize) -> Vec<f64> {
        assert!(components > 0, "no components");
        match *self {
            WorkloadSpec::Uniform => vec![1.0; components],
            WorkloadSpec::Zipf { s } => {
                (0..components).map(|i| ((i + 1) as f64).powf(-s)).collect()
            }
            WorkloadSpec::HotSet { hot, hot_share } => {
                assert!(hot > 0 && hot <= components, "invalid hot set size");
                assert!((0.0..=1.0).contains(&hot_share), "invalid hot share");
                let cold = components - hot;
                let hot_w = hot_share / hot as f64;
                let cold_w = if cold == 0 {
                    0.0
                } else {
                    (1.0 - hot_share) / cold as f64
                };
                (0..components)
                    .map(|i| if i < hot { hot_w } else { cold_w }.max(1e-12))
                    .collect()
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Uniform => "uniform".to_string(),
            WorkloadSpec::Zipf { s } => format!("zipf(s={s:.2})"),
            WorkloadSpec::HotSet { hot, hot_share } => {
                format!("hot({hot}@{:.0}%)", hot_share * 100.0)
            }
        }
    }
}

/// A generated query workload against a fixed dataset.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Report label.
    pub name: String,
    /// The query vectors.
    pub queries: VectorStore,
    /// Mixture component of each query.
    pub query_components: Vec<u32>,
    /// Number of mixture components in the underlying dataset.
    pub components: usize,
}

impl Workload {
    /// Generates `n_queries` queries from `dataset_spec`'s mixture under
    /// workload `spec`, with an independent seed.
    pub fn generate(
        dataset_spec: &SyntheticSpec,
        spec: &WorkloadSpec,
        n_queries: usize,
        seed: u64,
    ) -> Self {
        let components = dataset_spec.components.max(1);
        let weights = spec.weights(components);
        let (queries, query_components) =
            dataset_spec.make_queries(n_queries, Some(&weights), seed);
        Self {
            name: format!("{}/{}", dataset_spec.name, spec.label()),
            queries,
            query_components,
            components,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Queries per component.
    pub fn component_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.components];
        for &c in &self.query_components {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Variance of the per-component query counts — the workload-side driver
    /// of the paper's load variance x-axis (Fig. 7).
    pub fn count_variance(&self) -> f64 {
        let counts = self.component_counts();
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::clustered(2_000, 8, 16).with_seed(77)
    }

    #[test]
    fn uniform_weights_are_flat() {
        let w = WorkloadSpec::Uniform.weights(4);
        assert_eq!(w, vec![1.0; 4]);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = WorkloadSpec::Zipf { s: 1.0 }.weights(4);
        assert!(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]);
        assert!((w[0] / w[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hot_set_concentrates_mass() {
        let w = WorkloadSpec::HotSet {
            hot: 2,
            hot_share: 0.9,
        }
        .weights(10);
        let hot: f64 = w[..2].iter().sum();
        let cold: f64 = w[2..].iter().sum();
        assert!((hot - 0.9).abs() < 1e-9);
        assert!((cold - 0.1).abs() < 1e-6);
    }

    #[test]
    fn skew_level_monotone_in_variance() {
        let spec = spec();
        let mut prev = -1.0;
        for level in [0.0, 0.3, 0.6, 1.0] {
            let w = Workload::generate(&spec, &WorkloadSpec::skew_level(level), 800, 5);
            let var = w.count_variance();
            assert!(
                var >= prev,
                "variance not monotone at level {level}: {var} < {prev}"
            );
            prev = var;
        }
    }

    #[test]
    fn uniform_workload_has_low_variance() {
        let spec = spec();
        let w = Workload::generate(&spec, &WorkloadSpec::Uniform, 1600, 3);
        // 16 components x 100 expected queries each: variance ≈ binomial,
        // far below the extreme-skew case.
        let extreme = Workload::generate(&spec, &WorkloadSpec::skew_level(1.0), 1600, 3);
        assert!(w.count_variance() * 10.0 < extreme.count_variance());
    }

    #[test]
    fn counts_sum_to_len() {
        let spec = spec();
        let w = Workload::generate(&spec, &WorkloadSpec::Zipf { s: 1.5 }, 500, 9);
        assert_eq!(w.len(), 500);
        assert_eq!(w.component_counts().iter().sum::<usize>(), 500);
    }

    #[test]
    fn workload_queries_live_near_their_centers() {
        // A query tagged with component c must be closer to center c than to
        // the average center.
        let spec = spec();
        let centers = spec.centers();
        let w = Workload::generate(&spec, &WorkloadSpec::Uniform, 100, 11);
        use harmony_index::distance::l2_sq;
        for qi in 0..w.len() {
            let c = w.query_components[qi] as usize;
            let own = l2_sq(w.queries.row(qi), &centers[c]);
            let mean_other: f32 = centers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != c)
                .map(|(_, ctr)| l2_sq(w.queries.row(qi), ctr))
                .sum::<f32>()
                / (centers.len() - 1) as f32;
            assert!(own < mean_other, "query {qi} not near its center");
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(WorkloadSpec::Uniform.label(), "uniform");
        assert!(WorkloadSpec::Zipf { s: 2.0 }.label().contains("2.00"));
        assert!(WorkloadSpec::HotSet {
            hot: 3,
            hot_share: 0.5
        }
        .label()
        .contains('3'));
    }

    #[test]
    #[should_panic(expected = "invalid hot set")]
    fn invalid_hot_set_panics() {
        WorkloadSpec::HotSet {
            hot: 5,
            hot_share: 0.5,
        }
        .weights(3);
    }
}
