//! # harmony-data
//!
//! Dataset substrate for the Harmony evaluation.
//!
//! The paper evaluates on ten open-source datasets (Table 2: SIFT1M, Msong,
//! GloVe, Deep1M, Word2vec, StarLightCurves, HandOutlines, SpaceV1B,
//! Sift1B). Those files are not redistributable here, so this crate provides
//! (see DESIGN.md §4 *Substitutions*):
//!
//! * [`synthetic`] — seeded generators for Gaussian-mixture data with
//!   controllable cluster structure and inter-dimension correlation,
//! * [`analogs`] — one *analog* per paper dataset, matching its exact
//!   dimensionality and data-type character (time series → highly correlated
//!   dimensions, word embeddings → loosely correlated, ...) at a scaled-down
//!   cardinality,
//! * [`workload`] — uniform and skewed query workloads with a controllable
//!   load-imbalance knob (the x-axis of Fig. 7),
//! * [`ground_truth`] — exact k-NN answers and recall@k,
//! * [`io`] — readers/writers for the standard `fvecs`/`ivecs` formats so
//!   the real datasets drop in when available.

pub mod analogs;
pub mod ground_truth;
pub mod io;
pub mod synthetic;
pub mod workload;

pub use analogs::DatasetAnalog;
pub use ground_truth::{ground_truth, recall_at_k};
pub use synthetic::{Dataset, SyntheticSpec};
pub use workload::{Workload, WorkloadSpec};
