//! `fvecs` / `ivecs` file IO.
//!
//! The standard formats of the SIFT/GloVe/Deep benchmark suites: every
//! vector is a 4-byte little-endian dimension count followed by that many
//! 4-byte little-endian values (`f32` for fvecs, `i32` for ivecs). Readers
//! validate that all records agree on the dimension. With these, the real
//! Table 2 datasets drop into every experiment in place of the synthetic
//! analogs.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use harmony_index::VectorStore;

/// Errors from dataset file IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Structurally invalid file.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an entire `.fvecs` file into a [`VectorStore`] (ids `0..n`).
///
/// # Errors
/// [`IoError`] on filesystem failure or malformed records.
pub fn read_fvecs(path: impl AsRef<Path>) -> Result<VectorStore, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut header = [0u8; 4];
    loop {
        match reader.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let d = i32::from_le_bytes(header);
        if d <= 0 {
            return Err(IoError::Format(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(expected) if expected != d => {
                return Err(IoError::Format(format!(
                    "inconsistent dimensions: {expected} then {d}"
                )))
            }
            _ => {}
        }
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated record".to_string())
            } else {
                IoError::Io(e)
            }
        })?;
        data.extend(
            buf.chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
    }
    let dim = dim.ok_or_else(|| IoError::Format("empty file".to_string()))?;
    VectorStore::from_flat(dim, data).map_err(|e| IoError::Format(e.to_string()))
}

/// Writes a [`VectorStore`] as `.fvecs`.
///
/// # Errors
/// [`IoError::Io`] on filesystem failure.
pub fn write_fvecs(path: impl AsRef<Path>, store: &VectorStore) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    let dim = store.dim() as i32;
    for row in 0..store.len() {
        writer.write_all(&dim.to_le_bytes())?;
        for &x in store.row(row) {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads an `.ivecs` file (e.g. ground-truth id lists).
///
/// # Errors
/// [`IoError`] on filesystem failure or malformed records.
pub fn read_ivecs(path: impl AsRef<Path>) -> Result<Vec<Vec<i32>>, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    let mut header = [0u8; 4];
    loop {
        match reader.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let d = i32::from_le_bytes(header);
        if d < 0 {
            return Err(IoError::Format(format!("negative count {d}")));
        }
        let mut buf = vec![0u8; d as usize * 4];
        reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated record".to_string())
            } else {
                IoError::Io(e)
            }
        })?;
        out.push(
            buf.chunks_exact(4)
                .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    Ok(out)
}

/// Writes id lists as `.ivecs`.
///
/// # Errors
/// [`IoError::Io`] on filesystem failure.
pub fn write_ivecs(path: impl AsRef<Path>, lists: &[Vec<i32>]) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    for list in lists {
        writer.write_all(&(list.len() as i32).to_le_bytes())?;
        for &x in list {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Unique temp path per test (no tempfile dependency).
    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "harmony-io-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn fvecs_roundtrip() {
        let store = VectorStore::from_flat(3, vec![1.0, 2.0, 3.0, -4.0, 5.5, 6.25]).unwrap();
        let path = temp_path("fvecs");
        write_fvecs(&path, &store).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back.dim(), 3);
        assert_eq!(back.as_flat(), store.as_flat());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ivecs_roundtrip_with_ragged_lists() {
        let lists = vec![vec![1, 2, 3], vec![], vec![42]];
        let path = temp_path("ivecs");
        write_ivecs(&path, &lists).unwrap();
        assert_eq!(read_ivecs(&path).unwrap(), lists);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_fvecs_rejected() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(read_fvecs(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_record_rejected() {
        let path = temp_path("trunc");
        let mut bytes = Vec::new();
        bytes.extend(4i32.to_le_bytes()); // claims 4 floats
        bytes.extend(1.0f32.to_le_bytes()); // provides 1
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_fvecs(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_dims_rejected() {
        let path = temp_path("mixdim");
        let mut bytes = Vec::new();
        bytes.extend(1i32.to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2i32.to_le_bytes());
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_fvecs(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_fvecs("/nonexistent/harmony.fvecs"),
            Err(IoError::Io(_))
        ));
    }
}
