//! # harmony-baseline
//!
//! The comparison systems of the Harmony evaluation (§6.1, §6.5.4):
//!
//! * [`FaissLikeEngine`] — a single-node IVF-Flat engine standing in for
//!   Faiss, the paper's primary baseline. It shares the *exact same*
//!   clustering algorithm, seed and kernels as the distributed engines
//!   (§6.1 requires this), with intra-node thread parallelism standing in
//!   for OpenMP.
//! * [`AuncelEngine`] — a stand-in for Auncel (NSDI'23): a distributed
//!   engine with Auncel's two signature traits — fixed vector-based
//!   partitioning ("similar to Harmony-vector", §6.5.4) and per-query
//!   *error-bounded early termination*, implemented here as wave-based
//!   probing with a triangle-inequality stopping rule over cluster radii.

pub mod auncel;
pub mod faiss_like;

pub use auncel::{AuncelConfig, AuncelEngine, AuncelResult};
pub use faiss_like::{FaissBuildStats, FaissLikeEngine};
