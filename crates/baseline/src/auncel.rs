//! Auncel-like baseline: error-bounded distributed vector search (§6.5.4).
//!
//! Auncel (Zhang et al., NSDI'23) serves vector queries with *error-bound
//! guarantees* over a *fixed vector-based partitioning*. This stand-in
//! reproduces both traits on the shared substrate:
//!
//! * **Fixed vector partitioning** — IVF lists are packed onto machines
//!   once, by size (the paper observes Auncel behaves "similar to
//!   Harmony-vector" under load skew, which is exactly what this layout
//!   yields);
//! * **Error-bounded early termination** — clusters are probed in waves of
//!   ascending centroid distance; after each wave the triangle inequality
//!   gives a lower bound `(max(0, ‖q−c‖ − r_c))²` on any unseen candidate in
//!   cluster `c`, and the query stops once that bound exceeds
//!   `τ² · (1 + ε)`, i.e. no unseen vector can improve the current top-k by
//!   more than the error budget.
//!
//! Workers are plain [`harmony_core::HarmonyWorker`]s hosting single-block
//! shards; all the Auncel-specific logic is client-side wave control.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use harmony_cluster::{
    Cluster, ClusterConfig, ClusterSnapshot, CommMode, DelayMode, NetworkModel, Wire,
};
use harmony_index::distance::l2_sq;
use harmony_index::{KMeans, KMeansConfig, Metric, Neighbor, TopK, VectorStore};
use parking_lot::Mutex;

use harmony_core::messages::{metric_tag, ClusterBlock, LoadBlock, QueryChunk, ToClient, ToWorker};
use harmony_core::{CoreError, HarmonyWorker, ShardAssignment};

/// Configuration for the Auncel-like engine.
#[derive(Debug, Clone)]
pub struct AuncelConfig {
    /// Worker machines.
    pub n_machines: usize,
    /// IVF lists.
    pub nlist: usize,
    /// Training seed (matched with the other engines for fairness).
    pub seed: u64,
    /// Error budget ε: termination fires when the best possible unseen
    /// candidate cannot beat `τ² (1 + ε)`.
    pub epsilon: f32,
    /// Clusters probed per wave.
    pub wave: usize,
    /// Hard probe cap per query.
    pub max_nprobe: usize,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Real-delay injection.
    pub delay: DelayMode,
}

impl Default for AuncelConfig {
    fn default() -> Self {
        Self {
            n_machines: 4,
            nlist: 64,
            seed: 0xA0CE1,
            epsilon: 0.05,
            wave: 4,
            max_nprobe: 64,
            net: NetworkModel::amortized(10),
            delay: DelayMode::Account,
        }
    }
}

/// Result of one Auncel query.
#[derive(Debug, Clone)]
pub struct AuncelResult {
    /// Best-first neighbors.
    pub neighbors: Vec<Neighbor>,
    /// Lists actually probed before the error bound fired.
    pub probes_used: usize,
}

struct Inner {
    cluster: Cluster,
    next_query_id: u64,
}

/// The Auncel-like engine (L2 only, as in the original system's evaluation).
pub struct AuncelEngine {
    config: AuncelConfig,
    dim: usize,
    centroids: VectorStore,
    /// Cluster radius: max member distance to its centroid.
    radii: Vec<f32>,
    assignment: ShardAssignment,
    list_sizes: Vec<usize>,
    inner: Mutex<Inner>,
}

impl AuncelEngine {
    /// Builds the engine over `base`.
    ///
    /// # Errors
    /// Clustering or transport failures.
    pub fn build(config: AuncelConfig, base: &VectorStore) -> Result<Self, CoreError> {
        if config.n_machines == 0 {
            return Err(CoreError::Config("n_machines must be > 0".into()));
        }
        if base.is_empty() {
            return Err(CoreError::Config("base must be non-empty".into()));
        }
        let dim = base.dim();
        let nlist = config.nlist.min(base.len()).max(1);

        let km = KMeans::train(
            base,
            &KMeansConfig {
                k: nlist,
                seed: config.seed,
                ..KMeansConfig::default()
            },
        )?;
        let assignments = km.assign(base);
        let mut list_rows: Vec<Vec<usize>> = vec![Vec::new(); nlist];
        let mut radii = vec![0.0f32; nlist];
        for (row, &c) in assignments.iter().enumerate() {
            let c = c as usize;
            list_rows[c].push(row);
            let d = l2_sq(base.row(row), km.centroids.row(c)).sqrt();
            if d > radii[c] {
                radii[c] = d;
            }
        }
        let list_sizes: Vec<usize> = list_rows.iter().map(Vec::len).collect();

        // Fixed vector partitioning: one shard per machine, size-balanced.
        let weights: Vec<u64> = list_sizes.iter().map(|&s| s as u64 + 1).collect();
        let assignment = ShardAssignment::balanced(&weights, config.n_machines);

        // Shared calibrated compute rates, matching the other engines.
        let model = harmony_core::CostModel::new(config.net, 1.0).calibrate();
        let cluster = Cluster::spawn(
            ClusterConfig {
                workers: config.n_machines,
                net: config.net,
                comm_mode: CommMode::NonBlocking,
                delay: config.delay,
                rates: harmony_cluster::ComputeRates::default()
                    .with_kernel_rate(model.comp_ns_per_point_dim)
                    .with_candidate_rate(model.comp_ns_per_candidate),
                drop_every_nth: 0,
                transport: harmony_cluster::TransportKind::InProc,
            },
            |_| HarmonyWorker::new(),
        );

        for machine in 0..config.n_machines {
            let clusters = assignment.clusters_of(machine);
            let lists: Vec<ClusterBlock> = clusters
                .iter()
                .map(|&c| {
                    let rows = &list_rows[c as usize];
                    let mut flat = Vec::with_capacity(rows.len() * dim);
                    let mut ids = Vec::with_capacity(rows.len());
                    for &row in rows {
                        ids.push(base.id(row));
                        flat.extend_from_slice(base.row(row));
                    }
                    ClusterBlock {
                        cluster: c,
                        ids,
                        flat,
                        segs: vec![],
                        block_norms_sq: vec![],
                        total_norms_sq: vec![],
                    }
                })
                .collect();
            let load = LoadBlock {
                ns: 0,
                epoch: 0,
                shard: machine as u32,
                dim_block: 0,
                dim_start: 0,
                dim_end: dim as u64,
                total_dim_blocks: 1,
                metric: metric_tag::encode(Metric::L2),
                pruning: true,
                repr: 0,
                lists,
            };
            cluster.send(machine, ToWorker::Load(load).to_bytes())?;
        }

        let mut inner = Inner {
            cluster,
            next_query_id: 0,
        };
        for _ in 0..config.n_machines {
            let (_, payload) = inner.cluster.recv_timeout(Duration::from_secs(120))?;
            match ToClient::from_bytes(payload)? {
                ToClient::LoadAck { .. } => {}
                other => {
                    return Err(CoreError::Protocol(format!(
                        "expected LoadAck, got {other:?}"
                    )))
                }
            }
        }
        inner.cluster.reset_metrics();

        Ok(Self {
            config,
            dim,
            centroids: km.centroids,
            radii,
            assignment,
            list_sizes,
            inner: Mutex::new(inner),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &AuncelConfig {
        &self.config
    }

    /// Inverted-list sizes.
    pub fn list_sizes(&self) -> &[usize] {
        &self.list_sizes
    }

    /// Error-bounded top-`k` search.
    ///
    /// # Errors
    /// Dimension mismatch or transport failures.
    pub fn search(&self, query: &[f32], k: usize) -> Result<AuncelResult, CoreError> {
        let mut inner = self.inner.lock();
        self.search_locked(&mut inner, query, k)
    }

    fn search_locked(
        &self,
        inner: &mut Inner,
        query: &[f32],
        k: usize,
    ) -> Result<AuncelResult, CoreError> {
        if query.len() != self.dim {
            return Err(CoreError::Index(
                harmony_index::IndexError::DimensionMismatch {
                    expected: self.dim,
                    actual: query.len(),
                },
            ));
        }
        let qid = inner.next_query_id;
        inner.next_query_id += 1;

        // Clusters by ascending centroid distance, with unseen lower bounds.
        let mut order: Vec<(u32, f32, f32)> = (0..self.centroids.len())
            .map(|c| {
                let d_sq = l2_sq(query, self.centroids.row(c));
                let lb = (d_sq.sqrt() - self.radii[c]).max(0.0);
                (c as u32, d_sq, lb * lb)
            })
            .collect();
        order.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let mut topk = TopK::new(k);
        let mut probed = 0usize;
        let cap = self.config.max_nprobe.min(order.len());

        while probed < cap {
            // Error-bound termination: the best unseen candidate lives in
            // the next cluster; if even it cannot beat τ²(1+ε), stop.
            if topk.is_full() {
                let next_lb_sq = order[probed].2;
                if next_lb_sq > topk.threshold() * (1.0 + self.config.epsilon) {
                    break;
                }
            }
            let wave_end = (probed + self.config.wave).min(cap);
            let wave = &order[probed..wave_end];
            probed = wave_end;

            // Group the wave's clusters by owning machine.
            let mut by_machine: HashMap<usize, Vec<u32>> = HashMap::new();
            for &(c, _, _) in wave {
                let m = self.assignment.cluster_to_shard[c as usize] as usize;
                by_machine.entry(m).or_default().push(c);
            }
            let expected = by_machine.len();
            for (machine, clusters) in by_machine {
                let chunk = QueryChunk {
                    ns: 0,
                    query_id: qid,
                    epoch: 0,
                    shard: machine as u32,
                    k: k as u32,
                    threshold: topk.threshold(),
                    clusters,
                    dims: query.to_vec(),
                    q_total_norm_sq: 0.0,
                    order: vec![machine as u64],
                    position: 0,
                    delta_seq: 0,
                };
                inner
                    .cluster
                    .send(machine, ToWorker::Chunk(chunk).to_bytes())?;
            }
            let mut received = 0;
            while received < expected {
                let (_, payload) = inner.cluster.recv_timeout(Duration::from_secs(30))?;
                match ToClient::from_bytes(payload)? {
                    ToClient::Result(r) => {
                        if r.query_id != qid {
                            continue;
                        }
                        for (&id, &score) in r.ids.iter().zip(&r.scores) {
                            topk.push(id, score);
                        }
                        received += 1;
                    }
                    other => {
                        return Err(CoreError::Protocol(format!(
                            "unexpected message during Auncel wave: {other:?}"
                        )))
                    }
                }
            }
        }

        Ok(AuncelResult {
            neighbors: topk.into_sorted(),
            probes_used: probed,
        })
    }

    /// Sequential batch search (Auncel's waves serialize per query); returns
    /// per-query results, wall time, and the metrics delta.
    ///
    /// # Errors
    /// Dimension mismatch or transport failures.
    pub fn search_batch(
        &self,
        queries: &VectorStore,
        k: usize,
    ) -> Result<(Vec<AuncelResult>, Duration, ClusterSnapshot), CoreError> {
        let mut inner = self.inner.lock();
        inner.cluster.reset_metrics();
        let t0 = Instant::now();
        let mut out = Vec::with_capacity(queries.len());
        for qi in 0..queries.len() {
            out.push(self.search_locked(&mut inner, queries.row(qi), k)?);
        }
        let wall = t0.elapsed();
        let snapshot = inner.cluster.snapshot();
        Ok((out, wall, snapshot))
    }

    /// Stops the workers.
    ///
    /// # Errors
    /// Reports worker panics.
    pub fn shutdown(self) -> Result<(), CoreError> {
        self.inner.into_inner().cluster.shutdown()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_data::SyntheticSpec;
    use harmony_index::FlatIndex;

    fn dataset() -> harmony_data::Dataset {
        SyntheticSpec::clustered(1_500, 16, 12)
            .with_seed(5)
            .generate()
    }

    fn engine(epsilon: f32) -> (AuncelEngine, harmony_data::Dataset) {
        let d = dataset();
        let config = AuncelConfig {
            nlist: 24,
            epsilon,
            seed: 9,
            ..AuncelConfig::default()
        };
        (AuncelEngine::build(config, &d.base).unwrap(), d)
    }

    #[test]
    fn finds_self_and_terminates_early() {
        let (engine, d) = engine(0.05);
        let r = engine.search(d.base.row(7), 1).unwrap();
        assert_eq!(r.neighbors[0].id, 7);
        assert!(r.neighbors[0].score < 1e-6);
        assert!(
            r.probes_used < 24,
            "tight self-query should stop early, probed {}",
            r.probes_used
        );
        engine.shutdown().unwrap();
    }

    #[test]
    fn error_bound_holds_against_exact_search() {
        let (engine, d) = engine(0.05);
        let flat = FlatIndex::from_store(d.base.clone(), Metric::L2);
        for qi in 0..10 {
            let q = d.queries.row(qi);
            let got = engine.search(q, 5).unwrap();
            let exact = flat.search(q, 5).unwrap();
            // Every returned score must be within (1+ε) of the true k-th
            // best — the Auncel guarantee.
            let bound = exact[4].score * (1.0 + 0.05) + 1e-6;
            for n in &got.neighbors {
                assert!(
                    n.score <= bound,
                    "query {qi}: score {} above bound {bound}",
                    n.score
                );
            }
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn tighter_epsilon_probes_more() {
        let (loose, d) = engine(1.0);
        let (tight, _) = engine(0.0);
        let mut loose_probes = 0;
        let mut tight_probes = 0;
        for qi in 0..10 {
            let q = d.queries.row(qi);
            loose_probes += loose.search(q, 5).unwrap().probes_used;
            tight_probes += tight.search(q, 5).unwrap().probes_used;
        }
        assert!(
            tight_probes >= loose_probes,
            "tight {tight_probes} < loose {loose_probes}"
        );
        loose.shutdown().unwrap();
        tight.shutdown().unwrap();
    }

    #[test]
    fn batch_reports_metrics() {
        let (engine, d) = engine(0.1);
        let queries = d.base.gather(&[1, 2, 3]);
        let (results, wall, snapshot) = engine.search_batch(&queries, 3).unwrap();
        assert_eq!(results.len(), 3);
        assert!(wall > Duration::ZERO);
        assert!(snapshot.total().bytes_tx > 0);
        engine.shutdown().unwrap();
    }

    #[test]
    fn rejects_bad_inputs() {
        let (engine, _) = engine(0.1);
        assert!(engine.search(&[1.0, 2.0], 3).is_err());
        engine.shutdown().unwrap();
        assert!(AuncelEngine::build(
            AuncelConfig {
                n_machines: 0,
                ..AuncelConfig::default()
            },
            &VectorStore::from_flat(2, vec![0.0, 0.0]).unwrap()
        )
        .is_err());
    }
}
