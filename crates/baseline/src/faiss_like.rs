//! Single-node IVF-Flat baseline ("Faiss" in the paper's figures).
//!
//! Same k-means, same kernels, same `nlist`/`nprobe` semantics as the
//! distributed engines — the only difference is that everything runs on one
//! node with thread-level parallelism. This isolates the variable the paper
//! studies: the distribution strategy.

use std::time::{Duration, Instant};

use harmony_index::{IvfIndex, IvfParams, Metric, Neighbor, VectorStore};

use harmony_core::CoreError;

/// Build timing for the single-node baseline (Train + Add; no Pre-assign).
#[derive(Debug, Clone)]
pub struct FaissBuildStats {
    /// k-means training time.
    pub train: Duration,
    /// List-assignment time.
    pub add: Duration,
}

impl FaissBuildStats {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.train + self.add
    }
}

/// The single-node IVF-Flat engine.
pub struct FaissLikeEngine {
    ivf: IvfIndex,
    build_stats: FaissBuildStats,
}

impl FaissLikeEngine {
    /// Trains and populates the index over `base`.
    ///
    /// # Errors
    /// Propagates clustering failures.
    pub fn build(
        nlist: usize,
        metric: Metric,
        seed: u64,
        base: &VectorStore,
    ) -> Result<Self, CoreError> {
        let nlist = nlist.min(base.len()).max(1);
        let t0 = Instant::now();
        let mut ivf = IvfIndex::train(
            base,
            &IvfParams::new(nlist).with_metric(metric).with_seed(seed),
        )?;
        let train = t0.elapsed();
        let t0 = Instant::now();
        ivf.add(base)?;
        let add = t0.elapsed();
        Ok(Self {
            ivf,
            build_stats: FaissBuildStats { train, add },
        })
    }

    /// Build timings.
    pub fn build_stats(&self) -> &FaissBuildStats {
        &self.build_stats
    }

    /// The underlying index.
    pub fn index(&self) -> &IvfIndex {
        &self.ivf
    }

    /// Heap bytes of the index.
    pub fn memory_bytes(&self) -> usize {
        self.ivf.memory_bytes()
    }

    /// Top-`k` search probing `nprobe` lists.
    ///
    /// # Errors
    /// Dimension mismatch or invalid parameters.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Neighbor>, CoreError> {
        Ok(self.ivf.search(query, k, nprobe)?)
    }

    /// Parallel batch search; returns the per-query results and the wall
    /// time, from which callers derive the baseline QPS.
    ///
    /// # Errors
    /// Dimension mismatch or invalid parameters.
    pub fn search_batch(
        &self,
        queries: &VectorStore,
        k: usize,
        nprobe: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, Duration), CoreError> {
        let t0 = Instant::now();
        let results = self.ivf.search_batch(queries, k, nprobe)?;
        Ok((results, t0.elapsed()))
    }

    /// Sequential batch search: one thread, as a stand-in for "one node" in
    /// cross-system comparisons where each simulated Harmony worker is also
    /// one thread (see DESIGN.md §4 — node ≙ thread consistently).
    ///
    /// # Errors
    /// Dimension mismatch or invalid parameters.
    pub fn search_batch_sequential(
        &self,
        queries: &VectorStore,
        k: usize,
        nprobe: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, Duration), CoreError> {
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(queries.len());
        for qi in 0..queries.len() {
            results.push(self.ivf.search(queries.row(qi), k, nprobe)?);
        }
        Ok((results, t0.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_data::SyntheticSpec;

    fn dataset() -> harmony_data::Dataset {
        SyntheticSpec::clustered(1_200, 16, 8)
            .with_seed(3)
            .generate()
    }

    #[test]
    fn build_and_search() {
        let d = dataset();
        let engine = FaissLikeEngine::build(16, Metric::L2, 7, &d.base).unwrap();
        assert_eq!(engine.index().len(), 1_200);
        let res = engine.search(d.base.row(10), 5, 16).unwrap();
        assert_eq!(res[0].id, 10);
        assert!(engine.memory_bytes() > 1_200 * 16 * 4 / 2);
        assert!(engine.build_stats().total() > Duration::ZERO);
    }

    #[test]
    fn matches_raw_ivf_with_same_seed() {
        let d = dataset();
        let engine = FaissLikeEngine::build(16, Metric::L2, 7, &d.base).unwrap();
        let mut ivf = harmony_index::IvfIndex::train(
            &d.base,
            &harmony_index::IvfParams::new(16).with_seed(7),
        )
        .unwrap();
        ivf.add(&d.base).unwrap();
        for qi in 0..5 {
            let q = d.queries.row(qi);
            assert_eq!(
                engine.search(q, 10, 4).unwrap(),
                ivf.search(q, 10, 4).unwrap()
            );
        }
    }

    #[test]
    fn batch_returns_timing() {
        let d = dataset();
        let engine = FaissLikeEngine::build(16, Metric::L2, 7, &d.base).unwrap();
        let (results, wall) = engine.search_batch(&d.queries, 10, 4).unwrap();
        assert_eq!(results.len(), d.queries.len());
        assert!(wall > Duration::ZERO);
    }

    #[test]
    fn nlist_clamped_to_dataset() {
        let tiny = VectorStore::from_flat(4, vec![0.0; 4 * 8]).unwrap();
        let engine = FaissLikeEngine::build(1000, Metric::L2, 1, &tiny).unwrap();
        assert!(engine.index().nlist() <= 8);
    }
}
