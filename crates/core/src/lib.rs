//! # harmony-core
//!
//! The Harmony distributed ANNS engine — the primary contribution of the
//! paper (SIGMOD 2025, arXiv:2506.14707), built on the `harmony-index` and
//! `harmony-cluster` substrates.
//!
//! The system combines three ideas:
//!
//! 1. **Multi-granularity partitioning** ([`partition`]): the IVF index is
//!    cut on a grid of vector shards × dimension blocks, with each grid
//!    block on its own machine.
//! 2. **A cost model** ([`cost`]) that scores candidate grids by expected
//!    computation, communication, and load imbalance, picking the best
//!    factorization for the current workload (`--Mode Harmony`), or forced
//!    to the pure strategies (`--Mode Harmony-vector` / `Harmony-dimension`).
//! 3. **Dimension-level pruning in a pipelined executor** ([`pruning`],
//!    [`worker`], [`engine`]): partial distances accumulate hop by hop
//!    across machines and candidates are dropped the moment they can no
//!    longer enter the top-k — exactly (monotone partial sums under L2, a
//!    Cauchy–Schwarz completion bound under inner-product metrics).
//!
//! Entry point: [`HarmonyEngine::build`], then [`HarmonyEngine::search`] /
//! [`HarmonyEngine::search_batch`].

pub mod config;
pub mod cost;
pub mod engine;
pub mod error;
pub mod messages;
pub mod partition;
pub mod pruning;
pub mod stats;
pub mod worker;

pub use config::{
    EngineMode, HarmonyConfig, HarmonyConfigBuilder, NamespaceConfig, ReplanConfig, SearchOptions,
};
pub use cost::{CostModel, PlanCost, WorkloadProfile};
pub use engine::{
    CompactionReport, EngineCore, HarmonyEngine, MigrationReport, ReplanOutcome, RoutingEpoch,
    SingleResult,
};
pub use error::CoreError;
pub use harmony_index::Temperature;
pub use partition::{PartitionPlan, ShardAssignment};
pub use pruning::{PruneRule, SliceStats};
pub use stats::{
    BatchResult, BuildStats, EngineStats, LoadTracker, ProbeEwma, ProbeSnapshot, ProbeTracker,
};
pub use worker::HarmonyWorker;
