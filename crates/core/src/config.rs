//! Engine configuration — the paper's CLI surface (§5 *Parameters*).
//!
//! | Paper flag | Field |
//! |------------|-------|
//! | `--NMachine` | [`HarmonyConfig::n_machines`] |
//! | `--Pruning_Configuration` | [`HarmonyConfig::pruning`] |
//! | `--Indexing_Parameters` (`nlist`, `nprobe`, `dim`) | [`HarmonyConfig::nlist`], [`SearchOptions::nprobe`] |
//! | `--α` | [`HarmonyConfig::alpha`] |
//! | `--Mode` | [`HarmonyConfig::mode`] |
//!
//! Two additional switches, [`HarmonyConfig::pipeline`] and
//! [`HarmonyConfig::balanced_load`], expose the optimizations the paper
//! ablates in Fig. 9 ("+Balanced load", "+Pipeline and asynchronous
//! execution", "+Pruning").

use std::path::PathBuf;

use harmony_cluster::{DelayMode, NetworkModel, TransportKind};
use harmony_index::{BlockRepr, Metric};

use crate::error::CoreError;
use crate::partition::PartitionPlan;

/// Which distribution strategy the engine runs (`--Mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Hybrid multi-granularity partitioning chosen by the cost model.
    #[default]
    Harmony,
    /// Pure vector-based partitioning (`B_vec = N, B_dim = 1`).
    HarmonyVector,
    /// Pure dimension-based partitioning (`B_vec = 1, B_dim = N`).
    HarmonyDimension,
}

impl EngineMode {
    /// Name used in reports, matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Harmony => "Harmony",
            EngineMode::HarmonyVector => "Harmony-vector",
            EngineMode::HarmonyDimension => "Harmony-dimension",
        }
    }

    /// The three modes compared throughout §6.
    pub const ALL: [EngineMode; 3] = [
        EngineMode::Harmony,
        EngineMode::HarmonyVector,
        EngineMode::HarmonyDimension,
    ];
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of the adaptive replanning supervisor.
///
/// The supervisor folds live per-cluster probe counts into an *observed*
/// [`crate::cost::WorkloadProfile`], re-scores every factorization with the
/// §4.2.1 cost model extended by a migration-cost term, and live-migrates
/// to a better plan when the projected steady-state win amortizes the move
/// (see the `engine` module docs for epoch semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanConfig {
    /// Auto-tick the supervisor every `check_every` completed queries
    /// (0 = manual [`crate::HarmonyEngine::supervisor_tick`] calls only).
    pub check_every: u64,
    /// Minimum queries observed in a window before the supervisor acts.
    pub min_window_queries: u64,
    /// Hysteresis: required relative cost win before switching (0.1 = the
    /// candidate must beat the incumbent by 10 %).
    pub hysteresis: f64,
    /// Observation windows over which the one-time migration cost is
    /// amortized when scoring a switch (larger = more eager to move).
    pub amortize_windows: f64,
    /// Bound on the weight fraction a same-plan incremental rebalance may
    /// move in one tick (caps migration traffic).
    pub max_move_frac: f64,
    /// EWMA smoothing factor applied to per-window probe counts before the
    /// supervisor scores plans: `smoothed = α·window + (1-α)·smoothed`.
    /// `1.0` disables smoothing (each window stands alone); smaller values
    /// weigh recent drift against stale history more gradually.
    pub ewma_alpha: f64,
    /// Maximum list pieces shipped per `MigrateOut` wave during an epoch
    /// migration (0 = unlimited). Smaller waves let foreground query
    /// traffic interleave in worker mailboxes instead of being starved
    /// behind one giant transfer message.
    pub max_pieces_per_tick: usize,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        Self {
            check_every: 0,
            min_window_queries: 64,
            hysteresis: 0.10,
            amortize_windows: 10.0,
            max_move_frac: 0.25,
            ewma_alpha: 0.65,
            max_pieces_per_tick: 0,
        }
    }
}

impl ReplanConfig {
    /// Auto-checking configuration with defaults elsewhere.
    pub fn auto(check_every: u64) -> Self {
        Self {
            check_every,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..1.0).contains(&self.hysteresis) {
            return Err(CoreError::Config(format!(
                "replan hysteresis must be in [0, 1), got {}",
                self.hysteresis
            )));
        }
        if self.amortize_windows <= 0.0 || !self.amortize_windows.is_finite() {
            return Err(CoreError::Config(format!(
                "replan amortize_windows must be positive and finite, got {}",
                self.amortize_windows
            )));
        }
        if !(0.0..=1.0).contains(&self.max_move_frac) {
            return Err(CoreError::Config(format!(
                "replan max_move_frac must be in [0, 1], got {}",
                self.max_move_frac
            )));
        }
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(CoreError::Config(format!(
                "replan ewma_alpha must be in (0, 1], got {}",
                self.ewma_alpha
            )));
        }
        Ok(())
    }
}

/// Full engine configuration. Build with [`HarmonyConfig::builder`].
#[derive(Debug, Clone)]
pub struct HarmonyConfig {
    /// Number of worker machines (`--NMachine`).
    pub n_machines: usize,
    /// Number of IVF lists (clusters).
    pub nlist: usize,
    /// Similarity metric.
    pub metric: Metric,
    /// Distribution strategy (`--Mode`).
    pub mode: EngineMode,
    /// Dimension-level early-stop pruning (`--Pruning_Configuration`).
    pub pruning: bool,
    /// Pipelined staging + asynchronous (non-blocking) communication.
    /// Off = all shard visits dispatched at once over blocking transport.
    pub pipeline: bool,
    /// Load-aware shard packing and adaptive dimension-order scheduling.
    /// Off = round-robin packing, fixed dimension order.
    pub balanced_load: bool,
    /// Imbalance weight `α` in the cost model (`--α`).
    pub alpha: f64,
    /// Per-query prewarm samples used to seed the pruning threshold
    /// (Algorithm 1, lines 1-5). Zero disables prewarming.
    pub prewarm: usize,
    /// Training/packing RNG seed.
    pub seed: u64,
    /// Interconnect model for the simulated cluster.
    pub net: NetworkModel,
    /// Whether modeled network cost is injected as real delay.
    pub delay: DelayMode,
    /// Fixed partition plan, bypassing the cost model (diagnostics).
    pub plan_override: Option<PartitionPlan>,
    /// Maximum queries in flight during batch search.
    pub max_inflight: usize,
    /// Adaptive replanning supervisor knobs.
    pub replan: ReplanConfig,
    /// Which fabric carries cluster frames (in-process channels or real
    /// loopback TCP). The cost model charges identically over either.
    pub transport: TransportKind,
    /// Block storage representation: exact `f32` rows or SQ8-quantized
    /// segments scanned in two stages (quantized stage-1, exact re-rank).
    pub repr: BlockRepr,
    /// Under [`BlockRepr::Sq8`], stage 1 collects `k × rerank_scale`
    /// survivors per query before the exact f32 re-rank trims them back to
    /// `k`. Larger values recover more recall at more re-rank work; ignored
    /// under [`BlockRepr::F32`]. Must be ≥ 1.
    pub rerank_scale: usize,
    /// Auto-compaction threshold: fold pending delta rows into their home
    /// IVF lists once this many upserts accumulate (0 = manual
    /// [`crate::HarmonyEngine::compact`] calls only).
    pub compact_after: usize,
    /// Background maintenance interval in milliseconds. When > 0 the engine
    /// runs a self-scheduling tick thread that compacts any namespace whose
    /// pending deltas reached [`HarmonyConfig::compact_after`] and sweeps
    /// auto-tiered namespaces between temperature tiers by access rate
    /// (0 = no background thread; compaction stays query-path-driven).
    pub compact_interval_ms: u64,
    /// Per-worker byte budget of the warm/cold block cache. Faulted-in
    /// blocks of non-pinned namespaces are retained up to this budget and
    /// evicted least-recently-visited first.
    pub cache_budget_bytes: usize,
    /// Root directory for spilled block files of warm/cold namespaces.
    /// `None` uses a per-process temp directory cleaned on worker drop.
    pub spill_dir: Option<PathBuf>,
}

impl HarmonyConfig {
    /// Starts a builder with the paper's defaults (4 machines, `nlist` 64).
    pub fn builder() -> HarmonyConfigBuilder {
        HarmonyConfigBuilder::default()
    }

    /// Validates invariants that do not depend on the dataset.
    ///
    /// # Errors
    /// [`CoreError::Config`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n_machines == 0 {
            return Err(CoreError::Config("n_machines must be > 0".into()));
        }
        if self.nlist == 0 {
            return Err(CoreError::Config("nlist must be > 0".into()));
        }
        if self.alpha < 0.0 || !self.alpha.is_finite() {
            return Err(CoreError::Config(format!(
                "alpha must be finite and non-negative, got {}",
                self.alpha
            )));
        }
        if self.max_inflight == 0 {
            return Err(CoreError::Config("max_inflight must be > 0".into()));
        }
        if self.rerank_scale == 0 {
            return Err(CoreError::Config("rerank_scale must be >= 1".into()));
        }
        self.replan.validate()?;
        if let Some(plan) = self.plan_override {
            if plan.machines() != self.n_machines {
                return Err(CoreError::Config(format!(
                    "plan override {} needs {} machines but n_machines = {}",
                    plan.label(),
                    plan.machines(),
                    self.n_machines
                )));
            }
        }
        Ok(())
    }
}

impl Default for HarmonyConfig {
    fn default() -> Self {
        HarmonyConfigBuilder::default()
            .build()
            .expect("defaults are valid")
    }
}

/// Builder for [`HarmonyConfig`].
#[derive(Debug, Clone)]
pub struct HarmonyConfigBuilder {
    config: HarmonyConfig,
}

impl Default for HarmonyConfigBuilder {
    fn default() -> Self {
        Self {
            config: HarmonyConfig {
                n_machines: 4,
                nlist: 64,
                metric: Metric::L2,
                mode: EngineMode::Harmony,
                pruning: true,
                pipeline: true,
                balanced_load: true,
                alpha: 4.0,
                prewarm: 8,
                seed: 0x04A1_0D0E_u64 ^ 0x5EED,
                // Per-query amortized message cost under the paper's
                // query-block batching (10 queries per wire message).
                net: NetworkModel::amortized(10),
                delay: DelayMode::Account,
                plan_override: None,
                max_inflight: 64,
                replan: ReplanConfig::default(),
                transport: TransportKind::InProc,
                repr: BlockRepr::F32,
                rerank_scale: 4,
                compact_after: 0,
                compact_interval_ms: 0,
                cache_budget_bytes: 64 << 20,
                spill_dir: None,
            },
        }
    }
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.config.$name = $name;
            self
        }
    };
}

impl HarmonyConfigBuilder {
    builder_setter!(
        /// Number of worker machines.
        n_machines: usize
    );
    builder_setter!(
        /// Number of IVF lists.
        nlist: usize
    );
    builder_setter!(
        /// Similarity metric.
        metric: Metric
    );
    builder_setter!(
        /// Distribution strategy.
        mode: EngineMode
    );
    builder_setter!(
        /// Dimension-level pruning on/off.
        pruning: bool
    );
    builder_setter!(
        /// Pipelined staging + async communication on/off.
        pipeline: bool
    );
    builder_setter!(
        /// Load-aware packing + adaptive dimension order on/off.
        balanced_load: bool
    );
    builder_setter!(
        /// Cost-model imbalance weight α.
        alpha: f64
    );
    builder_setter!(
        /// Prewarm samples per query.
        prewarm: usize
    );
    builder_setter!(
        /// RNG seed.
        seed: u64
    );
    builder_setter!(
        /// Interconnect model.
        net: NetworkModel
    );
    builder_setter!(
        /// Real-delay injection mode.
        delay: DelayMode
    );
    builder_setter!(
        /// Maximum in-flight queries for batch search.
        max_inflight: usize
    );
    builder_setter!(
        /// Adaptive replanning supervisor knobs.
        replan: ReplanConfig
    );
    builder_setter!(
        /// Transport fabric for cluster frames.
        transport: TransportKind
    );
    builder_setter!(
        /// Block storage representation (f32 or SQ8 two-stage).
        repr: BlockRepr
    );
    builder_setter!(
        /// Stage-1 survivor multiplier for SQ8 re-ranking.
        rerank_scale: usize
    );
    builder_setter!(
        /// Auto-compaction threshold in pending upserts (0 = manual).
        compact_after: usize
    );
    builder_setter!(
        /// Background maintenance tick interval in ms (0 = off).
        compact_interval_ms: u64
    );
    builder_setter!(
        /// Warm/cold block-cache byte budget per worker.
        cache_budget_bytes: usize
    );

    /// Sets the root directory for spilled block files.
    pub fn spill_dir(mut self, dir: PathBuf) -> Self {
        self.config.spill_dir = Some(dir);
        self
    }

    /// Forces a specific partition plan (diagnostics / ablations).
    pub fn plan(mut self, plan: PartitionPlan) -> Self {
        self.config.plan_override = Some(plan);
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Errors
    /// [`CoreError::Config`] when a constraint is violated.
    pub fn build(self) -> Result<HarmonyConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-tenant index parameters for [`crate::HarmonyEngine::create_namespace`].
///
/// Each namespace is an isolated logical index: its own metric, block
/// representation, clustering, and quota, multiplexed over the engine's
/// existing worker set. Fields not present here (machine count, transport,
/// network model, …) are cluster-level and inherited from the engine's
/// [`HarmonyConfig`].
#[derive(Debug, Clone)]
pub struct NamespaceConfig {
    /// Similarity metric of this tenant's index.
    pub metric: Metric,
    /// Block storage representation (f32 or SQ8 two-stage).
    pub repr: BlockRepr,
    /// Stage-1 survivor multiplier under SQ8 (ignored for f32); must be ≥ 1.
    pub rerank_scale: usize,
    /// Number of IVF lists for this tenant.
    pub nlist: usize,
    /// Dimension-level early-stop pruning on this tenant's queries.
    pub pruning: bool,
    /// Training/packing RNG seed.
    pub seed: u64,
    /// Per-query prewarm samples (0 disables prewarming).
    pub prewarm: usize,
    /// Quota: maximum live vectors this tenant may hold (0 = unlimited).
    /// Upserts past the quota are rejected with [`CoreError::Config`].
    pub max_vectors: usize,
    /// Whether the background sweep may demote/promote this namespace
    /// between temperature tiers by observed access rate.
    pub auto_tier: bool,
    /// Fixed partition plan, bypassing the cost model (diagnostics).
    pub plan_override: Option<PartitionPlan>,
}

impl Default for NamespaceConfig {
    fn default() -> Self {
        Self {
            metric: Metric::L2,
            repr: BlockRepr::F32,
            rerank_scale: 4,
            nlist: 16,
            pruning: true,
            seed: 0x04A1_0D0E_u64 ^ 0x5EED,
            prewarm: 8,
            max_vectors: 0,
            auto_tier: false,
            plan_override: None,
        }
    }
}

impl NamespaceConfig {
    /// Sets the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the block representation.
    pub fn with_repr(mut self, repr: BlockRepr) -> Self {
        self.repr = repr;
        self
    }

    /// Sets the SQ8 re-rank multiplier.
    pub fn with_rerank_scale(mut self, rerank_scale: usize) -> Self {
        self.rerank_scale = rerank_scale;
        self
    }

    /// Sets the IVF list count.
    pub fn with_nlist(mut self, nlist: usize) -> Self {
        self.nlist = nlist;
        self
    }

    /// Enables or disables pruning.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the vector quota (0 = unlimited).
    pub fn with_max_vectors(mut self, max_vectors: usize) -> Self {
        self.max_vectors = max_vectors;
        self
    }

    /// Opts this namespace into automatic tier sweeps.
    pub fn with_auto_tier(mut self, auto_tier: bool) -> Self {
        self.auto_tier = auto_tier;
        self
    }

    /// Forces a specific partition plan.
    pub fn with_plan(mut self, plan: PartitionPlan) -> Self {
        self.plan_override = Some(plan);
        self
    }

    /// Validates per-tenant invariants against the owning engine.
    ///
    /// # Errors
    /// [`CoreError::Config`] describing the first violated constraint.
    pub fn validate(&self, n_machines: usize) -> Result<(), CoreError> {
        if self.nlist == 0 {
            return Err(CoreError::Config("namespace nlist must be > 0".into()));
        }
        if self.rerank_scale == 0 {
            return Err(CoreError::Config(
                "namespace rerank_scale must be >= 1".into(),
            ));
        }
        if let Some(plan) = self.plan_override {
            if plan.machines() != n_machines {
                return Err(CoreError::Config(format!(
                    "namespace plan override {} needs {} machines but engine has {}",
                    plan.label(),
                    plan.machines(),
                    n_machines
                )));
            }
        }
        Ok(())
    }
}

/// Per-search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Results to return.
    pub k: usize,
    /// IVF lists probed per query (recall knob).
    pub nprobe: usize,
    /// Batch deadline in milliseconds for distributed collection: the
    /// whole `search_batch` call must finish within this budget (each
    /// receive waits only for the remaining time, never a fresh timeout).
    pub timeout_ms: u64,
}

impl SearchOptions {
    /// Top-`k` search with a default `nprobe` of 8.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            nprobe: 8,
            timeout_ms: 30_000,
        }
    }

    /// Sets `nprobe`.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Sets the batch collection deadline.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = timeout_ms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper_setup() {
        let c = HarmonyConfig::default();
        assert_eq!(c.n_machines, 4);
        assert!(c.pruning && c.pipeline && c.balanced_load);
        assert_eq!(c.mode, EngineMode::Harmony);
        assert_eq!(c.repr, BlockRepr::F32);
        assert_eq!(c.rerank_scale, 4);
        c.validate().unwrap();
    }

    #[test]
    fn repr_and_rerank_scale_are_configurable_and_validated() {
        let c = HarmonyConfig::builder()
            .repr(BlockRepr::Sq8)
            .rerank_scale(8)
            .build()
            .unwrap();
        assert_eq!(c.repr, BlockRepr::Sq8);
        assert_eq!(c.rerank_scale, 8);
        assert!(HarmonyConfig::builder().rerank_scale(0).build().is_err());
    }

    #[test]
    fn builder_sets_fields() {
        let c = HarmonyConfig::builder()
            .n_machines(8)
            .nlist(128)
            .mode(EngineMode::HarmonyVector)
            .pruning(false)
            .alpha(2.5)
            .build()
            .unwrap();
        assert_eq!(c.n_machines, 8);
        assert_eq!(c.nlist, 128);
        assert_eq!(c.mode, EngineMode::HarmonyVector);
        assert!(!c.pruning);
        assert_eq!(c.alpha, 2.5);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(HarmonyConfig::builder().n_machines(0).build().is_err());
        assert!(HarmonyConfig::builder().nlist(0).build().is_err());
        assert!(HarmonyConfig::builder().alpha(-1.0).build().is_err());
        assert!(HarmonyConfig::builder().alpha(f64::NAN).build().is_err());
        assert!(HarmonyConfig::builder().max_inflight(0).build().is_err());
    }

    #[test]
    fn invalid_replan_configs_rejected() {
        let bad = |r: ReplanConfig| HarmonyConfig::builder().replan(r).build().is_err();
        assert!(bad(ReplanConfig {
            hysteresis: 1.0,
            ..ReplanConfig::default()
        }));
        assert!(bad(ReplanConfig {
            amortize_windows: 0.0,
            ..ReplanConfig::default()
        }));
        assert!(bad(ReplanConfig {
            max_move_frac: 1.5,
            ..ReplanConfig::default()
        }));
        assert!(bad(ReplanConfig {
            ewma_alpha: 0.0,
            ..ReplanConfig::default()
        }));
        assert!(bad(ReplanConfig {
            ewma_alpha: 1.5,
            ..ReplanConfig::default()
        }));
        assert!(HarmonyConfig::builder()
            .replan(ReplanConfig::auto(256))
            .build()
            .is_ok());
    }

    #[test]
    fn plan_override_must_match_machines() {
        let plan = PartitionPlan::new(2, 2).unwrap();
        assert!(HarmonyConfig::builder()
            .n_machines(4)
            .plan(plan)
            .build()
            .is_ok());
        assert!(HarmonyConfig::builder()
            .n_machines(5)
            .plan(plan)
            .build()
            .is_err());
    }

    #[test]
    fn mode_names_match_paper_legend() {
        assert_eq!(EngineMode::Harmony.to_string(), "Harmony");
        assert_eq!(EngineMode::HarmonyVector.to_string(), "Harmony-vector");
        assert_eq!(
            EngineMode::HarmonyDimension.to_string(),
            "Harmony-dimension"
        );
    }

    #[test]
    fn tiering_knobs_default_off_and_are_settable() {
        let c = HarmonyConfig::default();
        assert_eq!(c.compact_interval_ms, 0);
        assert_eq!(c.cache_budget_bytes, 64 << 20);
        assert!(c.spill_dir.is_none());
        let c = HarmonyConfig::builder()
            .compact_interval_ms(25)
            .cache_budget_bytes(1 << 20)
            .spill_dir(PathBuf::from("/tmp/spill"))
            .build()
            .unwrap();
        assert_eq!(c.compact_interval_ms, 25);
        assert_eq!(c.cache_budget_bytes, 1 << 20);
        assert_eq!(
            c.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/spill"))
        );
    }

    #[test]
    fn namespace_config_validates_against_engine() {
        let ns = NamespaceConfig::default();
        ns.validate(4).unwrap();
        assert!(NamespaceConfig::default()
            .with_nlist(0)
            .validate(4)
            .is_err());
        assert!(NamespaceConfig::default()
            .with_rerank_scale(0)
            .validate(4)
            .is_err());
        let plan = PartitionPlan::new(2, 2).unwrap();
        assert!(NamespaceConfig::default()
            .with_plan(plan)
            .validate(4)
            .is_ok());
        assert!(NamespaceConfig::default()
            .with_plan(plan)
            .validate(5)
            .is_err());
        let ns = NamespaceConfig::default()
            .with_metric(Metric::InnerProduct)
            .with_max_vectors(100)
            .with_auto_tier(true)
            .with_seed(7);
        assert_eq!(ns.metric, Metric::InnerProduct);
        assert_eq!(ns.max_vectors, 100);
        assert!(ns.auto_tier);
    }

    #[test]
    fn search_options_clamp_degenerate_values() {
        let o = SearchOptions::new(0);
        assert_eq!(o.k, 1);
        let o = o.with_nprobe(0);
        assert_eq!(o.nprobe, 1);
    }
}
