//! Engine-level statistics: build timing, pruning breakdowns, QPS.

use std::time::Duration;

use harmony_cluster::{ClusterSnapshot, CommMode, TimeBreakdown};

use crate::cost::PlanCost;
use crate::partition::PartitionPlan;
use crate::pruning::SliceStats;

/// Timing of the three index-construction stages (Fig. 10).
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// k-means training time ("Train").
    pub train: Duration,
    /// Vector-to-list assignment time ("Add").
    pub add: Duration,
    /// Distribution of grid blocks to machines ("Pre-assign").
    pub preassign: Duration,
    /// The plan the engine ended up with.
    pub plan: PartitionPlan,
    /// Cost-model estimate of the chosen plan (None for forced plans).
    pub plan_cost: Option<PlanCost>,
    /// Bytes shipped to workers during pre-assign.
    pub bytes_shipped: u64,
}

impl BuildStats {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.train + self.add + self.preassign
    }
}

/// Aggregated per-worker statistics after a batch.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Per-slice pruning counters aggregated over workers.
    pub slices: SliceStats,
    /// Per-worker block-storage bytes.
    pub worker_memory_bytes: Vec<u64>,
    /// Total point-dimension products scanned across workers.
    pub scanned_point_dims: u64,
}

impl EngineStats {
    /// Total index bytes across workers.
    pub fn total_memory_bytes(&self) -> u64 {
        self.worker_memory_bytes.iter().sum()
    }

    /// Largest single-worker block storage.
    pub fn max_worker_memory_bytes(&self) -> u64 {
        self.worker_memory_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Outcome of a batch search.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query neighbor lists, best-first, parallel to the input store.
    pub results: Vec<Vec<harmony_index::Neighbor>>,
    /// Wall-clock time of the batch at the client.
    pub wall: Duration,
    /// Metrics delta accumulated during the batch.
    pub snapshot: ClusterSnapshot,
    /// Communication mode in force (decides makespan composition).
    pub comm_mode: CommMode,
}

impl BatchResult {
    /// Queries per second by wall clock.
    pub fn qps_wall(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.results.len() as f64 / secs
    }

    /// Queries per second by the modeled cluster makespan: compute busy time
    /// plus modeled network time, gated by the slowest node. This is the
    /// number the paper's testbed would observe, where the 100 Gb/s fabric —
    /// not the in-process channel — carries every message.
    pub fn qps_modeled(&self) -> f64 {
        let ns = self.snapshot.makespan_ns(self.comm_mode);
        if ns == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (ns as f64 / 1e9)
    }

    /// Three-way time breakdown over the batch.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.snapshot.breakdown()
    }

    /// Std-dev of per-worker compute load (the measured `I(π)`).
    pub fn load_imbalance(&self) -> f64 {
        self.snapshot.imbalance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_cluster::NodeSnapshot;

    #[test]
    fn build_total_sums_stages() {
        let b = BuildStats {
            train: Duration::from_millis(10),
            add: Duration::from_millis(20),
            preassign: Duration::from_millis(5),
            plan: PartitionPlan::pure_vector(4),
            plan_cost: None,
            bytes_shipped: 0,
        };
        assert_eq!(b.total(), Duration::from_millis(35));
    }

    #[test]
    fn qps_uses_result_count() {
        let snapshot = ClusterSnapshot {
            workers: vec![NodeSnapshot {
                busy_ns: 1_000_000_000, // 1 s busy
                ..Default::default()
            }],
            client: NodeSnapshot::default(),
        };
        let r = BatchResult {
            results: vec![vec![]; 100],
            wall: Duration::from_millis(500),
            snapshot,
            comm_mode: CommMode::NonBlocking,
        };
        assert!((r.qps_wall() - 200.0).abs() < 1.0);
        assert!((r.qps_modeled() - 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_batch_is_zero_qps() {
        let r = BatchResult {
            results: vec![],
            wall: Duration::ZERO,
            snapshot: ClusterSnapshot::default(),
            comm_mode: CommMode::NonBlocking,
        };
        assert_eq!(r.qps_wall(), 0.0);
        assert_eq!(r.qps_modeled(), 0.0);
    }

    #[test]
    fn engine_stats_memory_helpers() {
        let s = EngineStats {
            worker_memory_bytes: vec![10, 30, 20],
            ..Default::default()
        };
        assert_eq!(s.total_memory_bytes(), 60);
        assert_eq!(s.max_worker_memory_bytes(), 30);
    }
}
