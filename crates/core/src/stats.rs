//! Engine-level statistics: build timing, pruning breakdowns, QPS, and the
//! shared per-machine load estimates driving §4.3 deferred-dimension
//! scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use harmony_cluster::{ClusterSnapshot, CommMode, TimeBreakdown};

use crate::cost::PlanCost;
use crate::partition::PartitionPlan;
use crate::pruning::SliceStats;

/// Lock-free per-machine outstanding-work estimates.
///
/// Each cell stores an `f64` as its bit pattern in an [`AtomicU64`], updated
/// with CAS loops, so any number of concurrent search sessions can charge
/// and discharge load without a shared lock. Values are clamped at zero on
/// discharge: a late or duplicated discharge can never drive an estimate
/// negative.
#[derive(Debug, Default)]
pub struct LoadTracker {
    cells: Vec<AtomicU64>,
}

impl LoadTracker {
    /// A tracker for `machines` nodes, all starting at zero load.
    pub fn new(machines: usize) -> Self {
        Self {
            cells: (0..machines).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of machines tracked.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no machines are tracked.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn update(&self, machine: usize, f: impl Fn(f64) -> f64) {
        let cell = &self.cells[machine];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Charges `amount` of estimated work to `machine`.
    pub fn add(&self, machine: usize, amount: f64) {
        self.update(machine, |v| v + amount);
    }

    /// Discharges `amount` from `machine`, clamping at zero.
    pub fn sub(&self, machine: usize, amount: f64) {
        self.update(machine, |v| (v - amount).max(0.0));
    }

    /// The current estimate for `machine`.
    pub fn get(&self, machine: usize) -> f64 {
        f64::from_bits(self.cells[machine].load(Ordering::Relaxed))
    }

    /// A point-in-time copy of every machine's estimate.
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.cells.len()).map(|m| self.get(m)).collect()
    }

    /// Sum over machines (≈ 0 when no work is in flight).
    pub fn total(&self) -> f64 {
        self.snapshot().iter().sum()
    }
}

/// Lock-free per-cluster probe counters — the engine's *observed* workload.
///
/// Every admitted query bumps the counter of each IVF list it probes plus a
/// query counter. The plan supervisor periodically snapshots these, diffs
/// against the previous snapshot, and folds the window into an observed
/// [`crate::cost::WorkloadProfile`] — the runtime analogue of the paper's
/// offline probe-frequency input (§4.2.1).
#[derive(Debug, Default)]
pub struct ProbeTracker {
    counts: Vec<AtomicU64>,
    queries: AtomicU64,
    /// `k` of the most recently admitted query (the cost model's
    /// result-message size input).
    last_k: AtomicU64,
}

impl ProbeTracker {
    /// A tracker for `nlist` IVF lists.
    pub fn new(nlist: usize) -> Self {
        Self {
            counts: (0..nlist).map(|_| AtomicU64::new(0)).collect(),
            queries: AtomicU64::new(0),
            last_k: AtomicU64::new(0),
        }
    }

    /// Records one query probing the given clusters with result size `k`.
    pub fn record(&self, probes: &[u32], k: usize) {
        for &c in probes {
            if let Some(cell) = self.counts.get(c as usize) {
                cell.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.last_k.store(k as u64, Ordering::Relaxed);
    }

    /// Total queries recorded since construction.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// `k` of the most recently recorded query (0 before any query).
    pub fn last_k(&self) -> u64 {
        self.last_k.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ProbeSnapshot {
        ProbeSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`ProbeTracker`]'s counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSnapshot {
    /// Probe count per cluster.
    pub counts: Vec<u64>,
    /// Queries recorded.
    pub queries: u64,
}

impl ProbeSnapshot {
    /// Counter delta since `earlier` (saturating; the observation window).
    pub fn delta(&self, earlier: &ProbeSnapshot) -> ProbeSnapshot {
        ProbeSnapshot {
            counts: self
                .counts
                .iter()
                .enumerate()
                .map(|(i, &c)| c.saturating_sub(earlier.counts.get(i).copied().unwrap_or(0)))
                .collect(),
            queries: self.queries.saturating_sub(earlier.queries),
        }
    }

    /// Total probes across clusters.
    pub fn total_probes(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Exponentially-weighted moving average over [`ProbeTracker`] windows.
///
/// The plan supervisor feeds each observation window through this smoother
/// before scoring plans, so sustained drift dominates while a single noisy
/// window cannot whipsaw the layout. With `alpha = 1.0` every window stands
/// alone (no memory — the pre-smoothing behavior); smaller values discount
/// stale history geometrically: after `n` windows an old observation
/// retains weight `(1-α)^n`.
#[derive(Debug, Clone)]
pub struct ProbeEwma {
    counts: Vec<f64>,
    queries: f64,
    alpha: f64,
    primed: bool,
}

impl ProbeEwma {
    /// A smoother over `nlist` clusters with factor `alpha` ∈ (0, 1].
    pub fn new(nlist: usize, alpha: f64) -> Self {
        Self {
            counts: vec![0.0; nlist],
            queries: 0.0,
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            primed: false,
        }
    }

    /// Folds one observation window in: `x ← α·window + (1-α)·x`. The first
    /// window seeds the state directly so early decisions are not biased
    /// toward the zero initialization.
    pub fn absorb(&mut self, window: &ProbeSnapshot) {
        if !self.primed {
            for (cell, &c) in self.counts.iter_mut().zip(&window.counts) {
                *cell = c as f64;
            }
            self.queries = window.queries as f64;
            self.primed = true;
            return;
        }
        let a = self.alpha;
        for (i, cell) in self.counts.iter_mut().enumerate() {
            let observed = window.counts.get(i).copied().unwrap_or(0) as f64;
            *cell = a * observed + (1.0 - a) * *cell;
        }
        self.queries = a * window.queries as f64 + (1.0 - a) * self.queries;
    }

    /// The smoothed per-cluster probe counts, rounded to integers.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|&c| c.round() as u64).collect()
    }

    /// The smoothed per-window query count, rounded (at least 1 once any
    /// window with queries has been absorbed).
    pub fn queries(&self) -> u64 {
        self.queries.round() as u64
    }

    /// The smoothing factor in force.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Timing of the three index-construction stages (Fig. 10).
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// k-means training time ("Train").
    pub train: Duration,
    /// Vector-to-list assignment time ("Add").
    pub add: Duration,
    /// Distribution of grid blocks to machines ("Pre-assign").
    pub preassign: Duration,
    /// The plan the engine ended up with.
    pub plan: PartitionPlan,
    /// Cost-model estimate of the chosen plan (None for forced plans).
    pub plan_cost: Option<PlanCost>,
    /// Bytes shipped to workers during pre-assign.
    pub bytes_shipped: u64,
}

impl BuildStats {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.train + self.add + self.preassign
    }
}

/// Aggregated per-worker statistics after a batch.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Per-slice pruning counters aggregated over workers.
    pub slices: SliceStats,
    /// Per-worker block-storage bytes.
    pub worker_memory_bytes: Vec<u64>,
    /// Total point-dimension products scanned across workers.
    pub scanned_point_dims: u64,
    /// Block payload bytes resident in exact f32 form across workers.
    pub f32_block_bytes: u64,
    /// Block payload bytes resident in SQ8-quantized form across workers.
    pub sq8_block_bytes: u64,
    /// Observed wall nanoseconds workers spent in scan kernels (feeds the
    /// supervisor's compute-rate recalibration).
    pub compute_ns: u64,
    /// Delta-list payload bytes resident across workers.
    pub delta_block_bytes: u64,
    /// Delta rows resident across workers (counted once per machine
    /// holding a slice of the row).
    pub delta_rows: u64,
    /// Tombstoned ids held across worker epochs.
    pub tombstone_entries: u64,
    /// Bytes of faulted-in warm/cold blocks resident in worker LRU caches.
    pub cache_block_bytes: u64,
    /// Bytes of spilled block files on disk across workers.
    pub spilled_block_bytes: u64,
}

impl EngineStats {
    /// Total index bytes across workers.
    pub fn total_memory_bytes(&self) -> u64 {
        self.worker_memory_bytes.iter().sum()
    }

    /// Largest single-worker block storage.
    pub fn max_worker_memory_bytes(&self) -> u64 {
        self.worker_memory_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Outcome of a batch search.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query neighbor lists, best-first, parallel to the input store.
    pub results: Vec<Vec<harmony_index::Neighbor>>,
    /// Wall-clock time of the batch at the client.
    pub wall: Duration,
    /// Metrics delta over the batch's time window. When other sessions run
    /// concurrently on the same engine, the window includes their traffic
    /// too (the cluster's counters are shared).
    pub snapshot: ClusterSnapshot,
    /// Communication mode in force (decides makespan composition).
    pub comm_mode: CommMode,
}

impl BatchResult {
    /// Queries per second by wall clock.
    pub fn qps_wall(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.results.len() as f64 / secs
    }

    /// Queries per second by the modeled cluster makespan: compute busy time
    /// plus modeled network time, gated by the slowest node. This is the
    /// number the paper's testbed would observe, where the 100 Gb/s fabric —
    /// not the in-process channel — carries every message.
    pub fn qps_modeled(&self) -> f64 {
        let ns = self.snapshot.makespan_ns(self.comm_mode);
        if ns == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (ns as f64 / 1e9)
    }

    /// Three-way time breakdown over the batch.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.snapshot.breakdown()
    }

    /// Std-dev of per-worker compute load (the measured `I(π)`).
    pub fn load_imbalance(&self) -> f64 {
        self.snapshot.imbalance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_cluster::NodeSnapshot;

    #[test]
    fn build_total_sums_stages() {
        let b = BuildStats {
            train: Duration::from_millis(10),
            add: Duration::from_millis(20),
            preassign: Duration::from_millis(5),
            plan: PartitionPlan::pure_vector(4),
            plan_cost: None,
            bytes_shipped: 0,
        };
        assert_eq!(b.total(), Duration::from_millis(35));
    }

    #[test]
    fn qps_uses_result_count() {
        let snapshot = ClusterSnapshot {
            workers: vec![NodeSnapshot {
                busy_ns: 1_000_000_000, // 1 s busy
                ..Default::default()
            }],
            client: NodeSnapshot::default(),
        };
        let r = BatchResult {
            results: vec![vec![]; 100],
            wall: Duration::from_millis(500),
            snapshot,
            comm_mode: CommMode::NonBlocking,
        };
        assert!((r.qps_wall() - 200.0).abs() < 1.0);
        assert!((r.qps_modeled() - 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_batch_is_zero_qps() {
        let r = BatchResult {
            results: vec![],
            wall: Duration::ZERO,
            snapshot: ClusterSnapshot::default(),
            comm_mode: CommMode::NonBlocking,
        };
        assert_eq!(r.qps_wall(), 0.0);
        assert_eq!(r.qps_modeled(), 0.0);
    }

    #[test]
    fn load_tracker_charges_and_discharges() {
        let t = LoadTracker::new(3);
        assert_eq!(t.len(), 3);
        t.add(1, 12.5);
        t.add(1, 2.5);
        t.add(2, 4.0);
        assert_eq!(t.get(1), 15.0);
        assert_eq!(t.snapshot(), vec![0.0, 15.0, 4.0]);
        t.sub(1, 15.0);
        t.sub(2, 4.0);
        assert_eq!(t.total(), 0.0);
        // Over-discharge clamps at zero instead of going negative.
        t.sub(0, 100.0);
        assert_eq!(t.get(0), 0.0);
    }

    #[test]
    fn load_tracker_is_consistent_under_threads() {
        let t = LoadTracker::new(2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        t.add(0, 1.0);
                        t.add(1, 0.5);
                        t.sub(1, 0.5);
                        t.sub(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(t.get(0), 0.0);
        assert_eq!(t.get(1), 0.0);
    }

    #[test]
    fn probe_tracker_windows_diff_cleanly() {
        let t = ProbeTracker::new(4);
        t.record(&[0, 2], 10);
        t.record(&[2, 3], 10);
        let first = t.snapshot();
        assert_eq!(first.counts, vec![1, 0, 2, 1]);
        assert_eq!(first.queries, 2);
        t.record(&[0], 25);
        assert_eq!(t.last_k(), 25);
        let window = t.snapshot().delta(&first);
        assert_eq!(window.counts, vec![1, 0, 0, 0]);
        assert_eq!(window.queries, 1);
        assert_eq!(window.total_probes(), 1);
        // Out-of-range clusters are ignored, not a panic.
        t.record(&[99], 10);
    }

    #[test]
    fn probe_ewma_first_window_seeds_directly() {
        let mut e = ProbeEwma::new(3, 0.5);
        e.absorb(&ProbeSnapshot {
            counts: vec![10, 0, 4],
            queries: 8,
        });
        assert_eq!(e.counts(), vec![10, 0, 4]);
        assert_eq!(e.queries(), 8);
    }

    #[test]
    fn probe_ewma_weighs_recent_windows_heavier() {
        let mut e = ProbeEwma::new(2, 0.75);
        e.absorb(&ProbeSnapshot {
            counts: vec![100, 0],
            queries: 50,
        });
        // Workload flips entirely to the other cluster.
        e.absorb(&ProbeSnapshot {
            counts: vec![0, 100],
            queries: 50,
        });
        let c = e.counts();
        assert_eq!(c, vec![25, 75], "recent window must dominate at α=0.75");
        assert_eq!(e.queries(), 50);
        // Another flipped window decays the stale cluster further.
        e.absorb(&ProbeSnapshot {
            counts: vec![0, 100],
            queries: 50,
        });
        assert!(e.counts()[0] < 10);
        assert!(e.counts()[1] > 90);
    }

    #[test]
    fn probe_ewma_alpha_one_has_no_memory() {
        let mut e = ProbeEwma::new(1, 1.0);
        e.absorb(&ProbeSnapshot {
            counts: vec![100],
            queries: 10,
        });
        e.absorb(&ProbeSnapshot {
            counts: vec![4],
            queries: 2,
        });
        assert_eq!(e.counts(), vec![4]);
        assert_eq!(e.queries(), 2);
    }

    #[test]
    fn engine_stats_memory_helpers() {
        let s = EngineStats {
            worker_memory_bytes: vec![10, 30, 20],
            ..Default::default()
        };
        assert_eq!(s.total_memory_bytes(), 60);
        assert_eq!(s.max_worker_memory_bytes(), 30);
    }
}
