//! The Harmony engine: build (Train / Add / Pre-assign) and distributed
//! search with load-aware routing, prewarmed thresholds, pipelined staging
//! and dimension-level pruning.
//!
//! This is the client-side half of the system (Fig. 3): the *fine-grained
//! query planner* (§4.2) lives in [`HarmonyEngine::build`]'s plan selection
//! and in the per-visit dimension-order scheduling; the *flexible pipelined
//! execution engine* (§4.3) is the dispatch loop of
//! [`EngineCore::search_batch`] plus the worker-side relay in
//! [`crate::worker`].
//!
//! # Concurrent search sessions
//!
//! The engine multiplexes any number of caller threads over one worker
//! pool. Each [`EngineCore::search_batch`] call opens a *session*: it
//! reserves a contiguous `query_id` range from a shared atomic counter,
//! registers the range in a session table, and drives its own dispatch
//! loop. A dedicated client-side **router thread** owns the cluster's
//! receive path and demultiplexes incoming [`ToClient::Result`] messages by
//! query-id range to the owning session's channel (control replies such as
//! [`ToClient::Stats`] go to a separate control channel). Sends need only
//! `&self`, so sessions never serialize on one another; the per-machine
//! `outstanding` load estimates that drive §4.3 deferred-dimension
//! scheduling live in a lock-free [`LoadTracker`] shared by all sessions.
//!
//! # Adaptive replanning and routing epochs
//!
//! The partition layout is no longer fixed at build time. Routing state
//! (plan, shard assignment, dimension ranges) lives in an immutable
//! [`RoutingEpoch`] behind an `RwLock<Arc<_>>`; every query captures the
//! Arc at admission and keeps it for all its visits, so a layout switch
//! can land *between* queries but never *inside* one. A **plan
//! supervisor** ([`EngineCore::supervisor_tick`], optionally auto-run
//! every [`crate::config::ReplanConfig::check_every`] queries) folds the
//! live per-cluster probe counters ([`ProbeTracker`]) into an observed
//! [`WorkloadProfile`], re-scores every factorization with the cost model
//! plus a migration-cost term, and — when the projected win amortizes the
//! move — executes a live migration: workers ship [`ListPiece`]s of their
//! grid blocks to the new layout's machines (epoch N+1), destinations ack
//! once assembled, the client swaps the routing Arc, and the old epoch is
//! evicted only after its last in-flight query drains (tracked by the
//! Arc's reference count).
//!
//! # Multi-tenant namespaces and temperature tiering
//!
//! The engine hosts any number of *namespaces* — isolated logical indexes
//! with their own metric, block representation, re-rank scale, quota and
//! routing epochs — multiplexed over the one shared worker pool
//! ([`EngineCore::create_namespace`]). Every wire message carries the
//! namespace id, so worker-side storage is keyed by `(ns, epoch)` and
//! tenants can never observe each other's rows, even with overlapping
//! external ids. Each namespace also has a storage *temperature*
//! ([`Temperature`]): hot namespaces stay fully RAM-resident; warm and
//! cold namespaces spill their grid blocks to length-checked disk files
//! and fault them back through a per-worker byte-budgeted LRU cache on
//! first visit ([`EngineCore::set_namespace_tier`]) — faulted bytes are
//! bit-identical, so results never depend on residency. With
//! [`HarmonyConfig::compact_interval_ms`] set, a background **compactor
//! thread** folds any namespace's pending deltas once they cross
//! `compact_after` and sweeps namespaces that opted into `auto_tier`
//! between temperatures by their access-rate EWMA.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use harmony_cluster::{
    ClientReceiver, Cluster, ClusterConfig, ClusterError, ClusterSnapshot, CommMode, NodeId, Wire,
};
use harmony_index::distance::ip;
use harmony_index::kmeans::nearest_centroids;
use harmony_index::{
    AccessEwma, BlockRepr, DimRange, KMeans, KMeansConfig, Metric, Neighbor, Sq8Segment,
    Temperature, TopK, VectorStore,
};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{EngineMode, HarmonyConfig, NamespaceConfig, SearchOptions};
use crate::cost::{weights_from, CostModel, PlanCost, WorkloadProfile};
use crate::error::CoreError;
use crate::messages::{
    metric_tag, repr_tag, BeginEpoch, ClusterBlock, DeleteIds, DeltaUpsert, InstallLists,
    ListPiece, LoadBlock, MigrateOut, QueryChunk, QueryResult, SetTier, ToClient, ToWorker,
    TransferSpec,
};
use crate::partition::{PartitionPlan, ShardAssignment};
use crate::pruning::SliceStats;
use crate::stats::{
    BatchResult, BuildStats, EngineStats, LoadTracker, ProbeEwma, ProbeSnapshot, ProbeTracker,
};
use crate::worker::HarmonyWorker;

/// A built, running Harmony deployment.
///
/// The engine owns a simulated cluster of `n_machines` workers plus one
/// client-side session-router thread (and, with
/// [`HarmonyConfig::compact_interval_ms`] set, a background compactor
/// thread). All search entry points take `&self` and are safe to call from
/// any number of threads concurrently; each call runs as an independent
/// session against the shared worker pool (see the [module docs](self) for
/// the session model). `max_inflight` bounds the in-flight queries *per
/// session*.
///
/// The engine API lives on [`EngineCore`], reachable through `Deref`: the
/// wrapper only adds thread lifecycle (router + compactor) so the core can
/// be shared with the background threads.
pub struct HarmonyEngine {
    core: Arc<EngineCore>,
    router_stop: Arc<AtomicBool>,
    router: Option<JoinHandle<()>>,
    compactor_stop: Arc<AtomicBool>,
    compactor: Option<JoinHandle<()>>,
}

impl std::ops::Deref for HarmonyEngine {
    type Target = EngineCore;

    fn deref(&self) -> &EngineCore {
        &self.core
    }
}

/// The shared engine state and full public API (search, ingest,
/// namespaces, tiering, replanning). [`HarmonyEngine`] derefs here;
/// background threads hold it as an `Arc`.
pub struct EngineCore {
    config: HarmonyConfig,
    /// Build-time calibrated cost model; tenant namespaces clone it (the
    /// calibration is machine-wide, only the pruning survival differs).
    model: CostModel,
    /// Tenant registry. Lock order: `namespaces` before any per-namespace
    /// lock; only ever held as a temporary.
    namespaces: RwLock<BTreeMap<u16, Arc<NamespaceState>>>,
    /// Next namespace id to hand out (0 is the default namespace).
    next_ns: Mutex<u16>,
    /// The default namespace (always registered; kept separately so
    /// borrowing accessors like [`EngineCore::centroids`] can return
    /// references without going through the registry lock).
    ns0: Arc<NamespaceState>,
    build_stats: BuildStats,
    shared: Arc<EngineShared>,
    sessions: Arc<SessionTable>,
    /// Control-plane replies (acks, stats) demultiplexed by the router.
    /// Locking the receiver serializes concurrent stats collectors.
    control: Mutex<Receiver<(NodeId, ToClient)>>,
}

/// One tenant's complete logical index: clustering, routing epochs,
/// ingest state, probe counters, supervisor and storage temperature.
/// Everything a query touches after namespace resolution lives here.
pub struct NamespaceState {
    /// Wire id of this namespace.
    ns: u16,
    metric: Metric,
    dim: usize,
    /// Whether blocks are SQ8-quantized (two-stage search with re-rank).
    sq8: bool,
    pruning: bool,
    rerank_scale: usize,
    /// Live-vector quota (0 = unlimited).
    max_vectors: usize,
    /// Whether the background sweep may retemper this namespace.
    auto_tier: bool,
    centroids: VectorStore,
    /// Current list sizes per cluster; rewritten by compaction.
    list_sizes: RwLock<Vec<usize>>,
    /// Full-dimension samples kept client-side for threshold prewarming.
    prewarm_store: VectorStore,
    /// Rows of `prewarm_store` per cluster.
    prewarm_rows: Vec<Vec<usize>>,
    /// Exact full-dimension copy of every live vector, `by_id` pointing at
    /// the newest row per external id. Source of truth for compaction
    /// (lists are recut from it) and, under SQ8, for the exact re-rank
    /// stage.
    base: RwLock<BaseStore>,
    /// Mutable-shard ingest bookkeeping (upserts, deletes, compaction).
    ingest: Mutex<IngestState>,
    /// Ingest watermark visible to searches: queries admitted with
    /// watermark `w` scan exactly the delta rows with `seq < w`. Advanced
    /// only *after* an ingest op's sends complete, so FIFO transport
    /// ordering guarantees every selected row precedes the query's chunks.
    published_seq: AtomicU64,
    /// Lock-free snapshot of the ingest state consulted on the search path
    /// (dead-set filtering, forced delta visits, prewarm overrides).
    ingest_snap: RwLock<Arc<IngestSnapshot>>,
    /// The routing generation this namespace's queries are admitted under.
    routing: RwLock<Arc<RoutingEpoch>>,
    /// Observed per-cluster probe counters (the supervisor's input).
    probes: ProbeTracker,
    /// Serializes replanning ticks, migrations and compactions.
    supervisor: Mutex<SupervisorState>,
    /// Storage temperature plus the access EWMA driving auto-tier sweeps.
    tier: Mutex<TierState>,
}

impl NamespaceState {
    /// Stage-1 collection size: `k × rerank_scale` under SQ8 (the extra
    /// survivors feed the exact re-rank stage), plain `k` otherwise.
    fn effective_k(&self, k: usize) -> usize {
        if self.sq8 {
            k.saturating_mul(self.rerank_scale.max(1))
        } else {
            k
        }
    }
}

/// Client-side temperature record of one namespace.
struct TierState {
    temperature: Temperature,
    /// EWMA of per-sweep query arrivals (the auto-tier signal).
    access: AccessEwma,
}

/// One immutable generation of routing state. Queries capture the Arc at
/// admission; the engine swaps the shared Arc on a plan switch.
#[derive(Debug)]
pub struct RoutingEpoch {
    /// Monotonic epoch counter (the build is epoch 0).
    pub epoch: u64,
    /// The partition plan in force.
    pub plan: PartitionPlan,
    /// Cluster → shard mapping in force.
    pub assignment: ShardAssignment,
    /// Dimension ranges of the plan's blocks.
    dim_ranges: Vec<DimRange>,
    /// Clusters owned by each shard.
    shard_clusters: Vec<Vec<u32>>,
}

impl RoutingEpoch {
    fn new(
        epoch: u64,
        plan: PartitionPlan,
        assignment: ShardAssignment,
        dim: usize,
    ) -> Result<Self, CoreError> {
        let dim_ranges = plan.dim_ranges(dim)?;
        let shard_clusters = (0..plan.vec_shards)
            .map(|s| assignment.clusters_of(s))
            .collect();
        Ok(Self {
            epoch,
            plan,
            assignment,
            dim_ranges,
            shard_clusters,
        })
    }
}

/// State shared between caller threads: the send half of the cluster and
/// the cross-session counters.
struct EngineShared {
    cluster: Cluster,
    next_query_id: AtomicU64,
    /// Client-side estimate of outstanding work per machine, driving the
    /// deferred-dimension scheduling of §4.3 "Load Balancing Strategies".
    outstanding: LoadTracker,
}

/// Supervisor bookkeeping of one namespace, serialized under one mutex.
struct SupervisorState {
    /// Probe snapshot at the start of the current observation window.
    window_start: ProbeSnapshot,
    /// EWMA-smoothed probe windows (the supervisor's drift-aware view of
    /// the workload; see [`ReplanConfig::ewma_alpha`](crate::ReplanConfig)).
    ewma: ProbeEwma,
    /// Query count at which the next auto-check fires.
    next_check: u64,
    /// Next epoch number to hand out. Advances on every migration
    /// *attempt*, successful or not: a failed handshake must never reuse
    /// its epoch number, or stale acks/pieces from the aborted attempt
    /// could corrupt the retry.
    next_epoch: u64,
    /// Retired routing epochs still referenced by in-flight queries. Once
    /// only this list holds an Arc (`strong_count == 1`), the epoch's
    /// storage is evicted from the workers.
    retired: Vec<Arc<RoutingEpoch>>,
    /// Cost model with the compute rate recalibrated from observed worker
    /// wall time (`StatsReport::compute_ns`); seeds from the build-time
    /// microbenchmark and EWMA-blends each observation window.
    tuned: CostModel,
}

/// What one supervisor tick decided.
#[derive(Debug, Clone)]
pub enum ReplanOutcome {
    /// The observation window has too few queries to act on.
    InsufficientData,
    /// The incumbent layout survived (no candidate beat it by the
    /// configured hysteresis once migration cost was charged).
    Hold {
        /// Modeled cost of staying on the current layout, ns.
        stay_ns: f64,
        /// Best challenger's modeled cost including amortized migration, ns.
        best_ns: f64,
    },
    /// The engine switched layouts via live migration.
    Switched(MigrationReport),
}

/// Accounting of one executed live migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Epoch the cluster left.
    pub from_epoch: u64,
    /// Epoch now in force.
    pub to_epoch: u64,
    /// Plan before the switch.
    pub from_plan: PartitionPlan,
    /// Plan after the switch.
    pub to_plan: PartitionPlan,
    /// Clusters whose shard changed.
    pub clusters_moved: usize,
    /// Point-to-point transfers that crossed the fabric (self-transfers
    /// install locally and are excluded).
    pub network_pieces: u64,
    /// Modeled payload bytes shipped across the fabric.
    pub modeled_bytes: u64,
    /// Modeled one-time migration time, ns.
    pub migration_ns: f64,
    /// Modeled cost of staying, ns (0 for forced migrations).
    pub stay_ns: f64,
    /// Modeled steady-state cost of the new layout, ns (0 for forced
    /// migrations).
    pub projected_ns: f64,
}

/// Registered sessions, keyed by the base of their reserved query-id range.
#[derive(Default)]
struct SessionTable {
    inner: Mutex<SessionTableState>,
}

#[derive(Default)]
struct SessionTableState {
    /// Set when the router is gone: no result can ever be routed again.
    closed: bool,
    ranges: BTreeMap<u64, SessionEntry>,
}

struct SessionEntry {
    /// One past the last query id of the session's range.
    end: u64,
    tx: Sender<QueryResult>,
}

impl SessionTable {
    /// Registers a session owning `[base, base + count)` and returns its
    /// result channel. Must happen before the session dispatches anything.
    /// On a closed table the sender is dropped immediately, so the session
    /// observes a disconnect instead of waiting out its deadline.
    fn register(&self, base: u64, count: u64) -> Receiver<QueryResult> {
        let (tx, rx) = unbounded();
        let mut inner = self.inner.lock();
        if !inner.closed {
            inner.ranges.insert(
                base,
                SessionEntry {
                    end: base + count,
                    tx,
                },
            );
        }
        rx
    }

    fn unregister(&self, base: u64) {
        self.inner.lock().ranges.remove(&base);
    }

    /// Routes one result to the session owning its query id; results for
    /// departed sessions (timed out, dropped) are discarded.
    fn route(&self, result: QueryResult) {
        let mut inner = self.inner.lock();
        let Some((&base, entry)) = inner.ranges.range(..=result.query_id).next_back() else {
            return;
        };
        if result.query_id >= entry.end {
            return;
        }
        if entry.tx.send(result).is_err() {
            inner.ranges.remove(&base);
        }
    }

    /// Drops every session sender and refuses new registrations: blocked
    /// and future sessions see a disconnect right away. Called by the
    /// router on exit (cluster death or engine shutdown).
    fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        inner.ranges.clear();
    }
}

/// RAII registration of one `search_batch` session.
struct Session<'a> {
    table: &'a SessionTable,
    base: u64,
    rx: Receiver<QueryResult>,
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.table.unregister(self.base);
    }
}

/// How often the router re-checks its stop flag while the cluster is idle.
const ROUTER_TICK: Duration = Duration::from_millis(25);

/// Deadline for a migration's announce → ship → ack handshake. Generous:
/// migrations move whole grid blocks over the modeled fabric while query
/// traffic shares the worker mailboxes. On expiry the epoch is aborted
/// (evicted everywhere) and the incumbent layout stays in force.
const MIGRATION_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(120);

/// Poll granularity of the background compactor thread: the thread sleeps
/// in short slices so shutdown stays responsive even with long intervals.
const COMPACTOR_POLL: Duration = Duration::from_millis(20);

/// EWMA smoothing of per-namespace access rates (the auto-tier signal).
const TIER_EWMA_ALPHA: f64 = 0.5;

/// Smoothed queries-per-sweep at or above which an auto-tiered namespace
/// is (kept) hot.
const TIER_HOT_RATE: f64 = 1.0;

/// Smoothed queries-per-sweep below which an auto-tiered namespace goes
/// cold; between the two thresholds it sits warm.
const TIER_COLD_RATE: f64 = 0.05;

/// Monotonic engine counter keeping the spill directories of multiple
/// engines in one process disjoint.
static ENGINE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// The client-side router loop: drains the cluster's receive path and
/// demultiplexes results to sessions, everything else to the control
/// channel. Exits on the stop flag or once the cluster is gone.
///
/// Receiver-side injected delays (`DelayMode::Sleep` + non-blocking
/// transport) are paid here, serially — the client is modeled as one node,
/// and one NIC drains its transfers one at a time, exactly as the previous
/// single-threaded client did.
fn run_router(
    mut rx: ClientReceiver,
    sessions: Arc<SessionTable>,
    control_tx: Sender<(NodeId, ToClient)>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        match rx.recv_timeout(ROUTER_TICK) {
            Ok((from, payload)) => match ToClient::from_bytes(payload) {
                Ok(ToClient::Result(result)) => sessions.route(result),
                Ok(other) => {
                    let _ = control_tx.send((from, other));
                }
                Err(_) => debug_assert!(false, "malformed client-bound message"),
            },
            Err(ClusterError::Timeout) => continue,
            // Every sending endpoint is gone: nothing can arrive anymore.
            Err(_) => break,
        }
    }
    // Whatever ended the loop, no result can be routed anymore: fail
    // blocked and future sessions fast instead of letting them wait out
    // their deadlines.
    sessions.close();
}

/// The background compactor loop: every `interval`, fold due namespaces'
/// pending deltas and sweep auto-tiered namespaces between temperatures.
fn run_compactor(core: Arc<EngineCore>, interval: Duration, stop: Arc<AtomicBool>) {
    let interval = interval.max(Duration::from_millis(1));
    let mut last = Instant::now();
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(COMPACTOR_POLL.min(interval));
        if stop.load(Ordering::Acquire) {
            break;
        }
        if last.elapsed() < interval {
            continue;
        }
        last = Instant::now();
        core.compactor_tick();
    }
}

/// Per-query dispatch state held by the session loop.
struct QueryState {
    topk: TopK,
    /// Ids already inserted by prewarm (skip on merge to avoid duplicates).
    prewarm_ids: HashSet<u64>,
    /// Shard visits not yet dispatched: `(shard, probed clusters)`.
    pending_visits: Vec<(u32, Vec<u32>)>,
    /// Visits currently in flight.
    in_flight: usize,
    /// Work estimates added to `outstanding`, one entry per in-flight
    /// visit, keyed by the visit's shard so the completing result
    /// discharges exactly the machines it charged.
    charged: Vec<VisitCharge>,
    /// Row of this query in the input batch.
    row: usize,
    /// Namespace the query runs in, captured at admission.
    ns_state: Arc<NamespaceState>,
    /// Routing generation captured at admission: every visit of this query
    /// executes against this layout, even if the engine switches mid-query.
    routing: Arc<RoutingEpoch>,
    /// Ingest watermark captured at admission, stamped on every chunk of
    /// the query so all machines of a shard row scan the identical prefix
    /// of delta rows.
    delta_seq: u64,
}

/// The per-machine load estimates charged for one shard visit.
struct VisitCharge {
    shard: u32,
    per_machine: Vec<(NodeId, f64)>,
}

/// The shared inputs of one batch session's dispatch loop.
struct BatchCtx<'a> {
    state: &'a Arc<NamespaceState>,
    queries: &'a VectorStore,
    opts: &'a SearchOptions,
}

/// Client-side exact vectors: compaction source and SQ8 re-rank store.
/// Upserts append rows and repoint `by_id`; superseded rows linger until
/// the store is rebuilt but are unreachable through the id map.
struct BaseStore {
    store: VectorStore,
    /// External id → newest row of `store`.
    by_id: HashMap<u64, usize>,
}

/// One not-yet-compacted upsert (client-side record of a delta row).
struct PendingDelta {
    id: u64,
    /// Home cluster chosen at upsert time (nearest centroid).
    cluster: u32,
    seq: u64,
}

/// Client-side ingest bookkeeping, serialized under one mutex.
struct IngestState {
    /// Next ingest sequence number to assign (starts at 1; 0 means "no
    /// ingest has ever happened" on the wire).
    next_seq: u64,
    /// Upserts not yet folded into IVF lists, in sequence order.
    pending: Vec<PendingDelta>,
    /// Every live tombstone: id → newest delete sequence. Covers both
    /// user deletes and the supersede-tombstones written by re-upserts.
    /// Cleared by compaction (the recut lists contain no stale copies).
    tombstones: HashMap<u64, u64>,
    /// Ids deleted and not re-upserted since: the authoritative dead-set
    /// filtered out of every result. Subset of `tombstones`.
    deleted: HashMap<u64, u64>,
    /// Member ids per cluster of the currently installed lists; rewritten
    /// by compaction. Mirrors what the workers hold.
    members: Vec<Vec<u64>>,
    /// Every id ever upserted or deleted. Prewarm samples of these ids are
    /// permanently skipped: the prewarm store still holds their build-time
    /// vectors, which may be stale or dead.
    overridden: HashSet<u64>,
}

/// Immutable ingest snapshot read lock-free-ish on the search path.
#[derive(Default)]
struct IngestSnapshot {
    /// Ids deleted and not re-upserted since (id → delete seq).
    deleted: HashMap<u64, u64>,
    /// Clusters with pending delta rows (drives forced shard visits).
    pending_clusters: HashSet<u32>,
    /// Ids whose prewarm samples must be skipped (ever upserted/deleted).
    overridden: HashSet<u64>,
}

/// Accounting of one executed compaction.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// Epoch the compacted lists were installed under (unchanged when the
    /// compaction was a no-op).
    pub epoch: u64,
    /// Delta rows folded into their home IVF lists.
    pub folded_rows: usize,
    /// Tombstoned ids dropped from the lists.
    pub dropped_tombstones: usize,
    /// `true` when nothing was pending and no epoch was published.
    pub noop: bool,
}

/// Build-time parameters of one namespace: the default namespace takes
/// them from the engine config, tenants from a [`NamespaceConfig`].
struct NsParams {
    metric: Metric,
    repr: BlockRepr,
    rerank_scale: usize,
    nlist: usize,
    pruning: bool,
    seed: u64,
    prewarm: usize,
    max_vectors: usize,
    auto_tier: bool,
    plan_override: Option<PartitionPlan>,
    mode: EngineMode,
}

/// Output of [`prepare_namespace`]: the assembled state plus the grid
/// blocks to ship (the caller owns the transport).
struct PreparedNamespace {
    state: NamespaceState,
    /// `(machine, block)` pairs in send order.
    loads: Vec<(usize, LoadBlock)>,
    plan_cost: Option<PlanCost>,
    train: Duration,
    add: Duration,
}

/// Runs the Train / Add / plan-selection / Pre-assign pipeline for one
/// namespace over `base`, producing its state and the grid blocks to ship.
fn prepare_namespace(
    ns: u16,
    config: &HarmonyConfig,
    params: &NsParams,
    base: &VectorStore,
    model: &CostModel,
) -> Result<PreparedNamespace, CoreError> {
    if base.is_empty() {
        return Err(CoreError::Config("base vectors must be non-empty".into()));
    }
    let dim = base.dim();
    let metric = params.metric;
    let nlist = params.nlist.min(base.len());

    // --- Train ---------------------------------------------------
    let t0 = Instant::now();
    let km = KMeans::train(
        base,
        &KMeansConfig {
            k: nlist,
            seed: params.seed,
            ..KMeansConfig::default()
        },
    )?;
    let train = t0.elapsed();

    // --- Add -----------------------------------------------------
    let t0 = Instant::now();
    let assignments = km.assign(base);
    let mut list_rows: Vec<Vec<usize>> = vec![Vec::new(); nlist];
    for (row, &c) in assignments.iter().enumerate() {
        list_rows[c as usize].push(row);
    }
    let list_sizes: Vec<usize> = list_rows.iter().map(Vec::len).collect();
    let add = t0.elapsed();

    // --- Plan selection -------------------------------------------
    let profile = WorkloadProfile::uniform(list_sizes.clone(), dim, 1_000, 8);
    let survival = if params.pruning { 0.55 } else { 1.0 };
    // One calibration per engine: tenants reuse the measured rates and
    // only adjust the survival their pruning setting implies.
    let scoring = model.clone().with_pruning_survival(survival);
    let (plan, plan_cost) = match (params.plan_override, params.mode) {
        (Some(plan), _) => (plan, None),
        (None, EngineMode::HarmonyVector) => (PartitionPlan::pure_vector(config.n_machines), None),
        (None, EngineMode::HarmonyDimension) => {
            let blocks = config.n_machines.min(dim);
            (PartitionPlan::pure_dimension(blocks), None)
        }
        (None, EngineMode::Harmony) => {
            let (plan, cost) = scoring.choose_plan(config.n_machines, &profile);
            (plan, Some(cost))
        }
    };
    if plan.dim_blocks > dim {
        return Err(CoreError::Config(format!(
            "plan {} needs more dimension blocks than dimensions ({dim})",
            plan.label()
        )));
    }

    // --- Pre-assign ------------------------------------------------
    let weights: Vec<u64> = list_sizes.iter().map(|&s| s as u64 + 1).collect();
    let assignment = if config.balanced_load {
        ShardAssignment::balanced(&weights, plan.vec_shards)
    } else {
        ShardAssignment::round_robin(&weights, plan.vec_shards)
    };
    let routing = RoutingEpoch::new(0, plan, assignment, dim)?;

    let is_ip = !matches!(metric, Metric::L2);
    let sq8 = matches!(params.repr, BlockRepr::Sq8);
    let mut loads = Vec::new();
    for (s, clusters) in routing.shard_clusters.iter().enumerate() {
        for (b, range) in routing.dim_ranges.iter().enumerate() {
            let machine = plan.machine_of(s, b);
            let lists: Vec<ClusterBlock> = clusters
                .iter()
                .map(|&c| {
                    let rows = &list_rows[c as usize];
                    let mut flat = Vec::with_capacity(rows.len() * range.len());
                    let mut ids = Vec::with_capacity(rows.len());
                    let mut block_norms_sq = Vec::new();
                    let mut total_norms_sq = Vec::new();
                    for &row in rows {
                        ids.push(base.id(row));
                        let slice = base.row_range(row, *range);
                        flat.extend_from_slice(slice);
                        if is_ip {
                            block_norms_sq.push(ip(slice, slice));
                            let full = base.row(row);
                            total_norms_sq.push(ip(full, full));
                        }
                    }
                    // Under SQ8 only codes travel and reside; norm
                    // tables stay exact (they are computed from the
                    // original slices above, before quantization).
                    let segs = if sq8 && !flat.is_empty() {
                        let seg = Sq8Segment::quantize(&flat, range.len(), range.start as u64);
                        flat = Vec::new();
                        vec![seg]
                    } else {
                        Vec::new()
                    };
                    ClusterBlock {
                        cluster: c,
                        ids,
                        flat,
                        segs,
                        block_norms_sq,
                        total_norms_sq,
                    }
                })
                .collect();
            let load = LoadBlock {
                ns,
                epoch: 0,
                shard: s as u32,
                dim_block: b as u32,
                dim_start: range.start as u64,
                dim_end: range.end as u64,
                total_dim_blocks: plan.dim_blocks as u32,
                metric: metric_tag::encode(metric),
                pruning: params.pruning,
                repr: repr_tag::encode(params.repr),
                lists,
            };
            loads.push((machine, load));
        }
    }

    // --- Prewarm samples -------------------------------------------
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut prewarm_store = VectorStore::new(dim);
    let mut prewarm_rows: Vec<Vec<usize>> = vec![Vec::new(); nlist];
    if params.prewarm > 0 {
        for (c, rows) in list_rows.iter().enumerate() {
            let take = params.prewarm.min(rows.len());
            for i in 0..take {
                // Deterministic stratified pick.
                let pick = rows[(rng.random_range(0..rows.len().max(1)) + i) % rows.len()];
                prewarm_rows[c].push(prewarm_store.len());
                prewarm_store
                    .push(base.id(pick), base.row(pick))
                    .map_err(CoreError::Index)?;
            }
        }
    }

    // Exact client-side copy of the base: compaction recuts IVF lists
    // from it, and under SQ8 it doubles as the re-rank store.
    let by_id = (0..base.len()).map(|r| (base.id(r), r)).collect();
    let base_store = BaseStore {
        store: base.clone(),
        by_id,
    };
    let members: Vec<Vec<u64>> = list_rows
        .iter()
        .map(|rows| rows.iter().map(|&r| base.id(r)).collect())
        .collect();

    let state = NamespaceState {
        ns,
        metric,
        dim,
        sq8,
        pruning: params.pruning,
        rerank_scale: params.rerank_scale,
        max_vectors: params.max_vectors,
        auto_tier: params.auto_tier,
        centroids: km.centroids,
        list_sizes: RwLock::new(list_sizes),
        prewarm_store,
        prewarm_rows,
        base: RwLock::new(base_store),
        ingest: Mutex::new(IngestState {
            next_seq: 1,
            pending: Vec::new(),
            tombstones: HashMap::new(),
            deleted: HashMap::new(),
            members,
            overridden: HashSet::new(),
        }),
        published_seq: AtomicU64::new(0),
        ingest_snap: RwLock::new(Arc::new(IngestSnapshot::default())),
        routing: RwLock::new(Arc::new(routing)),
        probes: ProbeTracker::new(nlist),
        supervisor: Mutex::new(SupervisorState {
            window_start: ProbeSnapshot::default(),
            ewma: ProbeEwma::new(nlist, config.replan.ewma_alpha),
            next_check: config.replan.check_every.max(1),
            next_epoch: 1,
            retired: Vec::new(),
            tuned: scoring,
        }),
        tier: Mutex::new(TierState {
            temperature: Temperature::Hot,
            access: AccessEwma::new(TIER_EWMA_ALPHA),
        }),
    };
    Ok(PreparedNamespace {
        state,
        loads,
        plan_cost,
        train,
        add,
    })
}

impl HarmonyEngine {
    /// Builds the distributed index over `base` and starts the workers.
    ///
    /// The three timed stages match Fig. 10: **Train** (k-means), **Add**
    /// (list assignment), **Pre-assign** (shipping grid blocks). The
    /// resulting deployment hosts `base` as namespace 0; further tenants
    /// attach through [`EngineCore::create_namespace`].
    ///
    /// # Errors
    /// Configuration, clustering, or transport failures.
    pub fn build(config: HarmonyConfig, base: &VectorStore) -> Result<Self, CoreError> {
        config.validate()?;
        let survival = if config.pruning { 0.55 } else { 1.0 };
        let model = CostModel::new(config.net, config.alpha)
            .with_pruning_survival(survival)
            .calibrate();
        let params = NsParams {
            metric: config.metric,
            repr: config.repr,
            rerank_scale: config.rerank_scale,
            nlist: config.nlist,
            pruning: config.pruning,
            seed: config.seed,
            prewarm: config.prewarm,
            max_vectors: 0,
            auto_tier: false,
            plan_override: config.plan_override,
            mode: config.mode,
        };
        let PreparedNamespace {
            state,
            loads,
            plan_cost,
            train,
            add,
        } = prepare_namespace(0, &config, &params, base, &model)?;
        let plan = state.routing.read().plan;

        let comm_mode = if config.pipeline {
            CommMode::NonBlocking
        } else {
            CommMode::Blocking
        };
        // Every engine gets its own spill subtree so concurrent engines
        // (tests, benches) never collide on block file names.
        let engine_seq = ENGINE_SEQ.fetch_add(1, Ordering::Relaxed);
        let spill_root = config
            .spill_dir
            .clone()
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("harmony-engine-{}", std::process::id()))
            })
            .join(format!("e{engine_seq}"));
        let cache_budget = config.cache_budget_bytes;
        let mut cluster = Cluster::try_spawn(
            ClusterConfig {
                workers: config.n_machines,
                net: config.net,
                comm_mode,
                delay: config.delay,
                // All nodes charge compute at the measured scan rates.
                rates: harmony_cluster::ComputeRates::default()
                    .with_kernel_rate(model.comp_ns_per_point_dim)
                    .with_candidate_rate(model.comp_ns_per_candidate),
                drop_every_nth: 0,
                transport: config.transport.clone(),
            },
            {
                let spill_root = spill_root.clone();
                move |m| HarmonyWorker::with_tiering(spill_root.join(format!("w{m}")), cache_budget)
            },
        )
        .map_err(CoreError::Cluster)?;

        // --- Pre-assign: ship namespace 0's grid blocks ----------------
        let t0 = Instant::now();
        let mut expected_acks = 0usize;
        for (machine, load) in loads {
            cluster.send(machine, ToWorker::Load(load).to_bytes())?;
            expected_acks += 1;
        }
        // Collect acknowledgments (the receive path is still attached to
        // the building thread here).
        let deadline = Duration::from_secs(120);
        for _ in 0..expected_acks {
            let (_, payload) = cluster.recv_timeout(deadline)?;
            match ToClient::from_bytes(payload)? {
                ToClient::LoadAck { .. } => {}
                other => {
                    return Err(CoreError::Protocol(format!(
                        "expected LoadAck during pre-assign, got {other:?}"
                    )))
                }
            }
        }
        let bytes_shipped = cluster.snapshot().client.bytes_tx;
        let preassign = t0.elapsed();

        // Search metrics must not include the build traffic.
        cluster.reset_metrics();

        // Hand the receive path to the session router; from here on the
        // cluster is send-only for every caller thread.
        let receiver = cluster.take_client_receiver()?;
        let shared = Arc::new(EngineShared {
            cluster,
            next_query_id: AtomicU64::new(0),
            outstanding: LoadTracker::new(config.n_machines),
        });
        let sessions = Arc::new(SessionTable::default());
        let (control_tx, control_rx) = unbounded();
        let router_stop = Arc::new(AtomicBool::new(false));
        let router = std::thread::Builder::new()
            .name("harmony-client-router".into())
            .spawn({
                let sessions = Arc::clone(&sessions);
                let stop = Arc::clone(&router_stop);
                move || run_router(receiver, sessions, control_tx, stop)
            })
            .map_err(|e| CoreError::Runtime(format!("spawn client router thread: {e}")))?;

        let ns0 = Arc::new(state);
        let mut registry = BTreeMap::new();
        registry.insert(0u16, Arc::clone(&ns0));
        let compact_interval = config.compact_interval_ms;
        let core = Arc::new(EngineCore {
            config,
            model,
            namespaces: RwLock::new(registry),
            next_ns: Mutex::new(1),
            ns0,
            build_stats: BuildStats {
                train,
                add,
                preassign,
                plan,
                plan_cost,
                bytes_shipped,
            },
            shared,
            sessions,
            control: Mutex::new(control_rx),
        });
        let compactor_stop = Arc::new(AtomicBool::new(false));
        let compactor = if compact_interval > 0 {
            let handle = std::thread::Builder::new()
                .name("harmony-compactor".into())
                .spawn({
                    let core = Arc::clone(&core);
                    let stop = Arc::clone(&compactor_stop);
                    let interval = Duration::from_millis(compact_interval);
                    move || run_compactor(core, interval, stop)
                })
                .map_err(|e| CoreError::Runtime(format!("spawn compactor thread: {e}")))?;
            Some(handle)
        } else {
            None
        };
        Ok(Self {
            core,
            router_stop,
            router: Some(router),
            compactor_stop,
            compactor,
        })
    }

    /// Signals and joins the background threads. Idempotent.
    fn stop_threads(&mut self) {
        self.router_stop.store(true, Ordering::Release);
        self.compactor_stop.store(true, Ordering::Release);
        // The compactor holds an Arc of the core: it must be gone before
        // shutdown can unwrap the Arc chain.
        if let Some(handle) = self.compactor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.router.take() {
            let _ = handle.join();
        }
    }

    /// Stops the background threads and all workers, releasing the cluster.
    ///
    /// # Errors
    /// Reports the first worker that panicked, if any.
    pub fn shutdown(mut self) -> Result<(), CoreError> {
        self.stop_threads();
        let core = Arc::clone(&self.core);
        drop(self);
        match Arc::try_unwrap(core) {
            Ok(core) => match Arc::try_unwrap(core.shared) {
                Ok(mut shared) => {
                    shared.cluster.shutdown()?;
                    Ok(())
                }
                // Unreachable in practice (the router holds no engine
                // reference); the last Arc drop still stops the cluster.
                Err(_) => Ok(()),
            },
            Err(_) => Ok(()),
        }
    }
}

impl Drop for HarmonyEngine {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

impl EngineCore {
    /// The engine configuration.
    pub fn config(&self) -> &HarmonyConfig {
        &self.config
    }

    /// The partition plan in force (the default namespace's current
    /// routing epoch).
    pub fn plan(&self) -> PartitionPlan {
        self.ns0.routing.read().plan
    }

    /// The current routing epoch of the default namespace (0 = the
    /// initial build; bumps on every live migration or compaction).
    pub fn current_epoch(&self) -> u64 {
        self.ns0.routing.read().epoch
    }

    /// The cluster → shard assignment in force (default namespace).
    pub fn assignment(&self) -> ShardAssignment {
        self.ns0.routing.read().assignment.clone()
    }

    /// Build-stage timings (Fig. 10).
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Inverted-list sizes (cluster load profile; reflects the last
    /// compaction). Default namespace.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.ns0.list_sizes.read().clone()
    }

    /// Upserted rows not yet folded into IVF lists (default namespace).
    pub fn pending_deltas(&self) -> usize {
        self.ns0.ingest.lock().pending.len()
    }

    /// Ids currently soft-deleted in the default namespace (tombstoned,
    /// awaiting compaction).
    pub fn tombstone_count(&self) -> usize {
        self.ns0.ingest.lock().deleted.len()
    }

    /// Trained centroids of the default namespace (client-side copy).
    pub fn centroids(&self) -> &VectorStore {
        &self.ns0.centroids
    }

    /// Clusters owned by each vector shard (default namespace, current
    /// epoch).
    pub fn shard_clusters(&self) -> Vec<Vec<u32>> {
        self.ns0.routing.read().shard_clusters.clone()
    }

    /// Observed per-cluster probe counts since build (the supervisor's
    /// workload signal; default namespace).
    pub fn probe_counts(&self) -> Vec<u64> {
        self.ns0.probes.snapshot().counts
    }

    /// The current per-machine outstanding-work estimates (diagnostics).
    ///
    /// Returns to ~0 whenever no search session has visits in flight — the
    /// invariant behind §4.3's deferred-dimension scheduling.
    pub fn outstanding_load(&self) -> Vec<f64> {
        self.shared.outstanding.snapshot()
    }

    // --- Namespaces ----------------------------------------------------

    /// Resolves a namespace id to its state.
    fn namespace(&self, ns: u16) -> Result<Arc<NamespaceState>, CoreError> {
        self.namespaces
            .read()
            .get(&ns)
            .cloned()
            .ok_or_else(|| CoreError::Config(format!("unknown namespace {ns}")))
    }

    /// Registered namespace ids, ascending (0 is always present).
    pub fn namespace_ids(&self) -> Vec<u16> {
        self.namespaces.read().keys().copied().collect()
    }

    /// Upserted rows not yet folded into IVF lists, for one namespace.
    ///
    /// # Errors
    /// [`CoreError::Config`] for an unknown namespace.
    pub fn pending_deltas_ns(&self, ns: u16) -> Result<usize, CoreError> {
        Ok(self.namespace(ns)?.ingest.lock().pending.len())
    }

    /// Creates a tenant namespace over `base`: trains its own clustering,
    /// picks its own plan with the engine's calibrated cost model, ships
    /// its grid blocks to the shared workers, and registers it hot.
    /// Returns the new namespace id.
    ///
    /// # Errors
    /// Invalid tenant configuration, an over-quota base, clustering or
    /// transport failures. A failed install evicts whatever blocks already
    /// landed; the id is burned, never reused.
    pub fn create_namespace(
        &self,
        cfg: &NamespaceConfig,
        base: &VectorStore,
    ) -> Result<u16, CoreError> {
        cfg.validate(self.config.n_machines)?;
        if base.is_empty() {
            return Err(CoreError::Config(
                "namespace base vectors must be non-empty".into(),
            ));
        }
        if cfg.max_vectors > 0 && base.len() > cfg.max_vectors {
            return Err(CoreError::Config(format!(
                "namespace base has {} vectors, exceeding the quota of {}",
                base.len(),
                cfg.max_vectors
            )));
        }
        let ns = {
            let mut next = self.next_ns.lock();
            let ns = *next;
            *next = next.checked_add(1).ok_or_else(|| {
                CoreError::Config("namespace ids exhausted (u16 overflow)".into())
            })?;
            ns
        };
        let params = NsParams {
            metric: cfg.metric,
            repr: cfg.repr,
            rerank_scale: cfg.rerank_scale,
            nlist: cfg.nlist,
            pruning: cfg.pruning,
            seed: cfg.seed,
            prewarm: cfg.prewarm,
            max_vectors: cfg.max_vectors,
            auto_tier: cfg.auto_tier,
            plan_override: cfg.plan_override,
            mode: EngineMode::Harmony,
        };
        let PreparedNamespace { state, loads, .. } =
            prepare_namespace(ns, &self.config, &params, base, &self.model)?;
        if let Err(e) = self.install_loads(ns, loads) {
            // Best-effort cleanup of whatever blocks already landed.
            self.abort_epoch(ns, 0);
            return Err(e);
        }
        self.namespaces.write().insert(ns, Arc::new(state));
        Ok(ns)
    }

    /// Ships prepared grid blocks over the running cluster and awaits one
    /// ack per block on the control channel (unlike the build path, the
    /// router already owns the receive side here).
    fn install_loads(&self, ns: u16, loads: Vec<(usize, LoadBlock)>) -> Result<(), CoreError> {
        let expected = loads.len();
        let control = self.control.lock();
        for (machine, load) in loads {
            self.shared
                .cluster
                .send(machine, ToWorker::Load(load).to_bytes())?;
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut acked: HashSet<(u32, u32)> = HashSet::new();
        while acked.len() < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::Cluster(ClusterError::Timeout));
            }
            match control.recv_timeout(remaining) {
                Ok((
                    _,
                    ToClient::LoadAck {
                        ns: n,
                        shard,
                        dim_block,
                    },
                )) if n == ns => {
                    acked.insert((shard, dim_block));
                }
                // Unrelated control traffic (stats, stale acks of other
                // namespaces) is skipped, not an error.
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::Cluster(ClusterError::Timeout))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Cluster(ClusterError::ShutDown))
                }
            }
        }
        Ok(())
    }

    /// Moves a namespace to a storage temperature on every worker: hot
    /// namespaces are fully RAM-resident, warm/cold namespaces spill their
    /// blocks to disk and fault them back through the worker block cache
    /// on demand. Blocks round-trip bit-identically, so results are
    /// unaffected. Returns once every worker acknowledged the transition.
    ///
    /// # Errors
    /// Unknown namespace, transport failures, or an ack timeout.
    pub fn set_namespace_tier(&self, ns: u16, temperature: Temperature) -> Result<(), CoreError> {
        let state = self.namespace(ns)?;
        self.set_tier_state(&state, temperature)
    }

    /// The namespace's current storage temperature.
    ///
    /// # Errors
    /// [`CoreError::Config`] for an unknown namespace.
    pub fn namespace_tier(&self, ns: u16) -> Result<Temperature, CoreError> {
        Ok(self.namespace(ns)?.tier.lock().temperature)
    }

    fn set_tier_state(
        &self,
        state: &NamespaceState,
        temperature: Temperature,
    ) -> Result<(), CoreError> {
        let machines = self.config.n_machines;
        let control = self.control.lock();
        for m in 0..machines {
            let msg = SetTier {
                ns: state.ns,
                temperature: temperature.encode(),
            };
            self.shared
                .cluster
                .send(m, ToWorker::SetTier(msg).to_bytes())?;
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut ready = vec![false; machines];
        let mut count = 0usize;
        while count < machines {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::Cluster(ClusterError::Timeout));
            }
            match control.recv_timeout(remaining) {
                Ok((from, ToClient::TierAck { ns })) if ns == state.ns => {
                    if from < machines && !std::mem::replace(&mut ready[from], true) {
                        count += 1;
                    }
                }
                // Stale control traffic of other operations is skipped.
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::Cluster(ClusterError::Timeout))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Cluster(ClusterError::ShutDown))
                }
            }
        }
        drop(control);
        state.tier.lock().temperature = temperature;
        Ok(())
    }

    /// One pass of the background compactor: fold every namespace whose
    /// pending delta count crossed `compact_after`, then sweep auto-tiered
    /// namespaces between temperatures by their access-rate EWMA.
    fn compactor_tick(&self) {
        let states: Vec<Arc<NamespaceState>> = self.namespaces.read().values().cloned().collect();
        let after = self.config.compact_after;
        for state in states {
            if after > 0 && state.ingest.lock().pending.len() >= after {
                // Best-effort: a failed handshake leaves the incumbent
                // epoch in force; the next tick retries.
                let _ = self.compact_state(&state);
            }
            if !state.auto_tier {
                continue;
            }
            let (current, rate) = {
                let mut tier = state.tier.lock();
                tier.access.decay();
                (tier.temperature, tier.access.rate())
            };
            let want = if rate >= TIER_HOT_RATE {
                Temperature::Hot
            } else if rate >= TIER_COLD_RATE {
                Temperature::Warm
            } else {
                Temperature::Cold
            };
            if want != current {
                let _ = self.set_tier_state(&state, want);
            }
        }
    }

    // --- Search --------------------------------------------------------

    /// Top-`k` search for one query in the default namespace.
    ///
    /// # Errors
    /// Dimension mismatches or distributed-collection failures.
    pub fn search(&self, query: &[f32], opts: &SearchOptions) -> Result<SingleResult, CoreError> {
        self.search_ns(0, query, opts)
    }

    /// Top-`k` search for one query in namespace `ns`.
    ///
    /// # Errors
    /// Unknown namespace, dimension mismatches or distributed-collection
    /// failures.
    pub fn search_ns(
        &self,
        ns: u16,
        query: &[f32],
        opts: &SearchOptions,
    ) -> Result<SingleResult, CoreError> {
        let state = self.namespace(ns)?;
        let mut store = VectorStore::new(state.dim);
        store.push(0, query).map_err(CoreError::Index)?;
        let batch = self.search_batch_ns(ns, &store, opts)?;
        Ok(SingleResult {
            neighbors: batch.results.into_iter().next().unwrap_or_default(),
        })
    }

    /// Top-`k` search for a batch of queries with pipelined dispatch, in
    /// the default namespace.
    ///
    /// Safe to call from multiple threads at once: each call runs as its
    /// own session over the shared workers (see the [module docs](self)).
    /// `opts.timeout_ms` is a *batch deadline*: every receive waits only
    /// for the time remaining until it, so a stalled batch fails after one
    /// timeout total, not one per query.
    ///
    /// # Errors
    /// Dimension mismatches or distributed-collection failures.
    pub fn search_batch(
        &self,
        queries: &VectorStore,
        opts: &SearchOptions,
    ) -> Result<BatchResult, CoreError> {
        self.search_batch_ns(0, queries, opts)
    }

    /// Top-`k` batch search in namespace `ns` (see
    /// [`EngineCore::search_batch`]).
    ///
    /// # Errors
    /// Unknown namespace, dimension mismatches or distributed-collection
    /// failures.
    pub fn search_batch_ns(
        &self,
        ns: u16,
        queries: &VectorStore,
        opts: &SearchOptions,
    ) -> Result<BatchResult, CoreError> {
        let state = self.namespace(ns)?;
        if queries.dim() != state.dim {
            return Err(CoreError::Index(
                harmony_index::IndexError::DimensionMismatch {
                    expected: state.dim,
                    actual: queries.dim(),
                },
            ));
        }
        let comm_mode = self.shared.cluster.config().comm_mode;
        let t0 = Instant::now();

        let n = queries.len();
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let start = self.shared.cluster.snapshot();
        if n == 0 {
            return Ok(BatchResult {
                results,
                wall: t0.elapsed(),
                snapshot: start.delta(&start),
                comm_mode,
            });
        }
        // Feed the auto-tier signal: this namespace is being queried.
        state.tier.lock().access.record(n as u64);

        // One deadline for the whole batch: every receive below gets only
        // the remaining budget, never a fresh full timeout.
        let deadline = Instant::now() + Duration::from_millis(opts.timeout_ms.max(1));
        let base = self
            .shared
            .next_query_id
            .fetch_add(n as u64, Ordering::Relaxed);
        let session = Session {
            table: &self.sessions,
            base,
            rx: self.sessions.register(base, n as u64),
        };

        let mut active: HashMap<u64, QueryState> = HashMap::new();
        let ctx = BatchCtx {
            state: &state,
            queries,
            opts,
        };
        let outcome = self.drive_batch(&ctx, &session, deadline, &mut results, &mut active);
        if outcome.is_err() {
            // Queries abandoned mid-flight must not leave their load
            // estimates charged forever.
            for qs in active.values() {
                self.discharge_state(qs);
            }
        }
        outcome?;

        let wall = t0.elapsed();
        // Metrics are attributed by window delta; with overlapping sessions
        // the window includes their traffic too (shared-cluster view).
        let snapshot = self.shared.cluster.snapshot().delta(&start);

        // Traffic-driven supervision, *after* the batch's metrics capture
        // so a migration's one-time cost is not billed to this batch's
        // window: evict any drained retired epochs, then run the
        // replanning tick if this batch crossed the check threshold.
        self.maybe_gc_retired(&state);
        self.maybe_auto_replan(&state);

        Ok(BatchResult {
            results,
            wall,
            snapshot,
            comm_mode,
        })
    }

    /// The admission/collection loop of one session.
    fn drive_batch(
        &self,
        ctx: &BatchCtx<'_>,
        session: &Session<'_>,
        deadline: Instant,
        results: &mut [Vec<Neighbor>],
        active: &mut HashMap<u64, QueryState>,
    ) -> Result<(), CoreError> {
        let n = ctx.queries.len();
        let mut next_row = 0usize;
        let mut completed = 0usize;

        while completed < n {
            // Admit new queries up to the session's in-flight window. The
            // batch deadline covers dispatch too: blocking transports can
            // stall sends long enough to eat the whole budget.
            while next_row < n && active.len() < self.config.max_inflight {
                if deadline.saturating_duration_since(Instant::now()).is_zero() {
                    return Err(CoreError::Cluster(ClusterError::Timeout));
                }
                let row = next_row;
                next_row += 1;
                let qid = session.base + row as u64;
                match self.admit_query(ctx.state, qid, ctx.queries.row(row), row, ctx.opts)? {
                    Some(state) => {
                        active.insert(qid, state);
                    }
                    None => {
                        // Query resolved entirely from prewarm (no probes hit
                        // populated shards) — rare but possible.
                        completed += 1;
                    }
                }
            }
            if completed >= n {
                break;
            }

            // Collect one routed result within the remaining batch budget.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::Cluster(ClusterError::Timeout));
            }
            let result = match session.rx.recv_timeout(remaining) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::Cluster(ClusterError::Timeout))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Cluster(ClusterError::ShutDown))
                }
            };
            let Some(state) = active.get_mut(&result.query_id) else {
                continue; // stale result for an already-finished query
            };
            if state.in_flight == 0 {
                continue; // defensive: duplicate result for this visit
            }

            // Merge candidates (skipping prewarm duplicates).
            for (&id, &score) in result.ids.iter().zip(&result.scores) {
                if !state.prewarm_ids.contains(&id) {
                    state.topk.push(id, score);
                }
            }
            state.in_flight -= 1;

            // Discharge exactly the completing visit's load estimates,
            // matched by the shard that answered.
            if let Some(pos) = state.charged.iter().position(|c| c.shard == result.shard) {
                let charge = state.charged.swap_remove(pos);
                self.discharge(&charge);
            }

            // Stage the next visit (pipeline mode) or finish.
            if state.in_flight == 0 && !state.pending_visits.is_empty() {
                let qid = result.query_id;
                // Presence was proven by the `get_mut` above; a defensive
                // skip beats a panic on the router thread.
                let Some(mut state) = active.remove(&qid) else {
                    continue;
                };
                if let Err(e) =
                    self.dispatch_next(qid, ctx.queries.row(state.row), ctx.opts, &mut state)
                {
                    // The state is outside `active` here: discharge its
                    // load estimates before surfacing the error.
                    self.discharge_state(&state);
                    return Err(e);
                }
                active.insert(qid, state);
            } else if state.in_flight == 0 {
                let Some(state) = active.remove(&result.query_id) else {
                    continue;
                };
                let row = state.row;
                results[row] =
                    self.finalize_results(ctx.state, ctx.queries.row(row), state.topk, ctx.opts.k);
                completed += 1;
            }
        }
        Ok(())
    }

    /// Finishes one query. Deleted ids are filtered against the current
    /// dead-set first — the worker-side tombstones are best-effort, this
    /// filter is the guarantee. Under SQ8 every surviving stage-1 candidate
    /// is then re-scored exactly against the retained base copy and the
    /// list is trimmed to `k` (prewarm entries re-score idempotently —
    /// they were exact already). Under f32 the heap is already exact.
    fn finalize_results(
        &self,
        state: &NamespaceState,
        query: &[f32],
        topk: TopK,
        k: usize,
    ) -> Vec<Neighbor> {
        let snap = Arc::clone(&state.ingest_snap.read());
        if !state.sq8 {
            let sorted = topk.into_sorted();
            if snap.deleted.is_empty() {
                return sorted;
            }
            return sorted
                .into_iter()
                .filter(|n| !snap.deleted.contains_key(&n.id))
                .collect();
        }
        let survivors = topk.into_sorted();
        let base = state.base.read();
        let mut exact = TopK::new(k);
        let mut reranked = 0usize;
        for n in &survivors {
            if snap.deleted.contains_key(&n.id) {
                continue;
            }
            let score = match base.by_id.get(&n.id) {
                Some(&row) => state.metric.score(query, base.store.row(row)),
                // Unknown id (defensive): keep the stage-1 score.
                None => n.score,
            };
            exact.push(n.id, score);
            reranked += 1;
        }
        // The re-rank is real client-side compute: bill it at the modeled
        // scan rates like the centroid and prewarm stages.
        self.shared
            .cluster
            .charge_client_compute((reranked * state.dim) as u64, reranked as u64);
        exact.into_sorted()
    }

    /// Subtracts one visit's per-machine estimates from the shared tracker.
    fn discharge(&self, charge: &VisitCharge) {
        for &(machine, amount) in &charge.per_machine {
            self.shared.outstanding.sub(machine, amount);
        }
    }

    /// Discharges every remaining visit charge of an abandoned query.
    fn discharge_state(&self, state: &QueryState) {
        for charge in &state.charged {
            self.discharge(charge);
        }
    }

    /// Sets up a query: probes, prewarm, visit list; dispatches its first
    /// stage(s). Returns `None` when the query has nothing to visit.
    fn admit_query(
        &self,
        ns_state: &Arc<NamespaceState>,
        qid: u64,
        query: &[f32],
        row: usize,
        opts: &SearchOptions,
    ) -> Result<Option<QueryState>, CoreError> {
        // Capture the routing generation for this query's whole lifetime:
        // a concurrent plan switch must never split one query across
        // layouts.
        let routing = Arc::clone(&ns_state.routing.read());
        // Ingest watermark and snapshot for this query: rows with
        // `seq < delta_seq` are visible, the dead-set is filtered out.
        let delta_seq = ns_state.published_seq.load(Ordering::Acquire);
        let snap = Arc::clone(&ns_state.ingest_snap.read());
        let probes = nearest_centroids(query, &ns_state.centroids, opts.nprobe);
        // Feed the observed-workload counters driving the plan supervisor.
        ns_state.probes.record(&probes, opts.k);

        // Prewarm (Algorithm 1 lines 1-5): seed the heap from client-side
        // samples of the probed lists. The budget is capped so prewarming
        // stays a cheap threshold seed — nearest probes sampled first.
        // Under SQ8 the heap over-collects for the exact re-rank stage.
        let mut topk = TopK::new(ns_state.effective_k(opts.k));
        let mut prewarm_ids = HashSet::new();
        let budget = (4 * opts.k).max(16);
        'prewarm: for &c in &probes {
            for &sample_row in &ns_state.prewarm_rows[c as usize] {
                if prewarm_ids.len() >= budget {
                    break 'prewarm;
                }
                let id = ns_state.prewarm_store.id(sample_row);
                // Prewarm samples are build-time copies: skip any id that
                // was upserted or deleted since (the sample is stale).
                if snap.overridden.contains(&id) {
                    continue;
                }
                let score = ns_state
                    .metric
                    .score(query, ns_state.prewarm_store.row(sample_row));
                if prewarm_ids.insert(id) {
                    topk.push(id, score);
                }
            }
        }
        // Client-side computation (centroid scan + prewarm) is charged with
        // the same modeled rates as any node: the client is a real machine.
        let centroid_pd = (ns_state.centroids.len() * ns_state.dim) as u64;
        let prewarm_pd = (prewarm_ids.len() * ns_state.dim) as u64;
        self.shared.cluster.charge_client_compute(
            centroid_pd + prewarm_pd,
            (ns_state.centroids.len() + prewarm_ids.len()) as u64,
        );

        // Group probes by shard, preserving probe (= proximity) order.
        let mut visit_order: Vec<u32> = Vec::new();
        let mut by_shard: HashMap<u32, Vec<u32>> = HashMap::new();
        for &c in &probes {
            let s = routing.assignment.cluster_to_shard[c as usize];
            by_shard
                .entry(s)
                .or_insert_with(|| {
                    visit_order.push(s);
                    Vec::new()
                })
                .push(c);
        }
        // Fresh-data recall is 1.0 by construction: every shard holding
        // pending delta rows gets a (possibly cluster-less) forced visit,
        // and its workers scan the full delta prefix below the watermark.
        if delta_seq > 0 {
            let mut delta_shards: Vec<u32> = snap
                .pending_clusters
                .iter()
                .filter_map(|&c| routing.assignment.cluster_to_shard.get(c as usize).copied())
                .collect();
            delta_shards.sort_unstable();
            delta_shards.dedup();
            for s in delta_shards {
                by_shard.entry(s).or_insert_with(|| {
                    visit_order.push(s);
                    Vec::new()
                });
            }
        }
        let mut pending_visits: Vec<(u32, Vec<u32>)> = visit_order
            .into_iter()
            .map(|s| (s, by_shard.remove(&s).unwrap_or_default()))
            .collect();
        // Dispatch order: nearest shard first; reverse so pop() yields it.
        pending_visits.reverse();

        if pending_visits.is_empty() {
            return Ok(None);
        }

        let mut state = QueryState {
            topk,
            prewarm_ids,
            pending_visits,
            in_flight: 0,
            charged: Vec::new(),
            row,
            ns_state: Arc::clone(ns_state),
            routing,
            delta_seq,
        };
        if let Err(e) = self.dispatch_next(qid, query, opts, &mut state) {
            // The query never reaches `active`: release whatever this
            // partial dispatch already charged.
            self.discharge_state(&state);
            return Err(e);
        }
        Ok(Some(state))
    }

    /// Dispatches the next shard visit (pipeline mode) or every remaining
    /// visit at once (non-pipelined mode).
    fn dispatch_next(
        &self,
        qid: u64,
        query: &[f32],
        opts: &SearchOptions,
        state: &mut QueryState,
    ) -> Result<(), CoreError> {
        let rounds = if self.config.pipeline {
            1
        } else {
            state.pending_visits.len()
        };
        for _ in 0..rounds {
            let Some((shard, clusters)) = state.pending_visits.pop() else {
                break;
            };
            self.dispatch_visit(qid, query, opts, state, shard, clusters)?;
        }
        Ok(())
    }

    /// Sends the dimension-sliced chunks of one `(query, shard)` pipeline.
    fn dispatch_visit(
        &self,
        qid: u64,
        query: &[f32],
        opts: &SearchOptions,
        state: &mut QueryState,
        shard: u32,
        clusters: Vec<u32>,
    ) -> Result<(), CoreError> {
        let ns = Arc::clone(&state.ns_state);
        let routing = Arc::clone(&state.routing);
        let plan = routing.plan;
        let threshold = state.topk.threshold();
        let is_ip = !matches!(ns.metric, Metric::L2);
        let q_total_norm_sq = if is_ip { ip(query, query) } else { 0.0 };

        // Estimate the candidate volume of this visit for load accounting.
        let candidates: usize = {
            let sizes = ns.list_sizes.read();
            clusters
                .iter()
                .map(|&c| sizes.get(c as usize).copied().unwrap_or(0))
                .sum()
        };

        // Pipeline order over dimension blocks (§4.3 Load Balancing):
        // balanced mode sends the most-loaded machine's block last, where
        // pruning has already thinned the candidates; otherwise natural
        // order with a deterministic rotation to spread stage collisions.
        let blocks: Vec<usize> = {
            let mut blocks: Vec<usize> = (0..plan.dim_blocks).collect();
            if self.config.balanced_load {
                let loads = self.shared.outstanding.snapshot();
                blocks.sort_by(|&a, &b| {
                    let la = loads[plan.machine_of(shard as usize, a)];
                    let lb = loads[plan.machine_of(shard as usize, b)];
                    la.total_cmp(&lb).then(a.cmp(&b))
                });
            } else {
                // Rotate by the query's batch row, not its global id: ids
                // depend on how concurrent sessions interleave their range
                // reservations, rows make results reproducible per batch.
                blocks.rotate_left(state.row % plan.dim_blocks.max(1));
            }
            blocks
        };
        let order: Vec<u64> = blocks
            .iter()
            .map(|&b| plan.machine_of(shard as usize, b) as u64)
            .collect();

        // Charge the estimated work per machine: later positions are
        // discounted by the expected pruning survival rate. The same
        // entries are discharged when this visit's result arrives.
        let mut per_machine: Vec<(NodeId, f64)> = Vec::with_capacity(blocks.len());
        for (pos, &b) in blocks.iter().enumerate() {
            let machine = plan.machine_of(shard as usize, b);
            let width = routing.dim_ranges[b].len() as f64;
            let survival = if ns.pruning {
                0.55f64.powi(pos as i32)
            } else {
                1.0
            };
            let amount = candidates as f64 * width * survival;
            self.shared.outstanding.add(machine, amount);
            per_machine.push((machine, amount));
        }
        state.charged.push(VisitCharge { shard, per_machine });

        for (pos, &b) in blocks.iter().enumerate() {
            let machine = plan.machine_of(shard as usize, b);
            let range = routing.dim_ranges[b];
            let chunk = QueryChunk {
                ns: ns.ns,
                query_id: qid,
                epoch: routing.epoch,
                shard,
                k: ns.effective_k(opts.k) as u32,
                threshold,
                clusters: clusters.clone(),
                dims: query[range.start..range.end].to_vec(),
                q_total_norm_sq,
                order: order.clone(),
                position: pos as u32,
                delta_seq: state.delta_seq,
            };
            self.shared
                .cluster
                .send(machine, ToWorker::Chunk(chunk).to_bytes())?;
        }
        state.in_flight += 1;
        Ok(())
    }

    // --- Ingest --------------------------------------------------------

    /// Upserts (inserts or replaces) one vector by id in the default
    /// namespace. Returns the row's publication sequence number.
    ///
    /// The row is immediately searchable: it lands in the delta list of
    /// its nearest cluster's shard on every dimension block, and every
    /// query admitted after this call carries a watermark covering it.
    /// A replaced id is superseded everywhere by a tombstone below the
    /// new row's sequence.
    ///
    /// # Errors
    /// Dimension mismatches or transport failures.
    pub fn upsert(&self, id: u64, vector: &[f32]) -> Result<u64, CoreError> {
        self.upsert_ns(0, id, vector)
    }

    /// Upserts one vector by id in namespace `ns` (see
    /// [`EngineCore::upsert`]). Enforces the namespace's live-vector
    /// quota when one is set.
    ///
    /// # Errors
    /// Unknown namespace, dimension mismatches, an exhausted quota or
    /// transport failures.
    pub fn upsert_ns(&self, ns: u16, id: u64, vector: &[f32]) -> Result<u64, CoreError> {
        let state = self.namespace(ns)?;
        if vector.len() != state.dim {
            return Err(CoreError::Index(
                harmony_index::IndexError::DimensionMismatch {
                    expected: state.dim,
                    actual: vector.len(),
                },
            ));
        }
        let seq;
        {
            let mut ing = state.ingest.lock();
            let routing = Arc::clone(&state.routing.read());
            // Supersede any live copy first: a tombstone below the new
            // row's sequence suppresses stale list/delta rows everywhere
            // while the re-upsert itself stays visible.
            let (known, id_live, live) = {
                let base = state.base.read();
                let in_base = base.by_id.contains_key(&id);
                let in_pending = ing.pending.iter().any(|p| p.id == id);
                let known = in_base || in_pending || ing.tombstones.contains_key(&id);
                let id_live = (in_base || in_pending) && !ing.deleted.contains_key(&id);
                let live = base.by_id.len().saturating_sub(ing.deleted.len());
                (known, id_live, live)
            };
            // Quota check before any side effect: replacing a live id
            // never grows the namespace, a new id must fit the budget.
            if state.max_vectors > 0 && !id_live && live >= state.max_vectors {
                return Err(CoreError::Config(format!(
                    "namespace {ns} quota exceeded: {live} live vectors of {} allowed",
                    state.max_vectors
                )));
            }
            if known {
                let del_seq = ing.next_seq;
                ing.next_seq += 1;
                let del = DeleteIds {
                    ns: state.ns,
                    epoch: u64::MAX,
                    ids: vec![id],
                    seq: del_seq,
                };
                for m in 0..self.config.n_machines {
                    self.shared
                        .cluster
                        .send(m, ToWorker::DeleteIds(del.clone()).to_bytes())?;
                }
                ing.tombstones.insert(id, del_seq);
            }
            seq = ing.next_seq;
            ing.next_seq += 1;
            let cluster = *nearest_centroids(vector, &state.centroids, 1)
                .first()
                .ok_or_else(|| CoreError::Runtime("engine has no centroids".into()))?;
            {
                let mut base = state.base.write();
                let row = base.store.len();
                base.store.push(id, vector).map_err(CoreError::Index)?;
                base.by_id.insert(id, row);
            }
            ing.pending.push(PendingDelta { id, cluster, seq });
            ing.deleted.remove(&id);
            ing.overridden.insert(id);
            let shard = routing
                .assignment
                .cluster_to_shard
                .get(cluster as usize)
                .copied()
                .unwrap_or(0);
            let is_ip = !matches!(state.metric, Metric::L2);
            let total_norm_sq = if is_ip { ip(vector, vector) } else { 0.0 };
            for (b, range) in routing.dim_ranges.iter().enumerate() {
                let machine = routing.plan.machine_of(shard as usize, b);
                let slice = &vector[range.start..range.end];
                let msg = DeltaUpsert {
                    ns: state.ns,
                    epoch: routing.epoch,
                    shard,
                    dim_start: range.start as u64,
                    dim_end: range.end as u64,
                    ids: vec![id],
                    seqs: vec![seq],
                    flat: slice.to_vec(),
                    block_norms_sq: if is_ip {
                        vec![ip(slice, slice)]
                    } else {
                        Vec::new()
                    },
                    total_norms_sq: if is_ip {
                        vec![total_norm_sq]
                    } else {
                        Vec::new()
                    },
                };
                self.shared
                    .cluster
                    .send(machine, ToWorker::UpsertDelta(msg).to_bytes())?;
            }
            // Publish only after every send: FIFO transport ordering then
            // guarantees any chunk stamped with this watermark arrives
            // after the rows it selects.
            state.published_seq.store(ing.next_seq, Ordering::Release);
            refresh_ingest_snapshot(&state, &ing);
        }
        self.maybe_auto_compact(&state)?;
        Ok(seq)
    }

    /// Soft-deletes one id in the default namespace. The stored rows stay
    /// in place; a tombstone suppresses them at result emission on the
    /// workers, and the client dead-set guarantees the id never appears in
    /// results even before the tombstone broadcast lands. Returns `false`
    /// when the id was not live.
    ///
    /// # Errors
    /// Transport failures.
    pub fn delete(&self, id: u64) -> Result<bool, CoreError> {
        self.delete_ns(0, id)
    }

    /// Soft-deletes one id in namespace `ns` (see [`EngineCore::delete`]).
    ///
    /// # Errors
    /// Unknown namespace or transport failures.
    pub fn delete_ns(&self, ns: u16, id: u64) -> Result<bool, CoreError> {
        let state = self.namespace(ns)?;
        let mut ing = state.ingest.lock();
        let live = (state.base.read().by_id.contains_key(&id)
            || ing.pending.iter().any(|p| p.id == id))
            && !ing.deleted.contains_key(&id);
        if !live {
            return Ok(false);
        }
        let seq = ing.next_seq;
        ing.next_seq += 1;
        let msg = DeleteIds {
            ns: state.ns,
            epoch: u64::MAX,
            ids: vec![id],
            seq,
        };
        for m in 0..self.config.n_machines {
            self.shared
                .cluster
                .send(m, ToWorker::DeleteIds(msg.clone()).to_bytes())?;
        }
        ing.tombstones.insert(id, seq);
        ing.deleted.insert(id, seq);
        ing.overridden.insert(id);
        state.published_seq.store(ing.next_seq, Ordering::Release);
        refresh_ingest_snapshot(&state, &ing);
        Ok(true)
    }

    /// Folds every pending delta row of the default namespace into its
    /// home IVF list and drops tombstoned rows, publishing the result as a
    /// new epoch through the same `BeginEpoch → InstallLists → EpochReady
    /// → swap` handshake as live migration — searches in flight keep their
    /// old epoch and stay bit-consistent; new admissions see only the
    /// compacted lists. Under SQ8 the recut lists are re-quantized
    /// client-side. A no-op (nothing pending, nothing deleted) publishes
    /// no epoch.
    ///
    /// # Errors
    /// Transport failures or a handshake timeout (the incumbent epoch
    /// stays in force).
    pub fn compact(&self) -> Result<CompactionReport, CoreError> {
        let state = Arc::clone(&self.ns0);
        self.compact_state(&state)
    }

    /// Folds pending deltas of namespace `ns` (see
    /// [`EngineCore::compact`]).
    ///
    /// # Errors
    /// Unknown namespace, transport failures or a handshake timeout.
    pub fn compact_ns(&self, ns: u16) -> Result<CompactionReport, CoreError> {
        let state = self.namespace(ns)?;
        self.compact_state(&state)
    }

    fn compact_state(&self, state: &NamespaceState) -> Result<CompactionReport, CoreError> {
        let mut sup = state.supervisor.lock();
        self.gc_retired(state, &mut sup);
        let mut ing = state.ingest.lock();
        if ing.pending.is_empty() && ing.deleted.is_empty() && ing.tombstones.is_empty() {
            return Ok(CompactionReport {
                epoch: state.routing.read().epoch,
                folded_rows: 0,
                dropped_tombstones: 0,
                noop: true,
            });
        }
        let cur = Arc::clone(&state.routing.read());
        // Epoch numbers are shared with migration and never reused.
        let epoch = sup.next_epoch;
        sup.next_epoch += 1;

        // Newest pending upsert per id; ids deleted after their last
        // upsert drop out entirely (a delete always outsequences the
        // upserts it follows).
        let mut latest: HashMap<u64, (u32, u64)> = HashMap::new();
        for p in &ing.pending {
            if ing.deleted.contains_key(&p.id) {
                continue;
            }
            let e = latest.entry(p.id).or_insert((p.cluster, p.seq));
            if p.seq >= e.1 {
                *e = (p.cluster, p.seq);
            }
        }
        let folded_rows = latest.len();
        let dropped_tombstones = ing.deleted.len();

        // Recut membership: old members minus deleted/re-homed ids, plus
        // each surviving pending id at its new home. Additions are sorted
        // by sequence so list order is deterministic.
        let mut members: Vec<Vec<u64>> = ing
            .members
            .iter()
            .map(|m| {
                m.iter()
                    .copied()
                    .filter(|id| !ing.deleted.contains_key(id) && !latest.contains_key(id))
                    .collect()
            })
            .collect();
        let mut additions: Vec<(u64, u32, u64)> = latest
            .iter()
            .map(|(&id, &(cluster, seq))| (id, cluster, seq))
            .collect();
        additions.sort_unstable_by_key(|&(_, _, seq)| seq);
        for (id, cluster, _) in additions {
            members[cluster as usize].push(id);
        }

        let machines = self.config.n_machines;
        let is_ip = !matches!(state.metric, Metric::L2);
        let base = state.base.read();
        let control = self.control.lock();
        let sends = (|| -> Result<(), CoreError> {
            for (s, clusters) in cur.shard_clusters.iter().enumerate() {
                for (b, range) in cur.dim_ranges.iter().enumerate() {
                    let machine = cur.plan.machine_of(s, b);
                    let begin = BeginEpoch {
                        ns: state.ns,
                        epoch,
                        shard: s as u32,
                        dim_block: b as u32,
                        dim_start: range.start as u64,
                        dim_end: range.end as u64,
                        total_dim_blocks: cur.plan.dim_blocks as u32,
                        expected_pieces: clusters.len() as u64,
                    };
                    self.shared
                        .cluster
                        .send(machine, ToWorker::BeginEpoch(begin).to_bytes())?;
                    let pieces: Vec<ListPiece> = clusters
                        .iter()
                        .map(|&c| {
                            let ids = &members[c as usize];
                            let mut flat = Vec::with_capacity(ids.len() * range.len());
                            let mut piece_norms_sq = Vec::new();
                            let mut total_norms_sq = Vec::new();
                            for &id in ids {
                                let row = base.by_id[&id];
                                let slice = base.store.row_range(row, *range);
                                flat.extend_from_slice(slice);
                                if is_ip {
                                    piece_norms_sq.push(ip(slice, slice));
                                    let full = base.store.row(row);
                                    total_norms_sq.push(ip(full, full));
                                }
                            }
                            // Norm tables stay exact: computed from the f32
                            // slices above, before any re-quantization.
                            let segs = if state.sq8 && !flat.is_empty() {
                                let seg =
                                    Sq8Segment::quantize(&flat, range.len(), range.start as u64);
                                flat = Vec::new();
                                vec![seg]
                            } else {
                                Vec::new()
                            };
                            ListPiece {
                                cluster: c,
                                dim_start: range.start as u64,
                                dim_end: range.end as u64,
                                ids: ids.clone(),
                                flat,
                                segs,
                                piece_norms_sq,
                                total_norms_sq,
                            }
                        })
                        .collect();
                    let msg = InstallLists {
                        ns: state.ns,
                        epoch,
                        shard: s as u32,
                        dim_block: b as u32,
                        pieces,
                    };
                    self.shared
                        .cluster
                        .send(machine, ToWorker::InstallLists(msg).to_bytes())?;
                }
            }
            Ok(())
        })();
        drop(base);
        if let Err(e) = sends {
            drop(control);
            self.abort_epoch(state.ns, epoch);
            return Err(e);
        }

        // Await one activation ack per machine (the migration handshake).
        let deadline = Instant::now() + MIGRATION_HANDSHAKE_TIMEOUT;
        let mut ready = vec![false; machines];
        let mut count = 0usize;
        while count < machines {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                drop(control);
                self.abort_epoch(state.ns, epoch);
                return Err(CoreError::Cluster(ClusterError::Timeout));
            }
            match control.recv_timeout(remaining) {
                Ok((from, ToClient::EpochReady { ns, epoch: e }))
                    if ns == state.ns && e == epoch =>
                {
                    if from < machines && !std::mem::replace(&mut ready[from], true) {
                        count += 1;
                    }
                }
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    drop(control);
                    self.abort_epoch(state.ns, epoch);
                    return Err(CoreError::Cluster(ClusterError::Timeout));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Cluster(ClusterError::ShutDown))
                }
            }
        }
        drop(control);

        // Swap admissions onto the compacted epoch; the old one retires
        // until its in-flight queries drain, exactly like a migration.
        let next = Arc::new(RoutingEpoch::new(
            epoch,
            cur.plan,
            cur.assignment.clone(),
            state.dim,
        )?);
        drop(cur);
        {
            let mut routing = state.routing.write();
            sup.retired.push(Arc::clone(&routing));
            *routing = next;
        }
        *state.list_sizes.write() = members.iter().map(Vec::len).collect();
        ing.members = members;
        ing.pending.clear();
        ing.tombstones.clear();
        ing.deleted.clear();
        refresh_ingest_snapshot(state, &ing);
        Ok(CompactionReport {
            epoch,
            folded_rows,
            dropped_tombstones,
            noop: false,
        })
    }

    /// Auto-compaction hook: folds deltas once `compact_after` upserts are
    /// pending (0 disables; manual [`EngineCore::compact`] calls only).
    /// When the background compactor is running it owns threshold-driven
    /// folding, and the ingest path never blocks on a handshake.
    fn maybe_auto_compact(&self, state: &NamespaceState) -> Result<(), CoreError> {
        let after = self.config.compact_after;
        if after == 0 || self.config.compact_interval_ms > 0 {
            return Ok(());
        }
        let due = state.ingest.lock().pending.len() >= after;
        if due {
            self.compact_state(state)?;
        }
        Ok(())
    }

    // --- Adaptive replanning -----------------------------------------

    /// Runs one supervisor tick over the default namespace: fold the
    /// observation window's probe counters into an observed
    /// [`WorkloadProfile`], re-score every factorization with the cost
    /// model plus the amortized migration-cost term, and live-migrate when
    /// a challenger beats the incumbent by the configured hysteresis.
    ///
    /// Safe to call from any thread; ticks serialize on the supervisor
    /// lock. With [`crate::config::ReplanConfig::check_every`] set, the
    /// engine also ticks itself after batches.
    ///
    /// # Errors
    /// Transport failures or a migration handshake timeout.
    pub fn supervisor_tick(&self) -> Result<ReplanOutcome, CoreError> {
        let state = Arc::clone(&self.ns0);
        let mut sup = state.supervisor.lock();
        self.tick_locked(&state, &mut sup)
    }

    /// Forces a live migration of the default namespace to `plan`
    /// (diagnostics / benchmarks), bypassing the cost model but using the
    /// same epoch handshake.
    ///
    /// # Errors
    /// [`CoreError::Config`] when the plan does not fit the deployment;
    /// transport failures or a handshake timeout otherwise.
    pub fn migrate_to(&self, plan: PartitionPlan) -> Result<MigrationReport, CoreError> {
        let state = Arc::clone(&self.ns0);
        if plan.machines() != self.config.n_machines {
            return Err(CoreError::Config(format!(
                "plan {} needs {} machines but the deployment has {}",
                plan.label(),
                plan.machines(),
                self.config.n_machines
            )));
        }
        if plan.dim_blocks > state.dim {
            return Err(CoreError::Config(format!(
                "plan {} needs more dimension blocks than dimensions ({})",
                plan.label(),
                state.dim
            )));
        }
        let weights: Vec<u64> = state
            .list_sizes
            .read()
            .iter()
            .map(|&s| s as u64 + 1)
            .collect();
        let cur = Arc::clone(&state.routing.read());
        let assignment = if plan == cur.plan {
            ShardAssignment::rebalance(&cur.assignment, &weights, plan.vec_shards, 1.0)
        } else if self.config.balanced_load {
            ShardAssignment::balanced(&weights, plan.vec_shards)
        } else {
            ShardAssignment::round_robin(&weights, plan.vec_shards)
        };
        drop(cur);
        let mut sup = state.supervisor.lock();
        self.gc_retired(&state, &mut sup);
        self.execute_migration(&state, &mut sup, plan, assignment)
    }

    /// Drain-time eviction hook: retired epochs must not wait for the next
    /// supervisor tick (which may never come in manual mode) to release
    /// their worker-side storage. Non-blocking and O(1) when nothing is
    /// retired.
    fn maybe_gc_retired(&self, state: &NamespaceState) {
        let Some(mut sup) = state.supervisor.try_lock() else {
            return;
        };
        if !sup.retired.is_empty() {
            self.gc_retired(state, &mut sup);
        }
    }

    /// Auto-tick hook: runs a supervisor pass when enough queries completed
    /// since the last check. Non-blocking — if another thread is already
    /// ticking, this one skips.
    fn maybe_auto_replan(&self, state: &Arc<NamespaceState>) {
        let every = self.config.replan.check_every;
        if every == 0 {
            return;
        }
        let done = state.probes.queries();
        let Some(mut sup) = state.supervisor.try_lock() else {
            return;
        };
        if done < sup.next_check {
            return;
        }
        sup.next_check = done + every;
        // Auto mode is best-effort: a failed tick (e.g. handshake timeout)
        // leaves the incumbent layout in force and retries next window.
        let _ = self.tick_locked(state, &mut sup);
    }

    fn tick_locked(
        &self,
        state: &NamespaceState,
        sup: &mut SupervisorState,
    ) -> Result<ReplanOutcome, CoreError> {
        self.gc_retired(state, sup);
        let replan = self.config.replan;
        let now = state.probes.snapshot();
        let window = now.delta(&sup.window_start);
        if window.queries < replan.min_window_queries.max(1) {
            return Ok(ReplanOutcome::InsufficientData);
        }
        let nprobe = (window.total_probes() / window.queries.max(1)).max(1) as usize;
        let k = state.probes.last_k().max(1) as usize;
        // Smooth the raw window through the EWMA so sustained drift drives
        // the decision while one noisy window cannot whipsaw the layout.
        sup.ewma.absorb(&window);
        let smoothed_counts = sup.ewma.counts();
        let smoothed_queries = sup.ewma.queries().max(1);
        let pending = state.ingest.lock().pending.len();
        let profile = WorkloadProfile::observed(
            state.list_sizes.read().clone(),
            &smoothed_counts,
            state.dim,
            smoothed_queries as usize,
            nprobe,
            k,
        )?
        .with_pending_deltas(pending);
        // Recalibrate the modeled compute rate from observed worker wall
        // time: the build-time microbenchmark drifts from the real scan
        // cost once quantized kernels and delta scans mix (PR-3 leftover).
        if let Ok(ws) = self.collect_stats() {
            if ws.scanned_point_dims > 0 && ws.compute_ns > 0 {
                let observed =
                    (ws.compute_ns as f64 / ws.scanned_point_dims as f64).clamp(0.02, 10.0);
                let alpha = 0.5;
                sup.tuned.comp_ns_per_point_dim =
                    alpha * observed + (1.0 - alpha) * sup.tuned.comp_ns_per_point_dim;
            }
        }
        let weights = weights_from(&profile);
        let cur = Arc::clone(&state.routing.read());
        let stay_ns = sup
            .tuned
            .plan_cost_with_assignment(cur.plan, &profile, &cur.assignment)
            .total_ns;

        // Score every factorization under the observed profile, charging
        // challengers the amortized cost of moving to them.
        let mut best: Option<(PartitionPlan, ShardAssignment, f64, f64)> = None;
        for plan in PartitionPlan::enumerate(self.config.n_machines) {
            if plan.dim_blocks > state.dim {
                continue;
            }
            let assignment = if plan == cur.plan {
                ShardAssignment::rebalance(
                    &cur.assignment,
                    &weights,
                    plan.vec_shards,
                    replan.max_move_frac,
                )
            } else {
                ShardAssignment::balanced(&weights, plan.vec_shards)
            };
            if plan == cur.plan && assignment.cluster_to_shard == cur.assignment.cluster_to_shard {
                continue; // identical to the incumbent, already priced
            }
            let cost = sup
                .tuned
                .plan_cost_with_assignment(plan, &profile, &assignment)
                .total_ns;
            let next = RoutingEpoch::new(cur.epoch + 1, plan, assignment, state.dim)?;
            let (bytes, msgs, _) = self.migration_volume(state, &cur, &next);
            let migration_ns = sup.tuned.migration_ns(bytes, msgs);
            let score = cost + migration_ns / replan.amortize_windows;
            if best.as_ref().is_none_or(|b| score < b.2) {
                best = Some((next.plan, next.assignment, score, cost));
            }
        }
        drop(cur);
        // Every decision starts a fresh observation window.
        sup.window_start = now;

        let Some((plan, assignment, best_ns, cost)) = best else {
            return Ok(ReplanOutcome::Hold {
                stay_ns,
                best_ns: stay_ns,
            });
        };
        if best_ns >= stay_ns * (1.0 - replan.hysteresis) {
            return Ok(ReplanOutcome::Hold { stay_ns, best_ns });
        }
        let mut report = self.execute_migration(state, sup, plan, assignment)?;
        report.stay_ns = stay_ns;
        report.projected_ns = cost;
        Ok(ReplanOutcome::Switched(report))
    }

    /// Evicts retired epochs whose last in-flight query has drained (only
    /// the supervisor's own Arc remains).
    fn gc_retired(&self, state: &NamespaceState, sup: &mut SupervisorState) {
        sup.retired.retain(|old| {
            if Arc::strong_count(old) > 1 {
                return true;
            }
            for m in 0..self.config.n_machines {
                let _ = self.shared.cluster.send(
                    m,
                    ToWorker::EvictEpoch {
                        ns: state.ns,
                        epoch: old.epoch,
                    }
                    .to_bytes(),
                );
            }
            false
        });
    }

    /// Walks the migration schedule from `cur` to `next` without
    /// materializing it: for every cluster, the overlap of each old
    /// dimension block with each new dimension block is one piece, shipped
    /// from the machine storing the old block to the machine hosting the
    /// new one. The supervisor scores many candidate layouts per tick;
    /// streaming the schedule keeps those evaluations allocation-free —
    /// only the one winning layout ever materializes its specs.
    fn visit_transfers(
        &self,
        state: &NamespaceState,
        cur: &RoutingEpoch,
        next: &RoutingEpoch,
        mut visit: impl FnMut(NodeId, TransferSpec),
    ) {
        for c in 0..state.list_sizes.read().len() {
            let s_old = cur.assignment.cluster_to_shard.get(c).copied().unwrap_or(0) as usize;
            let s_old = s_old.min(cur.plan.vec_shards - 1);
            let s_new = next
                .assignment
                .cluster_to_shard
                .get(c)
                .copied()
                .unwrap_or(0) as usize;
            let s_new = s_new.min(next.plan.vec_shards - 1);
            for (b_new, r_new) in next.dim_ranges.iter().enumerate() {
                let dest = next.plan.machine_of(s_new, b_new);
                for (b_old, r_old) in cur.dim_ranges.iter().enumerate() {
                    let start = r_new.start.max(r_old.start);
                    let end = r_new.end.min(r_old.end);
                    if start >= end {
                        continue;
                    }
                    let src = cur.plan.machine_of(s_old, b_old);
                    visit(
                        src,
                        TransferSpec {
                            cluster: c as u32,
                            src_epoch: cur.epoch,
                            src_shard: s_old as u32,
                            dim_start: start as u64,
                            dim_end: end as u64,
                            dest: dest as u64,
                            dest_shard: s_new as u32,
                            dest_dim_block: b_new as u32,
                        },
                    );
                }
            }
        }
    }

    /// Materializes the migration schedule (used once, for the winning
    /// layout).
    fn build_transfers(
        &self,
        state: &NamespaceState,
        cur: &RoutingEpoch,
        next: &RoutingEpoch,
    ) -> Vec<(NodeId, TransferSpec)> {
        let mut out = Vec::new();
        self.visit_transfers(state, cur, next, |src, t| out.push((src, t)));
        out
    }

    /// Modeled `(payload bytes, network messages, network pieces)` of the
    /// migration from `cur` to `next`. Self-directed pieces install locally
    /// and cost nothing on the fabric.
    fn migration_volume(
        &self,
        state: &NamespaceState,
        cur: &RoutingEpoch,
        next: &RoutingEpoch,
    ) -> (u64, u64, u64) {
        let is_ip = !matches!(state.metric, Metric::L2);
        let sq8 = state.sq8;
        let sizes = state.list_sizes.read().clone();
        let mut bytes = 0u64;
        let mut pieces = 0u64;
        let mut groups: HashSet<(NodeId, u64, u32, u32)> = HashSet::new();
        self.visit_transfers(state, cur, next, |src, t| {
            if src as u64 == t.dest {
                return;
            }
            let rows = sizes.get(t.cluster as usize).copied().unwrap_or(0) as u64;
            let width = t.dim_end - t.dim_start;
            // Header + ids + payload (+ norm tables under inner-product
            // metrics) — mirrors the ListPiece wire layout. SQ8 ships one
            // byte per coordinate plus a 4-byte code sum per row and a
            // fixed segment header instead of 4-byte floats.
            let mut piece = 44 + rows * 8;
            piece += if sq8 {
                40 + rows * (width + 4)
            } else {
                rows * width * 4
            };
            if is_ip {
                piece += rows * 8;
            }
            bytes += piece;
            pieces += 1;
            groups.insert((src, t.dest, t.dest_shard, t.dest_dim_block));
        });
        (bytes, groups.len() as u64, pieces)
    }

    /// Executes a live layout switch: announce the next epoch to every
    /// machine, ship the pieces, await activation acks, then atomically
    /// swap the routing Arc. The old epoch stays on the workers until its
    /// last in-flight query drains (see [`EngineCore::gc_retired`]).
    fn execute_migration(
        &self,
        state: &NamespaceState,
        sup: &mut SupervisorState,
        plan: PartitionPlan,
        assignment: ShardAssignment,
    ) -> Result<MigrationReport, CoreError> {
        let cur = Arc::clone(&state.routing.read());
        // Epoch numbers are never reused, even across failed attempts: a
        // stale ack or piece from an aborted handshake must not be able to
        // impersonate a later one.
        let epoch = sup.next_epoch;
        sup.next_epoch += 1;
        let next = Arc::new(RoutingEpoch::new(epoch, plan, assignment, state.dim)?);
        let specs = self.build_transfers(state, &cur, &next);
        let (modeled_bytes, msgs, network_pieces) = self.migration_volume(state, &cur, &next);
        let clusters_moved = cur.assignment.moved_clusters(&next.assignment).len();
        let machines = self.config.n_machines;

        // Hold the control channel for the whole handshake so concurrent
        // stats collectors cannot consume the activation acks.
        let control = self.control.lock();

        let mut expected = vec![0u64; machines];
        for (_, t) in &specs {
            expected[t.dest as usize] += 1;
        }
        let sends = (|| -> Result<(), CoreError> {
            for (m, &expected_pieces) in expected.iter().enumerate() {
                let (shard, dim_block) = next.plan.block_of(m);
                let range = next.dim_ranges[dim_block];
                let begin = BeginEpoch {
                    ns: state.ns,
                    epoch,
                    shard: shard as u32,
                    dim_block: dim_block as u32,
                    dim_start: range.start as u64,
                    dim_end: range.end as u64,
                    total_dim_blocks: next.plan.dim_blocks as u32,
                    expected_pieces,
                };
                self.shared
                    .cluster
                    .send(m, ToWorker::BeginEpoch(begin).to_bytes())?;
            }
            let mut by_src: BTreeMap<NodeId, Vec<TransferSpec>> = BTreeMap::new();
            for (src, t) in &specs {
                by_src.entry(*src).or_default().push(t.clone());
            }
            // Ship each source's transfers in bounded waves so foreground
            // query chunks can interleave in worker mailboxes instead of
            // stalling behind one giant transfer message. Activation counts
            // pieces, not messages, so chunking never changes the handshake.
            let wave = self.config.replan.max_pieces_per_tick;
            for (src, transfers) in by_src {
                let wave = if wave == 0 {
                    transfers.len().max(1)
                } else {
                    wave
                };
                for chunk in transfers.chunks(wave) {
                    let msg = MigrateOut {
                        ns: state.ns,
                        epoch,
                        transfers: chunk.to_vec(),
                    };
                    self.shared
                        .cluster
                        .send(src, ToWorker::MigrateOut(msg).to_bytes())?;
                }
            }
            Ok(())
        })();
        if let Err(e) = sends {
            drop(control);
            self.abort_epoch(state.ns, epoch);
            return Err(e);
        }

        // Await one activation ack per machine.
        let deadline = Instant::now() + MIGRATION_HANDSHAKE_TIMEOUT;
        let mut ready = vec![false; machines];
        let mut count = 0usize;
        while count < machines {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                drop(control);
                self.abort_epoch(state.ns, epoch);
                return Err(CoreError::Cluster(ClusterError::Timeout));
            }
            match control.recv_timeout(remaining) {
                Ok((from, ToClient::EpochReady { ns, epoch: e }))
                    if ns == state.ns && e == epoch =>
                {
                    if from < machines && !std::mem::replace(&mut ready[from], true) {
                        count += 1;
                    }
                }
                // Stale stats replies / acks of older epochs are skipped.
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    drop(control);
                    self.abort_epoch(state.ns, epoch);
                    return Err(CoreError::Cluster(ClusterError::Timeout));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Cluster(ClusterError::ShutDown))
                }
            }
        }
        drop(control);

        // The migration shipped only the epoch's *list* storage; rows still
        // sitting in delta lists — and the tombstones suppressing their
        // stale copies — live outside it. Re-home both onto the new epoch,
        // holding the ingest lock across the routing swap so no concurrent
        // ingest op can slip between re-ship and swap.
        let ingest = state.ingest.lock();
        if let Err(e) = self.reship_ingest(state, &ingest, &next) {
            drop(ingest);
            self.abort_epoch(state.ns, epoch);
            return Err(e);
        }

        // Atomically route new admissions to the new epoch. In-flight
        // queries hold Arcs of the old epoch; it retires until they drain.
        let report = MigrationReport {
            from_epoch: cur.epoch,
            to_epoch: next.epoch,
            from_plan: cur.plan,
            to_plan: next.plan,
            clusters_moved,
            network_pieces,
            modeled_bytes,
            migration_ns: sup.tuned.migration_ns(modeled_bytes, msgs),
            stay_ns: 0.0,
            projected_ns: 0.0,
        };
        drop(cur);
        {
            let mut routing = state.routing.write();
            sup.retired.push(Arc::clone(&routing));
            *routing = next;
        }
        drop(ingest);
        Ok(report)
    }

    /// Replays the live ingest state (tombstones + newest pending row per
    /// id) into a freshly activated epoch. Rows ship in sequence order per
    /// destination so the worker-side delta lists stay seq-sorted; older
    /// pending copies of a re-upserted id are covered by its supersede
    /// tombstone and need not travel.
    fn reship_ingest(
        &self,
        state: &NamespaceState,
        ing: &IngestState,
        next: &RoutingEpoch,
    ) -> Result<(), CoreError> {
        if ing.tombstones.is_empty() && ing.pending.is_empty() {
            return Ok(());
        }
        let epoch = next.epoch;
        let machines = self.config.n_machines;
        let mut tombs: Vec<(u64, u64)> = ing.tombstones.iter().map(|(&id, &s)| (id, s)).collect();
        tombs.sort_unstable_by_key(|&(_, seq)| seq);
        for (id, seq) in tombs {
            let msg = DeleteIds {
                ns: state.ns,
                epoch,
                ids: vec![id],
                seq,
            };
            for m in 0..machines {
                self.shared
                    .cluster
                    .send(m, ToWorker::DeleteIds(msg.clone()).to_bytes())?;
            }
        }
        let mut latest: HashMap<u64, (u32, u64)> = HashMap::new();
        for p in &ing.pending {
            let e = latest.entry(p.id).or_insert((p.cluster, p.seq));
            if p.seq >= e.1 {
                *e = (p.cluster, p.seq);
            }
        }
        let mut rows: Vec<(u64, u32, u64)> = latest
            .into_iter()
            .map(|(id, (cluster, seq))| (id, cluster, seq))
            .collect();
        rows.sort_unstable_by_key(|&(_, _, seq)| seq);
        let base = state.base.read();
        let is_ip = !matches!(state.metric, Metric::L2);
        for (id, cluster, seq) in rows {
            let Some(&row) = base.by_id.get(&id) else {
                debug_assert!(false, "pending delta row missing from the base store");
                continue;
            };
            let vector = base.store.row(row);
            let shard = next
                .assignment
                .cluster_to_shard
                .get(cluster as usize)
                .copied()
                .unwrap_or(0);
            let total_norm_sq = if is_ip { ip(vector, vector) } else { 0.0 };
            for (b, range) in next.dim_ranges.iter().enumerate() {
                let machine = next.plan.machine_of(shard as usize, b);
                let slice = &vector[range.start..range.end];
                let msg = DeltaUpsert {
                    ns: state.ns,
                    epoch,
                    shard,
                    dim_start: range.start as u64,
                    dim_end: range.end as u64,
                    ids: vec![id],
                    seqs: vec![seq],
                    flat: slice.to_vec(),
                    block_norms_sq: if is_ip {
                        vec![ip(slice, slice)]
                    } else {
                        Vec::new()
                    },
                    total_norms_sq: if is_ip {
                        vec![total_norm_sq]
                    } else {
                        Vec::new()
                    },
                };
                self.shared
                    .cluster
                    .send(machine, ToWorker::UpsertDelta(msg).to_bytes())?;
            }
        }
        Ok(())
    }

    /// Best-effort cleanup of a half-installed epoch after a failed
    /// handshake, so a retry cannot meet leftover state.
    fn abort_epoch(&self, ns: u16, epoch: u64) {
        for m in 0..self.config.n_machines {
            let _ = self
                .shared
                .cluster
                .send(m, ToWorker::EvictEpoch { ns, epoch }.to_bytes());
        }
    }

    /// Gathers per-worker pruning/memory statistics.
    ///
    /// Runs over the control channel, so it can proceed while search
    /// sessions are in flight; concurrent collectors serialize on the
    /// channel lock.
    ///
    /// # Errors
    /// Transport failures or protocol violations.
    pub fn collect_stats(&self) -> Result<EngineStats, CoreError> {
        let control = self.control.lock();
        // Drop stragglers from an earlier, timed-out collection.
        while control.try_recv().is_ok() {}
        let workers = self.shared.cluster.workers();
        for w in 0..workers {
            self.shared.cluster.send(w, ToWorker::GetStats.to_bytes())?;
        }
        let mut stats = EngineStats {
            slices: SliceStats::new(self.plan().dim_blocks),
            worker_memory_bytes: vec![0; workers],
            ..EngineStats::default()
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut received = 0;
        // One reply per worker: a straggler from an earlier timed-out
        // collection that arrives mid-flight must not be merged twice.
        let mut seen = vec![false; workers];
        while received < workers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::Cluster(ClusterError::Timeout));
            }
            match control.recv_timeout(remaining) {
                Ok((from, ToClient::Stats(r))) => {
                    if from >= workers || std::mem::replace(&mut seen[from], true) {
                        continue; // duplicate or stale reply from this worker
                    }
                    stats.slices.merge_report(&r.slice_in, &r.slice_pruned);
                    stats.worker_memory_bytes[from] = r.memory_bytes;
                    stats.scanned_point_dims += r.scanned_point_dims;
                    stats.f32_block_bytes += r.f32_block_bytes;
                    stats.sq8_block_bytes += r.sq8_block_bytes;
                    stats.compute_ns += r.compute_ns;
                    stats.delta_block_bytes += r.delta_bytes;
                    stats.delta_rows += r.delta_rows;
                    stats.tombstone_entries += r.tombstone_entries;
                    stats.cache_block_bytes += r.cache_block_bytes;
                    stats.spilled_block_bytes += r.spilled_block_bytes;
                    received += 1;
                }
                // Late acks from aborted handshakes / installs / tier
                // transitions of other operations are harmless here.
                Ok((_, ToClient::EpochReady { .. }))
                | Ok((_, ToClient::LoadAck { .. }))
                | Ok((_, ToClient::TierAck { .. })) => continue,
                Ok((_, other)) => {
                    return Err(CoreError::Protocol(format!(
                        "unexpected message during stats collection: {other:?}"
                    )))
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::Cluster(ClusterError::Timeout))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Cluster(ClusterError::ShutDown))
                }
            }
        }
        Ok(stats)
    }

    /// Zeroes worker statistics counters.
    ///
    /// # Errors
    /// Transport failures.
    pub fn reset_stats(&self) -> Result<(), CoreError> {
        for w in 0..self.shared.cluster.workers() {
            self.shared
                .cluster
                .send(w, ToWorker::ResetStats.to_bytes())?;
        }
        Ok(())
    }

    /// Point-in-time cluster metrics (cumulative since the build finished).
    pub fn cluster_snapshot(&self) -> ClusterSnapshot {
        self.shared.cluster.snapshot()
    }
}

/// Publishes a fresh immutable snapshot of a namespace's ingest state for
/// the search path. Called with the ingest lock held.
fn refresh_ingest_snapshot(state: &NamespaceState, ing: &IngestState) {
    let snap = IngestSnapshot {
        deleted: ing.deleted.clone(),
        pending_clusters: ing.pending.iter().map(|p| p.cluster).collect(),
        overridden: ing.overridden.clone(),
    };
    *state.ingest_snap.write() = Arc::new(snap);
}

/// Result of a single-query search.
#[derive(Debug, Clone)]
pub struct SingleResult {
    /// Best-first neighbor list.
    pub neighbors: Vec<Neighbor>,
}
#[cfg(test)]
mod tests {
    use super::*;
    use harmony_data::SyntheticSpec;
    use harmony_index::{FlatIndex, IvfIndex, IvfParams};

    fn dataset(n: usize, dim: usize) -> harmony_data::Dataset {
        SyntheticSpec::clustered(n, dim, 8).with_seed(42).generate()
    }

    fn engine_with(mode: EngineMode, base: &VectorStore) -> HarmonyEngine {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(16)
            .mode(mode)
            .seed(7)
            .build()
            .unwrap();
        HarmonyEngine::build(config, base).unwrap()
    }

    /// Reference: single-node IVF with the same clustering seed.
    fn reference_ivf(base: &VectorStore) -> IvfIndex {
        let mut ivf = IvfIndex::train(base, &IvfParams::new(16).with_seed(7)).unwrap();
        ivf.add(base).unwrap();
        ivf
    }

    fn ids(neighbors: &[Neighbor]) -> Vec<u64> {
        neighbors.iter().map(|n| n.id).collect()
    }

    /// Compares two result lists tolerating float-reassociation tie swaps.
    fn assert_equivalent(a: &[Neighbor], b: &[Neighbor]) {
        assert_eq!(a.len(), b.len(), "result lengths differ");
        for (x, y) in a.iter().zip(b) {
            if x.id != y.id {
                // Accept only when scores agree to float tolerance (tie swap).
                assert!(
                    (x.score - y.score).abs() <= 1e-3 * x.score.abs().max(1.0),
                    "ids differ with distinct scores: {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn all_modes_match_single_node_ivf() {
        let d = dataset(2_000, 24);
        let reference = reference_ivf(&d.base);
        let opts = SearchOptions::new(10).with_nprobe(4);
        for mode in EngineMode::ALL {
            let engine = engine_with(mode, &d.base);
            for qi in 0..10 {
                let q = d.queries.row(qi);
                let got = engine.search(q, &opts).unwrap();
                let want = reference.search(q, 10, 4).unwrap();
                assert_equivalent(&got.neighbors, &want);
            }
            engine.shutdown().unwrap();
        }
    }

    #[test]
    fn pruning_does_not_change_results() {
        let d = dataset(2_000, 24);
        let opts = SearchOptions::new(10).with_nprobe(4);
        let base_cfg = |pruning| {
            HarmonyConfig::builder()
                .n_machines(4)
                .nlist(16)
                .seed(7)
                .pruning(pruning)
                .build()
                .unwrap()
        };
        let with = HarmonyEngine::build(base_cfg(true), &d.base).unwrap();
        let without = HarmonyEngine::build(base_cfg(false), &d.base).unwrap();
        for qi in 0..10 {
            let q = d.queries.row(qi);
            let a = with.search(q, &opts).unwrap();
            let b = without.search(q, &opts).unwrap();
            assert_equivalent(&a.neighbors, &b.neighbors);
        }
        with.shutdown().unwrap();
        without.shutdown().unwrap();
    }

    #[test]
    fn batch_matches_single_queries() {
        let d = dataset(1_500, 16);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        let opts = SearchOptions::new(5).with_nprobe(4);
        let queries = d.base.gather(&[3, 500, 999]);
        let batch = engine.search_batch(&queries, &opts).unwrap();
        for (qi, res) in batch.results.iter().enumerate() {
            let single = engine.search(queries.row(qi), &opts).unwrap();
            assert_equivalent(res, &single.neighbors);
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn self_queries_find_themselves() {
        let d = dataset(1_000, 16);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        let opts = SearchOptions::new(1).with_nprobe(2);
        for row in [0usize, 100, 500] {
            let res = engine.search(d.base.row(row), &opts).unwrap();
            assert_eq!(res.neighbors[0].id, row as u64, "row {row}");
            assert!(res.neighbors[0].score < 1e-6);
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn full_probe_reaches_perfect_recall() {
        let d = dataset(800, 12);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        let flat = FlatIndex::from_store(d.base.clone(), Metric::L2);
        let opts = SearchOptions::new(10).with_nprobe(16);
        for qi in 0..5 {
            let q = d.queries.row(qi);
            let got = ids(&engine.search(q, &opts).unwrap().neighbors);
            let want = ids(&flat.search(q, 10).unwrap());
            assert_eq!(got, want, "query {qi}");
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn build_stats_populated() {
        let d = dataset(600, 16);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        let stats = engine.build_stats();
        assert!(stats.bytes_shipped > (600 * 16 * 4) as u64 / 2);
        assert_eq!(stats.plan.machines(), 4);
        engine.shutdown().unwrap();
    }

    #[test]
    fn stats_show_pruning_on_later_slices() {
        let d = dataset(2_000, 32);
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(16)
            .mode(EngineMode::HarmonyDimension)
            .seed(7)
            .build()
            .unwrap();
        let engine = HarmonyEngine::build(config, &d.base).unwrap();
        let opts = SearchOptions::new(10).with_nprobe(4);
        let _ = engine.search_batch(&d.queries, &opts).unwrap();
        let stats = engine.collect_stats().unwrap();
        let ratios = stats.slices.cumulative_ratios();
        assert_eq!(ratios[0], 0.0);
        assert!(
            ratios.last().copied().unwrap_or(0.0) > 10.0,
            "later slices should show pruning, got {ratios:?}"
        );
        engine.shutdown().unwrap();
    }

    #[test]
    fn wrong_dim_query_rejected() {
        let d = dataset(500, 16);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        assert!(matches!(
            engine.search(&[0.0; 8], &SearchOptions::new(3)),
            Err(CoreError::Index(_))
        ));
        engine.shutdown().unwrap();
    }

    #[test]
    fn empty_base_rejected() {
        let config = HarmonyConfig::builder().build().unwrap();
        assert!(matches!(
            HarmonyEngine::build(config, &VectorStore::new(8)),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn modes_choose_expected_plans() {
        let d = dataset(800, 16);
        let v = engine_with(EngineMode::HarmonyVector, &d.base);
        assert_eq!(v.plan(), PartitionPlan::pure_vector(4));
        v.shutdown().unwrap();
        let dm = engine_with(EngineMode::HarmonyDimension, &d.base);
        assert_eq!(dm.plan(), PartitionPlan::pure_dimension(4));
        dm.shutdown().unwrap();
    }

    /// SQ8 two-stage search must reproduce the f32 engine's results on
    /// well-separated data, report the promised memory reduction, and
    /// never exceed its exact-re-rank contract (all returned scores are
    /// exact, so they must match f32's bit for bit per id).
    #[test]
    fn sq8_two_stage_matches_f32_results() {
        // 64 dims so even a 4-way dimension plan keeps blocks ≥16 wide —
        // below that the fixed 4-byte per-row code sums eat the ≥3×
        // byte-reduction margin.
        let d = dataset(2_000, 64);
        let build = |repr| {
            let config = HarmonyConfig::builder()
                .n_machines(4)
                .nlist(16)
                .seed(7)
                .repr(repr)
                .build()
                .unwrap();
            HarmonyEngine::build(config, &d.base).unwrap()
        };
        let exact = build(harmony_index::BlockRepr::F32);
        let quant = build(harmony_index::BlockRepr::Sq8);
        let opts = SearchOptions::new(10).with_nprobe(8);
        let mut hits = 0usize;
        let mut total = 0usize;
        for qi in 0..20 {
            let q = d.queries.row(qi);
            let want = exact.search(q, &opts).unwrap().neighbors;
            let got = quant.search(q, &opts).unwrap().neighbors;
            let want_ids: HashSet<u64> = want.iter().map(|n| n.id).collect();
            total += want.len();
            for n in &got {
                if want_ids.contains(&n.id) {
                    hits += 1;
                    // Re-ranked scores are exact f32 — they differ from the
                    // pipeline's distributed partial sums only by float
                    // association, never by quantization error.
                    let w = want.iter().find(|m| m.id == n.id).unwrap();
                    assert!(
                        (n.score - w.score).abs() <= 1e-4 * w.score.abs().max(1.0),
                        "id {}: sq8 {} vs f32 {}",
                        n.id,
                        n.score,
                        w.score
                    );
                }
            }
        }
        let recall = hits as f64 / total.max(1) as f64;
        assert!(recall >= 0.99, "sq8 recall vs f32 = {recall}");

        let fs = exact.collect_stats().unwrap();
        let qs = quant.collect_stats().unwrap();
        assert_eq!(fs.sq8_block_bytes, 0);
        assert_eq!(qs.f32_block_bytes, 0);
        assert!(
            fs.f32_block_bytes as f64 >= 3.0 * qs.sq8_block_bytes as f64,
            "sq8 must shrink block bytes ≥3×: f32 {} vs sq8 {}",
            fs.f32_block_bytes,
            qs.sq8_block_bytes
        );
        exact.shutdown().unwrap();
        quant.shutdown().unwrap();
    }

    #[test]
    fn session_table_routes_by_query_id_range() {
        let table = SessionTable::default();
        let rx_a = table.register(0, 10);
        let rx_b = table.register(10, 5);
        let result = |qid| QueryResult {
            query_id: qid,
            shard: 0,
            ids: vec![],
            scores: vec![],
            candidates_seen: 0,
        };
        table.route(result(3));
        table.route(result(9));
        table.route(result(10));
        table.route(result(14));
        // Out-of-range ids (no session) are dropped, not misdelivered.
        table.route(result(15));
        table.route(result(99));
        assert_eq!(rx_a.try_iter().count(), 2);
        assert_eq!(rx_b.try_iter().count(), 2);
        // After unregistering, results to the old range are dropped.
        table.unregister(0);
        table.route(result(3));
        assert!(rx_a.try_recv().is_err());
    }

    #[test]
    fn closed_session_table_disconnects_blocked_and_future_sessions() {
        use crossbeam::channel::TryRecvError;
        let table = SessionTable::default();
        let rx = table.register(0, 4);
        // Router death closes the table: the registered session's sender is
        // dropped so its receive loop sees a disconnect, not a timeout.
        table.close();
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        // Later sessions fail fast the same way instead of waiting out
        // their whole deadline.
        let rx2 = table.register(10, 4);
        assert!(matches!(rx2.try_recv(), Err(TryRecvError::Disconnected)));
        // Routing into a closed table is a no-op, not a panic.
        table.route(QueryResult {
            query_id: 1,
            shard: 0,
            ids: vec![],
            scores: vec![],
            candidates_seen: 0,
        });
    }

    #[test]
    fn concurrent_sessions_match_serial_results() {
        let d = dataset(2_000, 24);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        let opts = SearchOptions::new(5).with_nprobe(4);
        let batches: Vec<VectorStore> = (0..4)
            .map(|t| {
                let rows: Vec<usize> = (0..16).map(|i| (t * 97 + i * 13) % d.base.len()).collect();
                d.base.gather(&rows)
            })
            .collect();
        let serial: Vec<_> = batches
            .iter()
            .map(|b| engine.search_batch(b, &opts).unwrap().results)
            .collect();
        let concurrent: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .iter()
                .map(|b| s.spawn(|| engine.search_batch(b, &opts).unwrap().results))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (se, co) in serial.iter().zip(&concurrent) {
            for (a, b) in se.iter().zip(co) {
                assert_equivalent(a, b);
            }
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn concurrent_outstanding_load_settles_to_zero() {
        let d = dataset(1_500, 16);
        // Non-pipelined mode dispatches every shard visit at once, the
        // regression case for shard-matched discharge.
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(16)
            .seed(7)
            .pipeline(false)
            .build()
            .unwrap();
        let engine = HarmonyEngine::build(config, &d.base).unwrap();
        let opts = SearchOptions::new(5).with_nprobe(8);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _ = engine.search_batch(&d.queries, &opts).unwrap();
                });
            }
        });
        let leftover: f64 = engine.outstanding_load().iter().sum();
        assert!(
            leftover.abs() < 1e-6,
            "outstanding load must settle to ~0, got {leftover}"
        );
        engine.shutdown().unwrap();
    }

    #[test]
    fn stats_collection_runs_alongside_search_sessions() {
        let d = dataset(1_200, 16);
        let engine = engine_with(EngineMode::Harmony, &d.base);
        let opts = SearchOptions::new(5).with_nprobe(4);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..3 {
                    let _ = engine.search_batch(&d.queries, &opts).unwrap();
                }
            });
            s.spawn(|| {
                for _ in 0..3 {
                    let stats = engine.collect_stats().unwrap();
                    assert_eq!(stats.worker_memory_bytes.len(), 4);
                }
            });
        });
        engine.shutdown().unwrap();
    }

    #[test]
    fn namespaces_are_isolated_tenants() {
        let data = dataset(1_200, 16);
        let engine = engine_with(EngineMode::Harmony, &data.base);
        let opts = SearchOptions::new(10).with_nprobe(4);
        let baseline: Vec<Vec<Neighbor>> = (0..5)
            .map(|i| engine.search(data.base.row(i), &opts).unwrap().neighbors)
            .collect();

        let tenant = SyntheticSpec::clustered(400, 16, 4)
            .with_seed(99)
            .generate();
        let ns = engine
            .create_namespace(&NamespaceConfig::default().with_nlist(8), &tenant.base)
            .unwrap();
        assert!(ns > 0, "tenant namespaces start above the default");
        assert_eq!(engine.namespace_ids(), vec![0, ns]);

        // Tenant self-queries resolve inside the tenant's own id space.
        for row in [0usize, 100, 399] {
            let got = engine
                .search_ns(ns, tenant.base.row(row), &opts)
                .unwrap()
                .neighbors;
            assert_eq!(
                got.first().map(|n| n.id),
                Some(tenant.base.id(row)),
                "tenant row {row} must find itself in its own namespace"
            );
        }

        // The default namespace is unaffected by the tenant's existence.
        for (i, want) in baseline.iter().enumerate() {
            let got = engine.search(data.base.row(i), &opts).unwrap().neighbors;
            assert_eq!(
                ids(&got),
                ids(want),
                "ns0 results must not change when a tenant is added"
            );
        }

        // Unknown namespaces are a configuration error, not a panic.
        assert!(matches!(
            engine.search_ns(42, data.base.row(0), &opts),
            Err(CoreError::Config(_))
        ));
        engine.shutdown().unwrap();
    }

    #[test]
    fn namespace_tier_roundtrip_is_bit_identical() {
        let data = dataset(1_000, 16);
        let engine = engine_with(EngineMode::Harmony, &data.base);
        let opts = SearchOptions::new(10).with_nprobe(4);
        let hot: Vec<Vec<Neighbor>> = (0..5)
            .map(|i| engine.search(data.base.row(i), &opts).unwrap().neighbors)
            .collect();
        assert_eq!(engine.namespace_tier(0).unwrap(), Temperature::Hot);

        // Demote to cold: blocks spill to disk and fault back on demand.
        engine.set_namespace_tier(0, Temperature::Cold).unwrap();
        assert_eq!(engine.namespace_tier(0).unwrap(), Temperature::Cold);
        let stats = engine.collect_stats().unwrap();
        assert!(
            stats.spilled_block_bytes > 0,
            "cold namespace must have disk-resident blocks"
        );
        for (i, want) in hot.iter().enumerate() {
            let got = engine.search(data.base.row(i), &opts).unwrap().neighbors;
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.id, w.id, "cold results must match hot results");
                assert_eq!(
                    g.score.to_bits(),
                    w.score.to_bits(),
                    "spilled blocks must round-trip bit-identically"
                );
            }
        }

        // Re-promote: everything resident again, still identical.
        engine.set_namespace_tier(0, Temperature::Hot).unwrap();
        let stats = engine.collect_stats().unwrap();
        assert_eq!(stats.spilled_block_bytes, 0, "hot means no spilled blocks");
        assert_eq!(stats.cache_block_bytes, 0, "hot bypasses the block cache");
        for (i, want) in hot.iter().enumerate() {
            let got = engine.search(data.base.row(i), &opts).unwrap().neighbors;
            assert_eq!(ids(&got), ids(want));
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn background_compactor_folds_pending_deltas() {
        let data = dataset(600, 16);
        let config = HarmonyConfig::builder()
            .n_machines(2)
            .nlist(8)
            .seed(7)
            .compact_after(4)
            .compact_interval_ms(10)
            .build();
        let engine = HarmonyEngine::build(config.unwrap(), &data.base).unwrap();
        for i in 0..5u64 {
            let mut v = data.base.row(i as usize).to_vec();
            v[0] += 0.25;
            engine.upsert(10_000 + i, &v).unwrap();
        }
        // The background thread owns folding: wait for it to fire.
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.pending_deltas() > 0 {
            assert!(
                Instant::now() < deadline,
                "compactor did not fold {} pending deltas in time",
                engine.pending_deltas()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(engine.current_epoch() > 0, "folding publishes a new epoch");
        // The folded rows are still searchable, now from the IVF lists.
        let mut q = data.base.row(0).to_vec();
        q[0] += 0.25;
        let opts = SearchOptions::new(1).with_nprobe(8);
        let got = engine.search(&q, &opts).unwrap().neighbors;
        assert_eq!(got.first().map(|n| n.id), Some(10_000));
        engine.shutdown().unwrap();
    }

    #[test]
    fn namespace_quota_rejects_over_ingest() {
        let data = dataset(500, 16);
        let engine = engine_with(EngineMode::Harmony, &data.base);
        let tenant = SyntheticSpec::clustered(100, 16, 4).with_seed(5).generate();
        let ns = engine
            .create_namespace(
                &NamespaceConfig::default()
                    .with_nlist(4)
                    .with_max_vectors(100),
                &tenant.base,
            )
            .unwrap();

        // The namespace is full: a new id is rejected...
        assert!(matches!(
            engine.upsert_ns(ns, 5_000, &[0.25; 16]),
            Err(CoreError::Config(_))
        ));
        // ...but replacing a live id never grows the namespace.
        engine.upsert_ns(ns, 3, &[0.25; 16]).unwrap();
        // Deleting frees quota for a new id.
        assert!(engine.delete_ns(ns, 7).unwrap());
        engine.upsert_ns(ns, 5_000, &[0.5; 16]).unwrap();
        // The default namespace has no quota and is unaffected.
        engine.upsert(9_999, &[0.75; 16]).unwrap();

        // A base already over quota is rejected at creation.
        assert!(matches!(
            engine.create_namespace(
                &NamespaceConfig::default()
                    .with_nlist(4)
                    .with_max_vectors(10),
                &tenant.base,
            ),
            Err(CoreError::Config(_))
        ));
        engine.shutdown().unwrap();
    }
}
