//! Error type for the Harmony engine.

use std::fmt;

use harmony_cluster::{ClusterError, CodecError};
use harmony_index::IndexError;

/// Errors produced by engine construction and search.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid configuration.
    Config(String),
    /// An indexing substrate error.
    Index(IndexError),
    /// A cluster transport error.
    Cluster(ClusterError),
    /// A wire codec error.
    Codec(CodecError),
    /// A worker replied with something the protocol does not allow here.
    Protocol(String),
    /// A runtime resource failure outside the other categories (thread
    /// spawn, missing engine state).
    Runtime(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::Index(e) => write!(f, "index error: {e}"),
            CoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            CoreError::Codec(e) => write!(f, "codec error: {e}"),
            CoreError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            CoreError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Index(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            CoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexError> for CoreError {
    fn from(e: IndexError) -> Self {
        CoreError::Index(e)
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let e: CoreError = IndexError::NotTrained.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("not trained"));
        let e: CoreError = ClusterError::Timeout.into();
        assert!(matches!(e, CoreError::Cluster(_)));
        let e: CoreError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, CoreError::Codec(_)));
    }

    #[test]
    fn config_and_protocol_messages_verbatim() {
        assert!(CoreError::Config("bad nlist".into())
            .to_string()
            .contains("bad nlist"));
        assert!(CoreError::Protocol("unexpected ack".into())
            .to_string()
            .contains("unexpected ack"));
    }
}
