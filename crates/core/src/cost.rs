//! The cost model of §4.2.1 (Table 1).
//!
//! For a candidate plan `π = (B_vec, B_dim)` and a workload profile, the
//! model estimates
//!
//! ```text
//! C(π, Q) = Σ_q  Σ_blocks [c_comp(b, q) + c_comm(b, q)]  +  α · I(π)
//! ```
//!
//! * `c_comp` — expected distance-computation time: probed candidates ×
//!   block width × a calibrated per-(point·dimension) cost.
//! * `c_comm` — modeled network time: each visited shard receives the query
//!   split across its `B_dim` blocks (total bytes unchanged — §4.2.2 — but
//!   `B_dim×` more messages, each paying latency) plus the returned partial
//!   results.
//! * `I(π)` — the standard deviation of per-machine computation load
//!   (§4.2.1), weighted by the user's `α`.
//!
//! The *probe frequencies* in the profile are what make the model adaptive:
//! under a uniform workload every cluster is probed equally and the
//! latency-light pure-vector plan wins; under a skewed workload hot clusters
//! concentrate `Load(n, π)` on few machines, `I(π)` explodes for
//! vector-heavy plans, and the model shifts toward dimension-heavy hybrids —
//! exactly the trade-off of Figs. 6 & 7.

use harmony_cluster::NetworkModel;

use crate::error::CoreError;
use crate::partition::{PartitionPlan, ShardAssignment};

/// Expected workload characteristics fed to the planner.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Inverted-list sizes, indexed by cluster.
    pub list_sizes: Vec<usize>,
    /// Relative probe frequency per cluster (any non-negative scale).
    /// `uniform` profiles use all-ones.
    pub probe_freq: Vec<f64>,
    /// Vector dimensionality.
    pub dim: usize,
    /// Expected queries per batch.
    pub queries: usize,
    /// Probed lists per query.
    pub nprobe: usize,
    /// Results per query (controls result-message size).
    pub k: usize,
    /// Upserted rows not yet folded into IVF lists. Delta rows force a
    /// visit to every shard holding them regardless of probe proximity,
    /// and each visit scans the full delta prefix — a real cost the
    /// planner must see, or it will under-charge layouts with many
    /// vector shards while an ingest burst is in flight.
    pub pending_deltas: usize,
}

impl WorkloadProfile {
    /// Validating constructor: the cost model indexes `probe_freq` and
    /// `list_sizes` in lockstep, so a length mismatch (easy to produce when
    /// profiles are assembled from runtime statistics) would read out of
    /// bounds or silently truncate the workload. All shape and value
    /// invariants are checked here instead.
    ///
    /// # Errors
    /// [`CoreError::Config`] when the lengths differ, a frequency is
    /// negative or non-finite, or `dim` is zero.
    pub fn new(
        list_sizes: Vec<usize>,
        probe_freq: Vec<f64>,
        dim: usize,
        queries: usize,
        nprobe: usize,
        k: usize,
    ) -> Result<Self, CoreError> {
        if probe_freq.len() != list_sizes.len() {
            return Err(CoreError::Config(format!(
                "workload profile shape mismatch: {} probe frequencies for {} lists",
                probe_freq.len(),
                list_sizes.len()
            )));
        }
        if let Some(f) = probe_freq.iter().find(|f| !f.is_finite() || **f < 0.0) {
            return Err(CoreError::Config(format!(
                "probe frequencies must be finite and non-negative, got {f}"
            )));
        }
        if dim == 0 {
            return Err(CoreError::Config(
                "workload profile needs a positive dimensionality".into(),
            ));
        }
        Ok(Self {
            list_sizes,
            probe_freq,
            dim,
            queries: queries.max(1),
            nprobe: nprobe.max(1),
            k: k.max(1),
            pending_deltas: 0,
        })
    }

    /// Uniform probe frequencies over the given list sizes.
    pub fn uniform(list_sizes: Vec<usize>, dim: usize, queries: usize, nprobe: usize) -> Self {
        let n = list_sizes.len();
        Self {
            list_sizes,
            probe_freq: vec![1.0; n],
            dim,
            queries,
            nprobe,
            k: 10,
            pending_deltas: 0,
        }
    }

    /// Profile assembled from *observed* per-cluster probe counters (the
    /// supervisor's runtime view), validated like [`WorkloadProfile::new`].
    ///
    /// # Errors
    /// [`CoreError::Config`] on shape mismatches (see
    /// [`WorkloadProfile::new`]).
    pub fn observed(
        list_sizes: Vec<usize>,
        probe_counts: &[u64],
        dim: usize,
        queries: usize,
        nprobe: usize,
        k: usize,
    ) -> Result<Self, CoreError> {
        let freq = probe_counts.iter().map(|&c| c as f64).collect();
        Self::new(list_sizes, freq, dim, queries, nprobe, k)
    }

    /// Sets the number of unfolded delta rows the planner should charge
    /// for (see [`WorkloadProfile::pending_deltas`]).
    #[must_use]
    pub fn with_pending_deltas(mut self, pending_deltas: usize) -> Self {
        self.pending_deltas = pending_deltas;
        self
    }

    /// Replaces the probe frequencies (e.g. observed from a query log).
    ///
    /// # Errors
    /// [`CoreError::Config`] when the length differs from the cluster count
    /// or a frequency is invalid (see [`WorkloadProfile::new`]).
    pub fn with_probe_freq(self, probe_freq: Vec<f64>) -> Result<Self, CoreError> {
        Self::new(
            self.list_sizes,
            probe_freq,
            self.dim,
            self.queries,
            self.nprobe,
            self.k,
        )
    }

    /// Expected number of probes of cluster `c` across the whole batch.
    fn probes_of(&self, c: usize) -> f64 {
        let total: f64 = self.probe_freq.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.probe_freq[c] / total * (self.queries * self.nprobe) as f64
    }

    /// Per-cluster expected work in (point · dimension) units.
    pub fn cluster_work(&self) -> Vec<f64> {
        (0..self.list_sizes.len())
            .map(|c| self.probes_of(c) * self.list_sizes[c] as f64 * self.dim as f64)
            .collect()
    }
}

/// Estimated cost of one plan, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Total expected computation time across machines.
    pub comp_ns: f64,
    /// Total expected communication time across messages.
    pub comm_ns: f64,
    /// Imbalance factor `I(π)` (std-dev of per-machine compute ns).
    pub imbalance_ns: f64,
    /// `comp + comm + α · imbalance`.
    pub total_ns: f64,
}

/// The cost model: calibrated compute rate + the interconnect model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Nanoseconds to process one (point · dimension) in a distance kernel.
    /// Typical AVX2 hardware lands near 0.1–0.5 ns.
    pub comp_ns_per_point_dim: f64,
    /// Fixed nanoseconds of per-candidate scan overhead (result-heap push,
    /// loop bookkeeping) on top of the kernel itself.
    pub comp_ns_per_candidate: f64,
    /// The interconnect.
    pub net: NetworkModel,
    /// Imbalance weight `α`.
    pub alpha: f64,
    /// Expected per-hop candidate survival rate when dimension-level
    /// pruning is active (Fig. 2a measures ≈ 0.5 per quarter-slice).
    /// `1.0` disables the discount (pruning off).
    pub pruning_survival: f64,
}

impl CostModel {
    /// Model with an assumed compute rate (use [`CostModel::calibrate`] for
    /// a measured one).
    ///
    /// A note on `alpha`: because the paper's objective sums *per-query*
    /// costs (which are invariant to how work is spread over machines) and
    /// adds `α · I(π)`, the imbalance weight is what prices concentration.
    /// The makespan of a plan is roughly `mean_load + c·σ` with `c ≈ 3–4`
    /// for one overloaded machine out of four, so `α ≈ 4` makes the model's
    /// switch point track real throughput; it is exposed as the paper's
    /// user-defined `--α`.
    pub fn new(net: NetworkModel, alpha: f64) -> Self {
        Self {
            comp_ns_per_point_dim: 0.25,
            comp_ns_per_candidate: 12.0,
            net,
            alpha,
            pruning_survival: 1.0,
        }
    }

    /// Sets the expected per-hop pruning survival rate (see
    /// [`CostModel::pruning_survival`]). A pipeline of `B` blocks then does
    /// only `(1 - s^B) / (B (1 - s))` of the naive work on average — this
    /// is what lets dimension-heavy plans win once computation dominates
    /// (the paper's Figs. 6 & 11a regime).
    pub fn with_pruning_survival(mut self, survival: f64) -> Self {
        self.pruning_survival = survival.clamp(0.0, 1.0);
        self
    }

    /// Average fraction of naive per-block work done across a pipeline of
    /// `blocks` hops under the survival model.
    pub fn pruning_discount(&self, blocks: usize) -> f64 {
        let s = self.pruning_survival;
        if blocks <= 1 || s >= 1.0 {
            return 1.0;
        }
        let b = blocks as f64;
        (1.0 - s.powf(b)) / (b * (1.0 - s))
    }

    /// Measures the compute rates of this host: the kernel rate from a bare
    /// L2 scan, and the per-candidate overhead from the *difference* between
    /// an IVF-style scan (kernel + top-k maintenance) and the bare scan.
    pub fn calibrate(mut self) -> Self {
        use harmony_index::distance::l2_sq;
        use harmony_index::TopK;
        const DIM: usize = 128;
        const ROWS: usize = 4_000;
        let a: Vec<f32> = (0..DIM).map(|i| i as f32 * 0.001).collect();
        let matrix: Vec<f32> = (0..ROWS * DIM).map(|i| (i % 97) as f32 * 0.01).collect();

        // Bare kernel scan.
        let t0 = std::time::Instant::now();
        let mut acc = 0.0f32;
        for row in matrix.chunks_exact(DIM) {
            acc += l2_sq(&a, row);
        }
        let kernel_ns = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(acc);

        // IVF-style scan: kernel + threshold check + top-k push.
        let t0 = std::time::Instant::now();
        let mut topk = TopK::new(10);
        for (i, row) in matrix.chunks_exact(DIM).enumerate() {
            let d = l2_sq(&a, row);
            if d <= topk.threshold() {
                topk.push(i as u64, d);
            }
        }
        let scan_ns = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(topk.len());

        let rate = kernel_ns / (ROWS * DIM) as f64;
        self.comp_ns_per_point_dim = rate.clamp(0.02, 10.0);
        let per_candidate = (scan_ns - kernel_ns).max(0.0) / ROWS as f64;
        self.comp_ns_per_candidate = per_candidate.clamp(2.0, 60.0);
        self
    }

    /// Scores one plan against a profile.
    pub fn plan_cost(&self, plan: PartitionPlan, profile: &WorkloadProfile) -> PlanCost {
        let assignment = ShardAssignment::balanced(
            &weights_from(profile),
            plan.vec_shards.min(profile.list_sizes.len().max(1)),
        );
        self.plan_cost_with_assignment(plan, profile, &assignment)
    }

    /// Scores one plan with an explicit cluster→shard assignment.
    pub fn plan_cost_with_assignment(
        &self,
        plan: PartitionPlan,
        profile: &WorkloadProfile,
        assignment: &ShardAssignment,
    ) -> PlanCost {
        let cluster_work = profile.cluster_work();
        let block_frac = 1.0 / plan.dim_blocks as f64;

        // --- Computation: work of machine (s, b) = shard work × block width.
        let mut shard_work = vec![0.0f64; plan.vec_shards];
        for (c, &w) in cluster_work.iter().enumerate() {
            let s = assignment.cluster_to_shard.get(c).copied().unwrap_or(0) as usize;
            shard_work[s.min(plan.vec_shards - 1)] += w;
        }
        let discount = self.pruning_discount(plan.dim_blocks);
        let mut machine_loads = Vec::with_capacity(plan.machines());
        for &sw in &shard_work {
            for _ in 0..plan.dim_blocks {
                machine_loads.push(sw * block_frac * self.comp_ns_per_point_dim * discount);
            }
        }
        let comp_ns: f64 = machine_loads.iter().sum();

        // --- Communication. Per query, per visited shard:
        //   outbound: the query vector split over B_dim messages
        //             (D·4 bytes total + per-message latency/overhead),
        //   pipeline: B_dim - 1 carry hops (ids + partials of survivors),
        //   inbound:  one result message of ~k (id, score) pairs.
        let shard_visit_prob = expected_shard_visits(plan, profile, assignment);
        let visits_per_query: f64 = shard_visit_prob.iter().sum();
        let query_bytes = profile.dim * 4;
        let out_per_visit = {
            let per_block_bytes = query_bytes / plan.dim_blocks.max(1);
            plan.dim_blocks as f64 * self.net.transfer_ns(per_block_bytes) as f64
        };
        // Carry size estimate: survivors shrink along the pipeline; assume
        // the average candidate set is the mean probed-list population and
        // halves per hop once pruning engages.
        let mean_list = mean(&profile.list_sizes);
        let mut carry_ns = 0.0;
        let mut carry_candidates = mean_list * profile.nprobe as f64 / visits_per_query.max(1.0);
        for _ in 1..plan.dim_blocks {
            let bytes = (carry_candidates * 12.0) as usize; // id(8) + partial(4)
            carry_ns += self.net.transfer_ns(bytes) as f64;
            carry_candidates *= 0.5;
        }
        let result_bytes = profile.k * 12;
        let in_per_visit = self.net.transfer_ns(result_bytes) as f64;
        let mut comm_ns =
            profile.queries as f64 * visits_per_query * (out_per_visit + carry_ns + in_per_visit);

        // --- Pending deltas. Unfolded rows are scanned full-width (no
        // pruning, no quantization) by every query, and the shards holding
        // them are visited even when no probe lands there. Charge both:
        // the extra scan work, and the forced visits a probe-driven plan
        // would not otherwise pay. More vector shards spread the deltas
        // wider and force more visits — exactly the pressure that should
        // steer the planner toward fewer shards during an ingest burst.
        let mut comp_ns = comp_ns;
        if profile.pending_deltas > 0 {
            let delta_scan_ns = profile.queries as f64
                * profile.pending_deltas as f64
                * profile.dim as f64
                * self.comp_ns_per_point_dim;
            comp_ns += delta_scan_ns;
            // Deltas land on at most one shard per pending row; assume the
            // worst-case spread. A shard already visited by probes is not
            // re-visited, so only the uncovered fraction is forced.
            let delta_shards = profile.pending_deltas.min(plan.vec_shards) as f64;
            let covered = (visits_per_query / plan.vec_shards as f64).min(1.0);
            let forced_visits = delta_shards * (1.0 - covered);
            comm_ns += profile.queries as f64 * forced_visits * (out_per_visit + in_per_visit);
        }

        // --- Imbalance I(π): std-dev of machine compute loads.
        let imbalance_ns = std_dev(&machine_loads);

        PlanCost {
            comp_ns,
            comm_ns,
            imbalance_ns,
            total_ns: comp_ns + comm_ns + self.alpha * imbalance_ns,
        }
    }

    /// Modeled one-time cost of shipping `bytes` of migration traffic as
    /// `messages` point-to-point transfers over the interconnect: total
    /// byte time plus per-message latency/framing. This is the §4.2.1 cost
    /// model's migration extension — the supervisor only switches plans
    /// when the projected steady-state win amortizes this over its
    /// configured horizon.
    pub fn migration_ns(&self, bytes: u64, messages: u64) -> f64 {
        if messages == 0 {
            return 0.0;
        }
        let per_message = self.net.transfer_ns(0) as f64;
        let byte_ns = (self.net.transfer_ns(bytes as usize) as f64 - per_message).max(0.0);
        byte_ns + messages as f64 * per_message
    }

    /// Picks the cheapest factorization of `n_machines` for the profile.
    /// Returns the plan and its cost.
    pub fn choose_plan(
        &self,
        n_machines: usize,
        profile: &WorkloadProfile,
    ) -> (PartitionPlan, PlanCost) {
        PartitionPlan::enumerate(n_machines)
            .into_iter()
            .filter(|p| p.dim_blocks <= profile.dim.max(1))
            .map(|p| (p, self.plan_cost(p, profile)))
            .min_by(|a, b| a.1.total_ns.total_cmp(&b.1.total_ns))
            .expect("at least one factorization exists")
    }
}

/// Integer weights for LPT packing derived from expected cluster work.
pub fn weights_from(profile: &WorkloadProfile) -> Vec<u64> {
    profile
        .cluster_work()
        .into_iter()
        .map(|w| w.round() as u64 + 1)
        .collect()
}

/// Probability-weighted expected shard visits per query.
fn expected_shard_visits(
    plan: PartitionPlan,
    profile: &WorkloadProfile,
    assignment: &ShardAssignment,
) -> Vec<f64> {
    let mut shard_probes = vec![0.0f64; plan.vec_shards];
    let total: f64 = profile.probe_freq.iter().sum();
    if total <= 0.0 {
        return shard_probes;
    }
    for (c, &f) in profile.probe_freq.iter().enumerate() {
        let s = assignment.cluster_to_shard.get(c).copied().unwrap_or(0) as usize;
        shard_probes[s.min(plan.vec_shards - 1)] += f / total * profile.nprobe as f64;
    }
    // A shard is visited if at least one of its clusters is probed; cap the
    // expectation at 1 visit per shard per query.
    shard_probes.iter().map(|&p| p.min(1.0)).collect()
}

fn mean(v: &[usize]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
}

fn std_dev(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_profile(nlist: usize, dim: usize) -> WorkloadProfile {
        WorkloadProfile::uniform(vec![1000; nlist], dim, 100, 8)
    }

    /// Probe frequencies concentrated on the first `hot` clusters.
    fn skewed_profile(nlist: usize, dim: usize, hot: usize) -> WorkloadProfile {
        let mut freq = vec![0.01; nlist];
        for f in freq.iter_mut().take(hot) {
            *f = 100.0;
        }
        uniform_profile(nlist, dim).with_probe_freq(freq).unwrap()
    }

    #[test]
    fn uniform_workload_prefers_vector_partitioning() {
        let model = CostModel::new(NetworkModel::default(), 4.0);
        let profile = uniform_profile(64, 128);
        let (plan, _) = model.choose_plan(4, &profile);
        assert_eq!(
            plan,
            PartitionPlan::pure_vector(4),
            "uniform loads should pick the latency-light pure-vector plan"
        );
    }

    #[test]
    fn skewed_workload_shifts_toward_dimension_blocks() {
        let model = CostModel::new(NetworkModel::default(), 4.0);
        // One scorching cluster: any vector sharding leaves 3 machines idle.
        let profile = skewed_profile(64, 128, 1);
        let (plan, _) = model.choose_plan(4, &profile);
        assert!(
            plan.dim_blocks > 1,
            "skewed loads should pick dimension blocks, got {}",
            plan.label()
        );
    }

    #[test]
    fn alpha_controls_the_switch_point() {
        // One hot cluster: every plan with more than one shard is imbalanced
        // (four hot clusters would spread evenly over four shards and hide
        // the effect). With α = 0 imbalance is free, so the comm-light
        // vector plan wins; with huge α the balanced plan wins.
        let profile = skewed_profile(64, 128, 1);
        let free = CostModel::new(NetworkModel::default(), 0.0);
        let (plan_free, _) = free.choose_plan(4, &profile);
        assert_eq!(plan_free, PartitionPlan::pure_vector(4));

        let strict = CostModel::new(NetworkModel::default(), 1e6);
        let (plan_strict, _) = strict.choose_plan(4, &profile);
        assert!(plan_strict.dim_blocks > 1);
    }

    #[test]
    fn imbalance_zero_for_uniform_vector_plan() {
        let model = CostModel::new(NetworkModel::default(), 1.0);
        let profile = uniform_profile(64, 128);
        let cost = model.plan_cost(PartitionPlan::pure_vector(4), &profile);
        // 64 equal clusters over 4 shards: LPT packs exactly 16 each.
        assert!(cost.imbalance_ns < 1e-6, "imbalance {}", cost.imbalance_ns);
    }

    #[test]
    fn dimension_plan_always_balanced() {
        let model = CostModel::new(NetworkModel::default(), 1.0);
        let profile = skewed_profile(64, 128, 1);
        let cost = model.plan_cost(PartitionPlan::pure_dimension(4), &profile);
        assert!(cost.imbalance_ns < 1e-6);
        let vec_cost = model.plan_cost(PartitionPlan::pure_vector(4), &profile);
        assert!(vec_cost.imbalance_ns > 0.0);
    }

    #[test]
    fn more_dim_blocks_cost_more_latency() {
        let model = CostModel::new(NetworkModel::default(), 0.0);
        let profile = uniform_profile(64, 128);
        let v = model.plan_cost(PartitionPlan::pure_vector(4), &profile);
        let d = model.plan_cost(PartitionPlan::pure_dimension(4), &profile);
        assert!(
            d.comm_ns > v.comm_ns,
            "dimension plan must pay more messages: {} vs {}",
            d.comm_ns,
            v.comm_ns
        );
    }

    #[test]
    fn total_includes_alpha_weighted_imbalance() {
        let profile = skewed_profile(16, 64, 1);
        let m0 = CostModel::new(NetworkModel::default(), 0.0);
        let m1 = CostModel::new(NetworkModel::default(), 2.0);
        let plan = PartitionPlan::pure_vector(4);
        let c0 = m0.plan_cost(plan, &profile);
        let c1 = m1.plan_cost(plan, &profile);
        assert_eq!(c0.comp_ns, c1.comp_ns);
        assert!((c1.total_ns - (c1.comp_ns + c1.comm_ns + 2.0 * c1.imbalance_ns)).abs() < 1e-6);
        assert!(c1.total_ns > c0.total_ns);
    }

    #[test]
    fn calibrate_lands_in_sane_band() {
        let model = CostModel::new(NetworkModel::default(), 1.0).calibrate();
        assert!(model.comp_ns_per_point_dim >= 0.02);
        assert!(model.comp_ns_per_point_dim <= 10.0);
    }

    #[test]
    fn choose_plan_respects_dimensionality_limit() {
        let model = CostModel::new(NetworkModel::default(), 1.0);
        // 2-dimensional data cannot be split into 4 dim blocks.
        let profile = WorkloadProfile::uniform(vec![100; 8], 2, 10, 2);
        let (plan, _) = model.choose_plan(4, &profile);
        assert!(plan.dim_blocks <= 2);
    }

    #[test]
    fn cluster_work_scales_with_probe_frequency() {
        let profile = uniform_profile(4, 16)
            .with_probe_freq(vec![3.0, 1.0, 1.0, 1.0])
            .unwrap();
        let work = profile.cluster_work();
        assert!((work[0] / work[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_profiles_rejected() {
        // 4 lists, 3 frequencies: the bug this constructor exists to catch.
        let err = WorkloadProfile::new(vec![100; 4], vec![1.0; 3], 16, 10, 2, 10);
        assert!(matches!(err, Err(crate::error::CoreError::Config(_))));
        let err = uniform_profile(4, 16).with_probe_freq(vec![1.0; 5]);
        assert!(matches!(err, Err(crate::error::CoreError::Config(_))));
        // Invalid frequency values are rejected too.
        let err = WorkloadProfile::new(vec![100; 2], vec![1.0, f64::NAN], 16, 10, 2, 10);
        assert!(err.is_err());
        let err = WorkloadProfile::new(vec![100; 2], vec![1.0, -1.0], 16, 10, 2, 10);
        assert!(err.is_err());
        // And the happy path works.
        assert!(WorkloadProfile::new(vec![100; 2], vec![1.0, 2.0], 16, 10, 2, 10).is_ok());
    }

    #[test]
    fn observed_profile_normalizes_counts() {
        let p = WorkloadProfile::observed(vec![100; 3], &[30, 10, 0], 16, 20, 4, 10).unwrap();
        assert_eq!(p.probe_freq, vec![30.0, 10.0, 0.0]);
        assert!(WorkloadProfile::observed(vec![100; 3], &[1, 2], 16, 20, 4, 10).is_err());
    }

    #[test]
    fn migration_cost_scales_with_bytes_and_messages() {
        let model = CostModel::new(NetworkModel::default(), 1.0);
        assert_eq!(model.migration_ns(0, 0), 0.0);
        let small = model.migration_ns(1_000, 1);
        let big = model.migration_ns(1_000_000, 1);
        assert!(big > small);
        let many = model.migration_ns(1_000, 100);
        assert!(many > small, "per-message latency must be charged");
    }

    #[test]
    fn pending_deltas_raise_every_plan_cost() {
        let model = CostModel::new(NetworkModel::default(), 4.0);
        let calm = uniform_profile(64, 128);
        let burst = uniform_profile(64, 128).with_pending_deltas(5_000);
        for plan in PartitionPlan::enumerate(4) {
            let a = model.plan_cost(plan, &calm).total_ns;
            let b = model.plan_cost(plan, &burst).total_ns;
            assert!(
                b > a,
                "plan {} must charge for 5k pending deltas ({a} vs {b})",
                plan.label()
            );
        }
    }

    #[test]
    fn delta_burst_penalizes_wide_vector_sharding_more() {
        let model = CostModel::new(NetworkModel::default(), 4.0);
        // A narrowly-probed workload: most shards are not visited, so
        // forced delta visits are pure overhead that scales with the
        // shard count.
        let mut profile = skewed_profile(64, 128, 2);
        profile.nprobe = 1;
        let burst = profile.clone().with_pending_deltas(10_000);
        let wide = PartitionPlan::enumerate(4)
            .into_iter()
            .find(|p| p.vec_shards == 4)
            .unwrap();
        let narrow = PartitionPlan::enumerate(4)
            .into_iter()
            .find(|p| p.vec_shards == 1)
            .unwrap();
        let wide_extra =
            model.plan_cost(wide, &burst).comm_ns - model.plan_cost(wide, &profile).comm_ns;
        let narrow_extra =
            model.plan_cost(narrow, &burst).comm_ns - model.plan_cost(narrow, &profile).comm_ns;
        assert!(
            wide_extra > narrow_extra,
            "forced delta visits must cost more under wide sharding \
             ({wide_extra} vs {narrow_extra})"
        );
    }
}
