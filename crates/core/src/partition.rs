//! Multi-granularity partition plans and shard packing.
//!
//! A [`PartitionPlan`] is the pair `(B_vec, B_dim)` of §4.2: the dataset is
//! cut into `B_vec` vector shards (whole IVF lists) × `B_dim` dimension
//! blocks (contiguous dimension ranges), and each of the `B_vec · B_dim`
//! grid blocks `V_i D_j` lives on one machine (Fig. 4a). Pure vector-based
//! partitioning is the degenerate plan `(N, 1)`; pure dimension-based
//! partitioning is `(1, N)`.
//!
//! [`ShardAssignment`] maps every IVF list to its shard. Harmony's
//! *balanced* packing is weighted LPT (longest-processing-time-first) over
//! `list_size × probe_frequency`, the standard 4/3-approximation for
//! makespan; the *naive* packing used as the ablation baseline assigns lists
//! round-robin, oblivious to size.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use harmony_cluster::NodeId;
use harmony_index::DimRange;

use crate::error::CoreError;

/// A multi-granularity partition plan `π = (B_vec, B_dim)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionPlan {
    /// Number of vector-based shards `|B_vec(π)|`.
    pub vec_shards: usize,
    /// Number of dimension-based blocks `|B_dim(π)|`.
    pub dim_blocks: usize,
}

impl PartitionPlan {
    /// Creates a plan; both factors must be positive.
    ///
    /// # Errors
    /// [`CoreError::Config`] when a factor is zero.
    pub fn new(vec_shards: usize, dim_blocks: usize) -> Result<Self, CoreError> {
        if vec_shards == 0 || dim_blocks == 0 {
            return Err(CoreError::Config(format!(
                "partition factors must be positive, got {vec_shards}x{dim_blocks}"
            )));
        }
        Ok(Self {
            vec_shards,
            dim_blocks,
        })
    }

    /// Pure vector-based partitioning over `n` machines (Harmony-vector).
    pub fn pure_vector(n: usize) -> Self {
        Self {
            vec_shards: n.max(1),
            dim_blocks: 1,
        }
    }

    /// Pure dimension-based partitioning over `n` machines
    /// (Harmony-dimension).
    pub fn pure_dimension(n: usize) -> Self {
        Self {
            vec_shards: 1,
            dim_blocks: n.max(1),
        }
    }

    /// Machines the plan occupies (`B_vec × B_dim`).
    pub fn machines(&self) -> usize {
        self.vec_shards * self.dim_blocks
    }

    /// All factorizations `a × b = n` as candidate plans, vector-heavy
    /// first. The planner scores each with the cost model.
    pub fn enumerate(n_machines: usize) -> Vec<PartitionPlan> {
        let mut plans = Vec::new();
        for a in (1..=n_machines).rev() {
            if n_machines.is_multiple_of(a) {
                plans.push(PartitionPlan {
                    vec_shards: a,
                    dim_blocks: n_machines / a,
                });
            }
        }
        plans
    }

    /// The machine hosting grid block `(shard, dim_block)`.
    ///
    /// Machines are laid out row-major: shard `s` occupies the contiguous
    /// range `[s·B_dim, (s+1)·B_dim)`, so one shard's dimension pipeline
    /// never leaves its row (Fig. 4a's M1..M6 layout).
    ///
    /// # Panics
    /// Panics when the coordinates exceed the plan.
    #[inline]
    pub fn machine_of(&self, shard: usize, dim_block: usize) -> NodeId {
        assert!(shard < self.vec_shards && dim_block < self.dim_blocks);
        shard * self.dim_blocks + dim_block
    }

    /// Inverse of [`PartitionPlan::machine_of`].
    ///
    /// # Panics
    /// Panics when `machine` exceeds the plan.
    #[inline]
    pub fn block_of(&self, machine: NodeId) -> (usize, usize) {
        assert!(machine < self.machines());
        (machine / self.dim_blocks, machine % self.dim_blocks)
    }

    /// The dimension ranges of the plan's blocks for vectors of width `dim`.
    ///
    /// # Errors
    /// [`CoreError::Config`] when there are more blocks than dimensions.
    pub fn dim_ranges(&self, dim: usize) -> Result<Vec<DimRange>, CoreError> {
        if self.dim_blocks > dim {
            return Err(CoreError::Config(format!(
                "cannot split {dim} dimensions into {} blocks",
                self.dim_blocks
            )));
        }
        Ok(DimRange::split(dim, self.dim_blocks))
    }

    /// Short label used in reports, e.g. `"2v x 2d"`.
    pub fn label(&self) -> String {
        format!("{}v x {}d", self.vec_shards, self.dim_blocks)
    }
}

/// Assignment of IVF lists (clusters) to vector shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// `cluster_to_shard[c]` = shard owning cluster `c`.
    pub cluster_to_shard: Vec<u32>,
    /// Total weight packed into each shard.
    pub shard_weights: Vec<u64>,
}

impl ShardAssignment {
    /// Balanced packing: weighted LPT. `weights[c]` is the expected work of
    /// cluster `c` (list size × probe frequency). Heaviest cluster first,
    /// always into the lightest shard.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn balanced(weights: &[u64], shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_unstable_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
        let mut cluster_to_shard = vec![0u32; weights.len()];
        let mut shard_weights = vec![0u64; shards];
        // Min-heap over (weight, shard): each placement is O(log S) instead
        // of an O(S) scan, so replanning ticks stay cheap at large shard
        // counts. `Reverse((w, s))` pops the lightest shard, ties to the
        // lowest index — identical packing to the previous linear scan.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..shards).map(|s| Reverse((0u64, s))).collect();
        for c in order {
            let Reverse((w, s)) = heap.pop().expect("shards > 0");
            cluster_to_shard[c] = s as u32;
            shard_weights[s] = w + weights[c];
            heap.push(Reverse((shard_weights[s], s)));
        }
        Self {
            cluster_to_shard,
            shard_weights,
        }
    }

    /// Incremental rebalance: starts from `prev` and greedily moves clusters
    /// from the heaviest shard to the lightest one until no move improves
    /// the spread or the moved weight would exceed
    /// `max_move_frac · total_weight`.
    ///
    /// Bounding the moved weight is what makes this suitable for *live*
    /// replanning: each moved cluster later becomes real migration traffic,
    /// so the supervisor caps how much data one tick may put on the wire.
    /// When `prev` does not match (`shards` or cluster count changed) the
    /// incremental path is impossible and this falls back to a fresh
    /// [`ShardAssignment::balanced`] packing.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn rebalance(
        prev: &ShardAssignment,
        weights: &[u64],
        shards: usize,
        max_move_frac: f64,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        if prev.shards() != shards || prev.cluster_to_shard.len() != weights.len() {
            return Self::balanced(weights, shards);
        }
        let mut cluster_to_shard = prev.cluster_to_shard.clone();
        // Shard weights re-derived under the *new* weights: the profile that
        // produced `prev` may be stale.
        let mut shard_weights = vec![0u64; shards];
        for (c, &w) in weights.iter().enumerate() {
            shard_weights[cluster_to_shard[c] as usize] += w;
        }
        let total: u64 = shard_weights.iter().sum();
        let mut budget = (total as f64 * max_move_frac.clamp(0.0, 1.0)) as u64;

        for _ in 0..weights.len().max(1) {
            let h = (0..shards)
                .max_by_key(|&s| (shard_weights[s], Reverse(s)))
                .expect("shards > 0");
            let l = (0..shards)
                .min_by_key(|&s| (shard_weights[s], s))
                .expect("shards > 0");
            let gap = shard_weights[h] - shard_weights[l];
            if gap == 0 {
                break;
            }
            // Heaviest movable cluster that still shrinks the spread: after
            // the move both endpoints stay strictly below the old maximum.
            let candidate = (0..weights.len())
                .filter(|&c| cluster_to_shard[c] as usize == h)
                .filter(|&c| weights[c] > 0 && weights[c] < gap && weights[c] <= budget)
                .max_by_key(|&c| (weights[c], Reverse(c)));
            let Some(c) = candidate else { break };
            cluster_to_shard[c] = l as u32;
            shard_weights[h] -= weights[c];
            shard_weights[l] += weights[c];
            budget -= weights[c];
        }
        Self {
            cluster_to_shard,
            shard_weights,
        }
    }

    /// Clusters whose shard differs between `self` and `other` (the
    /// migration set of a rebalance).
    pub fn moved_clusters(&self, other: &ShardAssignment) -> Vec<u32> {
        self.cluster_to_shard
            .iter()
            .zip(&other.cluster_to_shard)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Naive packing: cluster `c` → shard `c % shards`, ignoring sizes.
    /// The ablation baseline for Fig. 9's "+Balanced load".
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn round_robin(weights: &[u64], shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut cluster_to_shard = vec![0u32; weights.len()];
        let mut shard_weights = vec![0u64; shards];
        for (c, &w) in weights.iter().enumerate() {
            let s = c % shards;
            cluster_to_shard[c] = s as u32;
            shard_weights[s] += w;
        }
        Self {
            cluster_to_shard,
            shard_weights,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_weights.len()
    }

    /// Clusters owned by shard `s`, ascending.
    pub fn clusters_of(&self, s: usize) -> Vec<u32> {
        self.cluster_to_shard
            .iter()
            .enumerate()
            .filter(|(_, &shard)| shard as usize == s)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Ratio of the heaviest shard's weight to the *mean* shard weight
    /// (1.0 = perfectly even).
    ///
    /// The mean — not the minimum — is the denominator on purpose: when
    /// there are more shards than (non-empty) clusters, some shards are
    /// empty by construction and a max/min ratio would report `∞` for a
    /// packing that is as good as it can possibly be. Max/mean degrades
    /// gracefully instead: an unavoidable empty shard raises the ratio in
    /// proportion to the weight the other shards absorb. The one remaining
    /// degenerate case — every shard empty (no clusters, or all weights
    /// zero) — reports 1.0, "as balanced as it gets".
    pub fn imbalance_ratio(&self) -> f64 {
        let max = self.shard_weights.iter().copied().max().unwrap_or(0);
        let total: u64 = self.shard_weights.iter().sum();
        if total == 0 || self.shard_weights.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.shard_weights.len() as f64;
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_covers_all_factorizations() {
        let plans = PartitionPlan::enumerate(12);
        let expected: Vec<(usize, usize)> = vec![(12, 1), (6, 2), (4, 3), (3, 4), (2, 6), (1, 12)];
        let got: Vec<(usize, usize)> = plans.iter().map(|p| (p.vec_shards, p.dim_blocks)).collect();
        assert_eq!(got, expected);
        for p in &plans {
            assert_eq!(p.machines(), 12);
        }
    }

    #[test]
    fn prime_machine_counts_have_two_plans() {
        let plans = PartitionPlan::enumerate(7);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0], PartitionPlan::pure_vector(7));
        assert_eq!(plans[1], PartitionPlan::pure_dimension(7));
    }

    #[test]
    fn machine_grid_roundtrips() {
        let plan = PartitionPlan::new(3, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in 0..3 {
            for b in 0..4 {
                let m = plan.machine_of(s, b);
                assert!(m < plan.machines());
                assert!(seen.insert(m), "machine {m} double-assigned");
                assert_eq!(plan.block_of(m), (s, b));
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn shard_rows_are_contiguous() {
        let plan = PartitionPlan::new(2, 3).unwrap();
        assert_eq!(plan.machine_of(0, 0), 0);
        assert_eq!(plan.machine_of(0, 2), 2);
        assert_eq!(plan.machine_of(1, 0), 3);
        assert_eq!(plan.machine_of(1, 2), 5);
    }

    #[test]
    fn dim_ranges_cover_dimensionality() {
        let plan = PartitionPlan::new(2, 3).unwrap();
        let ranges = plan.dim_ranges(10).unwrap();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges.iter().map(DimRange::len).sum::<usize>(), 10);
        assert!(plan.dim_ranges(2).is_err());
    }

    #[test]
    fn zero_factors_rejected() {
        assert!(PartitionPlan::new(0, 4).is_err());
        assert!(PartitionPlan::new(4, 0).is_err());
    }

    #[test]
    fn balanced_packing_beats_round_robin_on_skewed_lists() {
        // Pathological: sizes 100, 1, 1, 1, 100, 1, 1, 1 — round-robin on 2
        // shards puts both giants on shard 0.
        let weights = vec![100, 1, 1, 1, 100, 1, 1, 1];
        let rr = ShardAssignment::round_robin(&weights, 2);
        let lpt = ShardAssignment::balanced(&weights, 2);
        assert!(lpt.imbalance_ratio() < rr.imbalance_ratio());
        assert!(lpt.imbalance_ratio() < 1.1, "{:?}", lpt.shard_weights);
        // Both cover every cluster exactly once.
        for a in [&rr, &lpt] {
            assert_eq!(a.cluster_to_shard.len(), 8);
            let total: u64 = a.shard_weights.iter().sum();
            assert_eq!(total, 206);
        }
    }

    #[test]
    fn clusters_of_partitions_the_clusters() {
        let weights = vec![5, 3, 8, 1, 9, 2];
        let a = ShardAssignment::balanced(&weights, 3);
        let mut all: Vec<u32> = (0..3).flat_map(|s| a.clusters_of(s)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn balanced_packing_is_deterministic() {
        let weights = vec![7, 7, 7, 7, 7];
        let a = ShardAssignment::balanced(&weights, 2);
        let b = ShardAssignment::balanced(&weights, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn imbalance_ratio_finite_with_unavoidable_empty_shards() {
        // One cluster over two shards: a perfect packing still leaves one
        // shard empty. The ratio must stay finite (max/mean = 10/5 = 2),
        // not blow up to ∞ as the old max/min definition did.
        let a = ShardAssignment::balanced(&[10], 2);
        assert_eq!(a.imbalance_ratio(), 2.0);
        // Fully degenerate packings (no weight anywhere) report 1.0.
        let b = ShardAssignment::balanced(&[], 2);
        assert_eq!(b.imbalance_ratio(), 1.0);
        let c = ShardAssignment::balanced(&[0, 0], 2);
        assert_eq!(c.imbalance_ratio(), 1.0);
    }

    #[test]
    fn imbalance_ratio_is_one_for_even_packings() {
        let a = ShardAssignment::balanced(&[5, 5, 5, 5], 4);
        assert_eq!(a.imbalance_ratio(), 1.0);
    }

    #[test]
    fn rebalance_moves_weight_toward_even() {
        // Start from a deliberately lopsided assignment.
        let weights = vec![50, 10, 10, 10, 10, 10];
        let prev = ShardAssignment {
            cluster_to_shard: vec![0, 0, 0, 0, 0, 1],
            shard_weights: vec![90, 10],
        };
        let next = ShardAssignment::rebalance(&prev, &weights, 2, 1.0);
        assert!(next.imbalance_ratio() < prev.imbalance_ratio());
        let total: u64 = next.shard_weights.iter().sum();
        assert_eq!(total, 100);
        // Already-balanced assignments are left alone.
        let again = ShardAssignment::rebalance(&next, &weights, 2, 1.0);
        assert_eq!(again.cluster_to_shard, next.cluster_to_shard);
    }

    #[test]
    fn rebalance_respects_move_budget() {
        let weights = vec![40, 40, 40, 40];
        let prev = ShardAssignment {
            cluster_to_shard: vec![0, 0, 0, 0],
            shard_weights: vec![160, 0],
        };
        // A zero budget may move nothing.
        let frozen = ShardAssignment::rebalance(&prev, &weights, 2, 0.0);
        assert_eq!(frozen.cluster_to_shard, prev.cluster_to_shard);
        // A 30 % budget (48 weight) fits exactly one 40-weight cluster.
        let bounded = ShardAssignment::rebalance(&prev, &weights, 2, 0.3);
        assert_eq!(prev.moved_clusters(&bounded).len(), 1);
    }

    #[test]
    fn rebalance_falls_back_on_shape_mismatch() {
        let weights = vec![5, 5, 5, 5];
        let prev = ShardAssignment::balanced(&weights, 2);
        // Different shard count: incremental start is impossible.
        let fresh = ShardAssignment::rebalance(&prev, &weights, 4, 0.1);
        assert_eq!(fresh, ShardAssignment::balanced(&weights, 4));
    }

    #[test]
    fn moved_clusters_diffs_assignments() {
        let a = ShardAssignment {
            cluster_to_shard: vec![0, 1, 0],
            shard_weights: vec![2, 1],
        };
        let b = ShardAssignment {
            cluster_to_shard: vec![0, 0, 1],
            shard_weights: vec![2, 1],
        };
        assert_eq!(a.moved_clusters(&b), vec![1, 2]);
        assert!(a.moved_clusters(&a).is_empty());
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(PartitionPlan::new(2, 3).unwrap().label(), "2v x 3d");
    }
}
