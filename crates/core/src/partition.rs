//! Multi-granularity partition plans and shard packing.
//!
//! A [`PartitionPlan`] is the pair `(B_vec, B_dim)` of §4.2: the dataset is
//! cut into `B_vec` vector shards (whole IVF lists) × `B_dim` dimension
//! blocks (contiguous dimension ranges), and each of the `B_vec · B_dim`
//! grid blocks `V_i D_j` lives on one machine (Fig. 4a). Pure vector-based
//! partitioning is the degenerate plan `(N, 1)`; pure dimension-based
//! partitioning is `(1, N)`.
//!
//! [`ShardAssignment`] maps every IVF list to its shard. Harmony's
//! *balanced* packing is weighted LPT (longest-processing-time-first) over
//! `list_size × probe_frequency`, the standard 4/3-approximation for
//! makespan; the *naive* packing used as the ablation baseline assigns lists
//! round-robin, oblivious to size.

use harmony_cluster::NodeId;
use harmony_index::DimRange;

use crate::error::CoreError;

/// A multi-granularity partition plan `π = (B_vec, B_dim)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionPlan {
    /// Number of vector-based shards `|B_vec(π)|`.
    pub vec_shards: usize,
    /// Number of dimension-based blocks `|B_dim(π)|`.
    pub dim_blocks: usize,
}

impl PartitionPlan {
    /// Creates a plan; both factors must be positive.
    ///
    /// # Errors
    /// [`CoreError::Config`] when a factor is zero.
    pub fn new(vec_shards: usize, dim_blocks: usize) -> Result<Self, CoreError> {
        if vec_shards == 0 || dim_blocks == 0 {
            return Err(CoreError::Config(format!(
                "partition factors must be positive, got {vec_shards}x{dim_blocks}"
            )));
        }
        Ok(Self {
            vec_shards,
            dim_blocks,
        })
    }

    /// Pure vector-based partitioning over `n` machines (Harmony-vector).
    pub fn pure_vector(n: usize) -> Self {
        Self {
            vec_shards: n.max(1),
            dim_blocks: 1,
        }
    }

    /// Pure dimension-based partitioning over `n` machines
    /// (Harmony-dimension).
    pub fn pure_dimension(n: usize) -> Self {
        Self {
            vec_shards: 1,
            dim_blocks: n.max(1),
        }
    }

    /// Machines the plan occupies (`B_vec × B_dim`).
    pub fn machines(&self) -> usize {
        self.vec_shards * self.dim_blocks
    }

    /// All factorizations `a × b = n` as candidate plans, vector-heavy
    /// first. The planner scores each with the cost model.
    pub fn enumerate(n_machines: usize) -> Vec<PartitionPlan> {
        let mut plans = Vec::new();
        for a in (1..=n_machines).rev() {
            if n_machines.is_multiple_of(a) {
                plans.push(PartitionPlan {
                    vec_shards: a,
                    dim_blocks: n_machines / a,
                });
            }
        }
        plans
    }

    /// The machine hosting grid block `(shard, dim_block)`.
    ///
    /// Machines are laid out row-major: shard `s` occupies the contiguous
    /// range `[s·B_dim, (s+1)·B_dim)`, so one shard's dimension pipeline
    /// never leaves its row (Fig. 4a's M1..M6 layout).
    ///
    /// # Panics
    /// Panics when the coordinates exceed the plan.
    #[inline]
    pub fn machine_of(&self, shard: usize, dim_block: usize) -> NodeId {
        assert!(shard < self.vec_shards && dim_block < self.dim_blocks);
        shard * self.dim_blocks + dim_block
    }

    /// Inverse of [`PartitionPlan::machine_of`].
    ///
    /// # Panics
    /// Panics when `machine` exceeds the plan.
    #[inline]
    pub fn block_of(&self, machine: NodeId) -> (usize, usize) {
        assert!(machine < self.machines());
        (machine / self.dim_blocks, machine % self.dim_blocks)
    }

    /// The dimension ranges of the plan's blocks for vectors of width `dim`.
    ///
    /// # Errors
    /// [`CoreError::Config`] when there are more blocks than dimensions.
    pub fn dim_ranges(&self, dim: usize) -> Result<Vec<DimRange>, CoreError> {
        if self.dim_blocks > dim {
            return Err(CoreError::Config(format!(
                "cannot split {dim} dimensions into {} blocks",
                self.dim_blocks
            )));
        }
        Ok(DimRange::split(dim, self.dim_blocks))
    }

    /// Short label used in reports, e.g. `"2v x 2d"`.
    pub fn label(&self) -> String {
        format!("{}v x {}d", self.vec_shards, self.dim_blocks)
    }
}

/// Assignment of IVF lists (clusters) to vector shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// `cluster_to_shard[c]` = shard owning cluster `c`.
    pub cluster_to_shard: Vec<u32>,
    /// Total weight packed into each shard.
    pub shard_weights: Vec<u64>,
}

impl ShardAssignment {
    /// Balanced packing: weighted LPT. `weights[c]` is the expected work of
    /// cluster `c` (list size × probe frequency). Heaviest cluster first,
    /// always into the lightest shard.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn balanced(weights: &[u64], shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_unstable_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
        let mut cluster_to_shard = vec![0u32; weights.len()];
        let mut shard_weights = vec![0u64; shards];
        for c in order {
            // Lightest shard, ties to the lowest index for determinism.
            let s = (0..shards)
                .min_by_key(|&s| (shard_weights[s], s))
                .expect("shards > 0");
            cluster_to_shard[c] = s as u32;
            shard_weights[s] += weights[c];
        }
        Self {
            cluster_to_shard,
            shard_weights,
        }
    }

    /// Naive packing: cluster `c` → shard `c % shards`, ignoring sizes.
    /// The ablation baseline for Fig. 9's "+Balanced load".
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn round_robin(weights: &[u64], shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut cluster_to_shard = vec![0u32; weights.len()];
        let mut shard_weights = vec![0u64; shards];
        for (c, &w) in weights.iter().enumerate() {
            let s = c % shards;
            cluster_to_shard[c] = s as u32;
            shard_weights[s] += w;
        }
        Self {
            cluster_to_shard,
            shard_weights,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_weights.len()
    }

    /// Clusters owned by shard `s`, ascending.
    pub fn clusters_of(&self, s: usize) -> Vec<u32> {
        self.cluster_to_shard
            .iter()
            .enumerate()
            .filter(|(_, &shard)| shard as usize == s)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Ratio of heaviest to lightest shard weight (1.0 = perfectly even).
    pub fn imbalance_ratio(&self) -> f64 {
        let max = self.shard_weights.iter().copied().max().unwrap_or(0);
        let min = self.shard_weights.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_covers_all_factorizations() {
        let plans = PartitionPlan::enumerate(12);
        let expected: Vec<(usize, usize)> = vec![(12, 1), (6, 2), (4, 3), (3, 4), (2, 6), (1, 12)];
        let got: Vec<(usize, usize)> = plans.iter().map(|p| (p.vec_shards, p.dim_blocks)).collect();
        assert_eq!(got, expected);
        for p in &plans {
            assert_eq!(p.machines(), 12);
        }
    }

    #[test]
    fn prime_machine_counts_have_two_plans() {
        let plans = PartitionPlan::enumerate(7);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0], PartitionPlan::pure_vector(7));
        assert_eq!(plans[1], PartitionPlan::pure_dimension(7));
    }

    #[test]
    fn machine_grid_roundtrips() {
        let plan = PartitionPlan::new(3, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in 0..3 {
            for b in 0..4 {
                let m = plan.machine_of(s, b);
                assert!(m < plan.machines());
                assert!(seen.insert(m), "machine {m} double-assigned");
                assert_eq!(plan.block_of(m), (s, b));
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn shard_rows_are_contiguous() {
        let plan = PartitionPlan::new(2, 3).unwrap();
        assert_eq!(plan.machine_of(0, 0), 0);
        assert_eq!(plan.machine_of(0, 2), 2);
        assert_eq!(plan.machine_of(1, 0), 3);
        assert_eq!(plan.machine_of(1, 2), 5);
    }

    #[test]
    fn dim_ranges_cover_dimensionality() {
        let plan = PartitionPlan::new(2, 3).unwrap();
        let ranges = plan.dim_ranges(10).unwrap();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges.iter().map(DimRange::len).sum::<usize>(), 10);
        assert!(plan.dim_ranges(2).is_err());
    }

    #[test]
    fn zero_factors_rejected() {
        assert!(PartitionPlan::new(0, 4).is_err());
        assert!(PartitionPlan::new(4, 0).is_err());
    }

    #[test]
    fn balanced_packing_beats_round_robin_on_skewed_lists() {
        // Pathological: sizes 100, 1, 1, 1, 100, 1, 1, 1 — round-robin on 2
        // shards puts both giants on shard 0.
        let weights = vec![100, 1, 1, 1, 100, 1, 1, 1];
        let rr = ShardAssignment::round_robin(&weights, 2);
        let lpt = ShardAssignment::balanced(&weights, 2);
        assert!(lpt.imbalance_ratio() < rr.imbalance_ratio());
        assert!(lpt.imbalance_ratio() < 1.1, "{:?}", lpt.shard_weights);
        // Both cover every cluster exactly once.
        for a in [&rr, &lpt] {
            assert_eq!(a.cluster_to_shard.len(), 8);
            let total: u64 = a.shard_weights.iter().sum();
            assert_eq!(total, 206);
        }
    }

    #[test]
    fn clusters_of_partitions_the_clusters() {
        let weights = vec![5, 3, 8, 1, 9, 2];
        let a = ShardAssignment::balanced(&weights, 3);
        let mut all: Vec<u32> = (0..3).flat_map(|s| a.clusters_of(s)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn balanced_packing_is_deterministic() {
        let weights = vec![7, 7, 7, 7, 7];
        let a = ShardAssignment::balanced(&weights, 2);
        let b = ShardAssignment::balanced(&weights, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn imbalance_ratio_handles_empty_shards() {
        let a = ShardAssignment::balanced(&[10], 2);
        assert!(a.imbalance_ratio().is_infinite());
        let b = ShardAssignment::balanced(&[], 2);
        assert_eq!(b.imbalance_ratio(), 1.0);
    }

    #[test]
    fn labels_read_naturally() {
        assert_eq!(PartitionPlan::new(2, 3).unwrap().label(), "2v x 3d");
    }
}
