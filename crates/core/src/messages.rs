//! Typed wire protocol between the client and Harmony workers.
//!
//! Every message is serialized through `harmony-cluster`'s binary codec, so
//! the byte counts the network model charges match what a real deployment
//! would put on the wire:
//!
//! * **Build phase** — [`LoadBlock`] ships one grid block `V_s D_b` (the
//!   paper's *Pre-assign* stage, Fig. 10) and is acknowledged by
//!   [`ToClient::LoadAck`].
//! * **Query phase** — the client splits each query across the dimension
//!   blocks of every visited shard as [`QueryChunk`]s (Fig. 4b); workers
//!   stream surviving candidates down the pipeline as [`Carry`]s (Fig. 5b)
//!   and the final hop reports a [`QueryResult`].
//! * **Diagnostics** — [`ToWorker::GetStats`] / [`ToClient::Stats`] collect
//!   the per-slice pruning counters behind Fig. 2a and Table 3.

use bytes::{Bytes, BytesMut};
use harmony_cluster::{CodecError, Wire};
use harmony_index::Sq8Segment;

/// Encodes SQ8 segments field-by-field. `Sq8Segment` lives in
/// `harmony-index` and `Wire` in `harmony-cluster`, so the orphan rule
/// forbids an `impl Wire for Sq8Segment` here; these free helpers keep the
/// wire layout (count + per-segment header + codes + sums) in one place.
fn encode_segs(segs: &[Sq8Segment], buf: &mut BytesMut) {
    (segs.len() as u64).encode(buf);
    for s in segs {
        s.dim_start.encode(buf);
        s.dim_end.encode(buf);
        s.min.encode(buf);
        s.scale.encode(buf);
        s.codes.encode(buf);
        s.code_sums.encode(buf);
    }
}

fn decode_segs(buf: &mut Bytes) -> Result<Vec<Sq8Segment>, CodecError> {
    let len = usize::decode(buf)?;
    if len > buf.len() {
        return Err(CodecError::Invalid(format!(
            "declared {len} segments but only {} bytes remain",
            buf.len()
        )));
    }
    let mut segs = Vec::with_capacity(len);
    for _ in 0..len {
        segs.push(Sq8Segment {
            dim_start: u64::decode(buf)?,
            dim_end: u64::decode(buf)?,
            min: f32::decode(buf)?,
            scale: f32::decode(buf)?,
            codes: Vec::decode(buf)?,
            code_sums: Vec::decode(buf)?,
        });
    }
    Ok(segs)
}

/// One inverted list restricted to one dimension block.
///
/// Exactly one of `flat` (f32 representation) and `segs` (SQ8) is
/// populated; the block's [`LoadBlock::repr`] tag says which.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBlock {
    /// IVF list (cluster) id.
    pub cluster: u32,
    /// Member vector ids.
    pub ids: Vec<u64>,
    /// Row-major member vectors, `block_dims` wide (f32 representation;
    /// empty under SQ8).
    pub flat: Vec<f32>,
    /// SQ8-quantized dimension-slice segments (empty under f32).
    pub segs: Vec<Sq8Segment>,
    /// Per-member squared norm of *this* block's coordinates (inner-product
    /// pruning only; empty under L2).
    pub block_norms_sq: Vec<f32>,
    /// Per-member squared norm of the *full* vector (inner-product pruning
    /// only; empty under L2).
    pub total_norms_sq: Vec<f32>,
}

impl Wire for ClusterBlock {
    fn encode(&self, buf: &mut BytesMut) {
        self.cluster.encode(buf);
        self.ids.encode(buf);
        self.flat.encode(buf);
        encode_segs(&self.segs, buf);
        self.block_norms_sq.encode(buf);
        self.total_norms_sq.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            cluster: u32::decode(buf)?,
            ids: Vec::decode(buf)?,
            flat: Vec::decode(buf)?,
            segs: decode_segs(buf)?,
            block_norms_sq: Vec::decode(buf)?,
            total_norms_sq: Vec::decode(buf)?,
        })
    }
}

/// Build-phase shipment of one grid block to its machine.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBlock {
    /// Namespace (tenant) this block belongs to. Workers key all epoch
    /// storage by `(ns, epoch)`, so id-spaces never collide across tenants.
    pub ns: u16,
    /// Routing epoch this block belongs to (the initial build is epoch 0).
    pub epoch: u64,
    /// Vector shard index `s` of the block.
    pub shard: u32,
    /// Dimension block index `b`.
    pub dim_block: u32,
    /// Dimension range `[start, end)` this block covers.
    pub dim_start: u64,
    /// End of the dimension range.
    pub dim_end: u64,
    /// Total number of dimension blocks in the plan (pipeline length).
    pub total_dim_blocks: u32,
    /// Metric tag (0 = L2, 1 = IP, 2 = cosine).
    pub metric: u8,
    /// Block representation tag (0 = f32, 1 = SQ8); see [`repr_tag`].
    pub repr: u8,
    /// Whether early-stop pruning is enabled on this deployment.
    pub pruning: bool,
    /// The inverted lists assigned to this block.
    pub lists: Vec<ClusterBlock>,
}

impl Wire for LoadBlock {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.epoch.encode(buf);
        self.shard.encode(buf);
        self.dim_block.encode(buf);
        self.dim_start.encode(buf);
        self.dim_end.encode(buf);
        self.total_dim_blocks.encode(buf);
        self.metric.encode(buf);
        self.repr.encode(buf);
        self.pruning.encode(buf);
        self.lists.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            epoch: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            dim_block: u32::decode(buf)?,
            dim_start: u64::decode(buf)?,
            dim_end: u64::decode(buf)?,
            total_dim_blocks: u32::decode(buf)?,
            metric: u8::decode(buf)?,
            repr: u8::decode(buf)?,
            pruning: bool::decode(buf)?,
            lists: Vec::decode(buf)?,
        })
    }
}

/// The dimension slice of one query routed to one machine (Fig. 4b's
/// `Q_i D_j`), plus the pipeline itinerary.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryChunk {
    /// Namespace the query targets; workers resolve block storage by
    /// `(ns, epoch)`.
    pub ns: u16,
    /// Query identifier, unique within a batch.
    pub query_id: u64,
    /// Routing epoch the query was admitted under: workers resolve block
    /// storage by epoch, so in-flight queries keep completing against the
    /// old layout while a migration installs the new one.
    pub epoch: u64,
    /// Visited vector shard.
    pub shard: u32,
    /// Results wanted (`k`).
    pub k: u32,
    /// Current pruning threshold `τ` for this query (`+∞` encoded as such).
    pub threshold: f32,
    /// Clusters of this shard the query probes.
    pub clusters: Vec<u32>,
    /// The query's coordinates for *this machine's* dimension block.
    pub dims: Vec<f32>,
    /// Squared norm of the query's *full* vector (inner-product pruning
    /// residuals and cosine score normalization; 0 under L2).
    pub q_total_norm_sq: f32,
    /// Machines of this shard's pipeline, in execution order.
    pub order: Vec<u64>,
    /// This machine's position in `order`.
    pub position: u32,
    /// Delta watermark captured at admission: every machine of the shard
    /// row scans exactly the delta rows with `seq < delta_seq`, so the
    /// pipeline's canonical enumeration stays identical across machines
    /// even while new upserts race in. Transports deliver FIFO per
    /// destination, so a chunk stamped `w` always arrives after every
    /// [`DeltaUpsert`] it covers.
    pub delta_seq: u64,
}

impl Wire for QueryChunk {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.query_id.encode(buf);
        self.epoch.encode(buf);
        self.shard.encode(buf);
        self.k.encode(buf);
        self.threshold.encode(buf);
        self.clusters.encode(buf);
        self.dims.encode(buf);
        self.q_total_norm_sq.encode(buf);
        self.order.encode(buf);
        self.position.encode(buf);
        self.delta_seq.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            query_id: u64::decode(buf)?,
            epoch: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            k: u32::decode(buf)?,
            threshold: f32::decode(buf)?,
            clusters: Vec::decode(buf)?,
            dims: Vec::decode(buf)?,
            q_total_norm_sq: f32::decode(buf)?,
            order: Vec::decode(buf)?,
            position: u32::decode(buf)?,
            delta_seq: u64::decode(buf)?,
        })
    }
}

/// Pipeline hop: surviving candidates and their accumulated partials
/// (Fig. 5b's "Compute & send" → "Receive & check").
///
/// Candidates are addressed *positionally*: every machine of a shard row
/// stores the same lists in the same order, so the canonical enumeration
/// (probed clusters in chunk order, members in list order) is identical on
/// every hop. Carrying sorted enumeration indices instead of vector ids
/// turns each downstream hop into a sequential merge-scan — no per-candidate
/// hash lookups — and halves the carry width.
#[derive(Debug, Clone, PartialEq)]
pub struct Carry {
    /// Namespace of the originating chunk.
    pub ns: u16,
    /// Query this carry belongs to.
    pub query_id: u64,
    /// Routing epoch of the originating chunk (see [`QueryChunk::epoch`]).
    pub epoch: u64,
    /// Shard whose pipeline this is.
    pub shard: u32,
    /// Tightest threshold known to the sender.
    pub threshold: f32,
    /// Position the *receiver* occupies in the pipeline order.
    pub next_position: u32,
    /// Surviving candidate positions in the canonical enumeration,
    /// strictly ascending.
    pub indices: Vec<u32>,
    /// Accumulated partial scores, parallel to `indices`.
    pub partials: Vec<f32>,
    /// Accumulated per-candidate visited-block squared norms (inner-product
    /// pruning; empty under L2).
    pub visited_norms_sq: Vec<f32>,
    /// Accumulated visited squared norm of the query (inner-product; 0
    /// under L2).
    pub q_visited_norm_sq: f32,
    /// Accumulated quantization-error slack for SQ8 pipelines (0 under
    /// f32): per hop, the *maximum* over the scanned lists of that hop's
    /// error term, summed along the pipeline. Receivers widen their prune
    /// bounds by this before comparing quantized partials against the
    /// exact-domain threshold.
    pub quant_eps: f32,
}

impl Wire for Carry {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.query_id.encode(buf);
        self.epoch.encode(buf);
        self.shard.encode(buf);
        self.threshold.encode(buf);
        self.next_position.encode(buf);
        self.indices.encode(buf);
        self.partials.encode(buf);
        self.visited_norms_sq.encode(buf);
        self.q_visited_norm_sq.encode(buf);
        self.quant_eps.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            query_id: u64::decode(buf)?,
            epoch: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            threshold: f32::decode(buf)?,
            next_position: u32::decode(buf)?,
            indices: Vec::decode(buf)?,
            partials: Vec::decode(buf)?,
            visited_norms_sq: Vec::decode(buf)?,
            q_visited_norm_sq: f32::decode(buf)?,
            quant_eps: f32::decode(buf)?,
        })
    }
}

/// Final hop of a shard pipeline: the shard's top candidates.
///
/// `query_id` is the session demultiplexing key: the client router matches
/// it against each session's reserved id range, and `shard` identifies the
/// completing visit so the session can discharge exactly that visit's load
/// estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Query this result answers.
    pub query_id: u64,
    /// Shard that produced it.
    pub shard: u32,
    /// Candidate ids (at most `k`).
    pub ids: Vec<u64>,
    /// Full scores, parallel to `ids`, in the metric's client-side
    /// lower-is-better space ([`harmony_index::Metric::score`]): raw for L2
    /// and inner product, normalized by the full vector norms for cosine.
    pub scores: Vec<f32>,
    /// Candidates this shard's pipeline enumerated (diagnostics).
    pub candidates_seen: u64,
}

impl Wire for QueryResult {
    fn encode(&self, buf: &mut BytesMut) {
        self.query_id.encode(buf);
        self.shard.encode(buf);
        self.ids.encode(buf);
        self.scores.encode(buf);
        self.candidates_seen.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            query_id: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            ids: Vec::decode(buf)?,
            scores: Vec::decode(buf)?,
            candidates_seen: u64::decode(buf)?,
        })
    }
}

/// One cluster's rows restricted to a *dimension sub-range* — the unit of
/// live migration. Pieces sent to one destination partition that block's
/// dimension range, so the receiver reassembles the full grid block by
/// copying each piece's columns at its offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ListPiece {
    /// IVF list (cluster) id.
    pub cluster: u32,
    /// Absolute dimension range `[start, end)` the piece covers.
    pub dim_start: u64,
    /// End of the piece's dimension range.
    pub dim_end: u64,
    /// Member vector ids (identical across the cluster's pieces).
    pub ids: Vec<u64>,
    /// Row-major member coordinates, `dim_end - dim_start` wide (f32
    /// representation; empty under SQ8).
    pub flat: Vec<f32>,
    /// SQ8 segments column-sliced to `[dim_start, dim_end)` (empty under
    /// f32). Each segment keeps its source block's `min`/`scale` verbatim,
    /// so reassembled blocks are bit-identical to never-migrated ones.
    pub segs: Vec<Sq8Segment>,
    /// Per-member squared norm over *this piece's* dimensions
    /// (inner-product metrics only; empty under L2). The destination sums
    /// these across pieces to rebuild its block norms.
    pub piece_norms_sq: Vec<f32>,
    /// Per-member squared norm of the full vector (inner-product only).
    pub total_norms_sq: Vec<f32>,
}

impl Wire for ListPiece {
    fn encode(&self, buf: &mut BytesMut) {
        self.cluster.encode(buf);
        self.dim_start.encode(buf);
        self.dim_end.encode(buf);
        self.ids.encode(buf);
        self.flat.encode(buf);
        encode_segs(&self.segs, buf);
        self.piece_norms_sq.encode(buf);
        self.total_norms_sq.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            cluster: u32::decode(buf)?,
            dim_start: u64::decode(buf)?,
            dim_end: u64::decode(buf)?,
            ids: Vec::decode(buf)?,
            flat: Vec::decode(buf)?,
            segs: decode_segs(buf)?,
            piece_norms_sq: Vec::decode(buf)?,
            total_norms_sq: Vec::decode(buf)?,
        })
    }
}

/// One migration transfer: "slice this cluster's stored block to the given
/// dimension sub-range and deliver it to `dest`'s new-epoch grid block".
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSpec {
    /// Cluster whose data moves.
    pub cluster: u32,
    /// Epoch whose storage the source slices from.
    pub src_epoch: u64,
    /// Shard the cluster belongs to under the source epoch.
    pub src_shard: u32,
    /// Absolute dimension range `[start, end)` to ship.
    pub dim_start: u64,
    /// End of the shipped dimension range.
    pub dim_end: u64,
    /// Destination machine.
    pub dest: u64,
    /// Shard of the destination grid block (new epoch).
    pub dest_shard: u32,
    /// Dimension block of the destination grid block (new epoch).
    pub dest_dim_block: u32,
}

impl Wire for TransferSpec {
    fn encode(&self, buf: &mut BytesMut) {
        self.cluster.encode(buf);
        self.src_epoch.encode(buf);
        self.src_shard.encode(buf);
        self.dim_start.encode(buf);
        self.dim_end.encode(buf);
        self.dest.encode(buf);
        self.dest_shard.encode(buf);
        self.dest_dim_block.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            cluster: u32::decode(buf)?,
            src_epoch: u64::decode(buf)?,
            src_shard: u32::decode(buf)?,
            dim_start: u64::decode(buf)?,
            dim_end: u64::decode(buf)?,
            dest: u64::decode(buf)?,
            dest_shard: u32::decode(buf)?,
            dest_dim_block: u32::decode(buf)?,
        })
    }
}

/// Client → source machine: execute these transfers toward `epoch`.
/// Worker-to-worker shipping rides the existing fabric; transfers whose
/// destination is the source itself are installed locally without touching
/// the network.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrateOut {
    /// Namespace being migrated; sources slice from and destinations
    /// install into this namespace's storage only.
    pub ns: u16,
    /// Epoch the shipped pieces install into.
    pub epoch: u64,
    /// Transfers this source must perform.
    pub transfers: Vec<TransferSpec>,
}

impl Wire for MigrateOut {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.epoch.encode(buf);
        self.transfers.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            epoch: u64::decode(buf)?,
            transfers: Vec::decode(buf)?,
        })
    }
}

/// Client → destination machine: announce the grid block the machine hosts
/// under `epoch` and how many [`ListPiece`]s to expect. Once the count is
/// met the machine activates the epoch's storage and acks with
/// [`ToClient::EpochReady`].
#[derive(Debug, Clone, PartialEq)]
pub struct BeginEpoch {
    /// Namespace whose routing advances to the new epoch.
    pub ns: u16,
    /// The new epoch.
    pub epoch: u64,
    /// Shard of this machine's grid block under the new plan.
    pub shard: u32,
    /// Dimension block index under the new plan.
    pub dim_block: u32,
    /// Dimension range `[start, end)` of the block.
    pub dim_start: u64,
    /// End of the block's dimension range.
    pub dim_end: u64,
    /// Pipeline length of the new plan.
    pub total_dim_blocks: u32,
    /// Pieces that must arrive before the epoch activates.
    pub expected_pieces: u64,
}

impl Wire for BeginEpoch {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.epoch.encode(buf);
        self.shard.encode(buf);
        self.dim_block.encode(buf);
        self.dim_start.encode(buf);
        self.dim_end.encode(buf);
        self.total_dim_blocks.encode(buf);
        self.expected_pieces.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            epoch: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            dim_block: u32::decode(buf)?,
            dim_start: u64::decode(buf)?,
            dim_end: u64::decode(buf)?,
            total_dim_blocks: u32::decode(buf)?,
            expected_pieces: u64::decode(buf)?,
        })
    }
}

/// Worker → worker (or worker → itself): migrated pieces for one grid
/// block of `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallLists {
    /// Namespace the pieces install into.
    pub ns: u16,
    /// Epoch the pieces install into.
    pub epoch: u64,
    /// Destination shard (sanity-checked against the announced block).
    pub shard: u32,
    /// Destination dimension block.
    pub dim_block: u32,
    /// The shipped pieces.
    pub pieces: Vec<ListPiece>,
}

impl Wire for InstallLists {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.epoch.encode(buf);
        self.shard.encode(buf);
        self.dim_block.encode(buf);
        self.pieces.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            epoch: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            dim_block: u32::decode(buf)?,
            pieces: Vec::decode(buf)?,
        })
    }
}

/// Client → every machine of a shard row: freshly upserted rows for that
/// machine's dimension slice, appended to the shard's in-memory delta list.
///
/// Delta rows are stored and scanned as exact f32 regardless of the
/// deployment's block representation, so recall on fresh data is 1.0 by
/// construction. Rows carry ingest sequence numbers; queries scan only rows
/// below their admission watermark ([`QueryChunk::delta_seq`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaUpsert {
    /// Namespace whose delta storage the rows append to.
    pub ns: u16,
    /// Epoch whose delta storage the rows append to.
    pub epoch: u64,
    /// Home shard of the upserted vectors.
    pub shard: u32,
    /// Absolute dimension range `[start, end)` of this machine's slice.
    pub dim_start: u64,
    /// End of the dimension range.
    pub dim_end: u64,
    /// Upserted vector ids.
    pub ids: Vec<u64>,
    /// Ingest sequence numbers, parallel to `ids`.
    pub seqs: Vec<u64>,
    /// Row-major coordinates, `dim_end - dim_start` wide per row.
    pub flat: Vec<f32>,
    /// Per-row squared norm of this slice's coordinates (inner-product
    /// metrics only; empty under L2).
    pub block_norms_sq: Vec<f32>,
    /// Per-row squared norm of the full vector (inner-product only).
    pub total_norms_sq: Vec<f32>,
}

impl Wire for DeltaUpsert {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.epoch.encode(buf);
        self.shard.encode(buf);
        self.dim_start.encode(buf);
        self.dim_end.encode(buf);
        self.ids.encode(buf);
        self.seqs.encode(buf);
        self.flat.encode(buf);
        self.block_norms_sq.encode(buf);
        self.total_norms_sq.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            epoch: u64::decode(buf)?,
            shard: u32::decode(buf)?,
            dim_start: u64::decode(buf)?,
            dim_end: u64::decode(buf)?,
            ids: Vec::decode(buf)?,
            seqs: Vec::decode(buf)?,
            flat: Vec::decode(buf)?,
            block_norms_sq: Vec::decode(buf)?,
            total_norms_sq: Vec::decode(buf)?,
        })
    }
}

/// Client → all machines: soft-delete these ids at sequence `seq`.
///
/// Workers record the ids in the target epoch's tombstone set; stored rows
/// are suppressed at result-emission time, never removed (positional
/// enumeration must stay identical across a shard row). The client keeps
/// its own authoritative dead set, so worker-side tombstones are a
/// best-effort early filter rather than the correctness mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteIds {
    /// Namespace whose tombstone sets record the delete; the wildcard
    /// epoch never crosses namespaces.
    pub ns: u16,
    /// Epoch whose tombstone set records the delete, or [`u64::MAX`] to
    /// apply to every live epoch of the namespace on the machine.
    pub epoch: u64,
    /// Ids to tombstone.
    pub ids: Vec<u64>,
    /// Ingest sequence number of the delete: delta rows upserted at or
    /// after this stay visible (re-upsert after delete).
    pub seq: u64,
}

impl Wire for DeleteIds {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.epoch.encode(buf);
        self.ids.encode(buf);
        self.seq.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            epoch: u64::decode(buf)?,
            ids: Vec::decode(buf)?,
            seq: u64::decode(buf)?,
        })
    }
}

/// Client → all machines: move a namespace to a new residency tier.
///
/// Workers spill or fault the namespace's grid blocks accordingly (see
/// `harmony_index::tier`) and ack with [`ToClient::TierAck`] once the
/// transition is durable. Tier changes never alter stored bytes — a
/// spilled block faults back bit-identical — so search results are
/// unaffected by when the ack races with in-flight queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SetTier {
    /// Namespace whose tier changes.
    pub ns: u16,
    /// Target tier tag ([`harmony_index::Temperature::encode`]).
    pub temperature: u8,
}

impl Wire for SetTier {
    fn encode(&self, buf: &mut BytesMut) {
        self.ns.encode(buf);
        self.temperature.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            ns: u16::decode(buf)?,
            temperature: u8::decode(buf)?,
        })
    }
}

/// Per-worker pruning and load counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Candidates entering the pipeline at each position this worker served.
    pub slice_in: Vec<u64>,
    /// Candidates pruned at each position.
    pub slice_pruned: Vec<u64>,
    /// Total candidate-dimension products scanned.
    pub scanned_point_dims: u64,
    /// Heap bytes used by this worker's block storage.
    pub memory_bytes: u64,
    /// Resident block payload bytes held in f32 form (vector coordinates
    /// only, ids excluded).
    pub f32_block_bytes: u64,
    /// Resident block payload bytes held in SQ8 form (codes + per-row code
    /// sums + segment headers, ids excluded).
    pub sq8_block_bytes: u64,
    /// Wall nanoseconds this worker spent in candidate scan loops since the
    /// last reset — the numerator of the observed compute rate the
    /// supervisor feeds back into the cost model.
    pub compute_ns: u64,
    /// Resident delta-list payload bytes (exact f32 rows awaiting
    /// compaction).
    pub delta_bytes: u64,
    /// Delta rows currently held across live epochs.
    pub delta_rows: u64,
    /// Tombstoned ids currently held across live epochs.
    pub tombstone_entries: u64,
    /// Evictable block payload bytes resident in the warm-tier cache (a
    /// subset of `f32_block_bytes` + `sq8_block_bytes`).
    pub cache_block_bytes: u64,
    /// Block payload bytes spilled to disk (warm/cold namespaces); not
    /// counted in any RAM gauge.
    pub spilled_block_bytes: u64,
}

impl Wire for StatsReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.slice_in.encode(buf);
        self.slice_pruned.encode(buf);
        self.scanned_point_dims.encode(buf);
        self.memory_bytes.encode(buf);
        self.f32_block_bytes.encode(buf);
        self.sq8_block_bytes.encode(buf);
        self.compute_ns.encode(buf);
        self.delta_bytes.encode(buf);
        self.delta_rows.encode(buf);
        self.tombstone_entries.encode(buf);
        self.cache_block_bytes.encode(buf);
        self.spilled_block_bytes.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(Self {
            slice_in: Vec::decode(buf)?,
            slice_pruned: Vec::decode(buf)?,
            scanned_point_dims: u64::decode(buf)?,
            memory_bytes: u64::decode(buf)?,
            f32_block_bytes: u64::decode(buf)?,
            sq8_block_bytes: u64::decode(buf)?,
            compute_ns: u64::decode(buf)?,
            delta_bytes: u64::decode(buf)?,
            delta_rows: u64::decode(buf)?,
            tombstone_entries: u64::decode(buf)?,
            cache_block_bytes: u64::decode(buf)?,
            spilled_block_bytes: u64::decode(buf)?,
        })
    }
}

/// Client → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Ship a grid block (build phase).
    Load(LoadBlock),
    /// Route a query slice (query phase).
    Chunk(QueryChunk),
    /// Pipeline hop from a peer worker.
    Carry(Carry),
    /// Request a [`StatsReport`].
    GetStats,
    /// Zero the statistics counters.
    ResetStats,
    /// Announce a new epoch's grid block to its destination machine.
    BeginEpoch(BeginEpoch),
    /// Execute migration transfers toward a new epoch.
    MigrateOut(MigrateOut),
    /// Migrated pieces from a peer (or from the machine itself).
    InstallLists(InstallLists),
    /// Drop all storage of a retired epoch.
    EvictEpoch {
        /// Namespace whose epoch retires.
        ns: u16,
        /// The retired epoch.
        epoch: u64,
    },
    /// Append freshly upserted rows to a shard's delta list.
    UpsertDelta(DeltaUpsert),
    /// Tombstone ids for soft deletion.
    DeleteIds(DeleteIds),
    /// Move a namespace between residency tiers.
    SetTier(SetTier),
}

impl Wire for ToWorker {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ToWorker::Load(m) => {
                0u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::Chunk(m) => {
                1u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::Carry(m) => {
                2u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::GetStats => 3u8.encode(buf),
            ToWorker::ResetStats => 4u8.encode(buf),
            ToWorker::BeginEpoch(m) => {
                5u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::MigrateOut(m) => {
                6u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::InstallLists(m) => {
                7u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::EvictEpoch { ns, epoch } => {
                8u8.encode(buf);
                ns.encode(buf);
                epoch.encode(buf);
            }
            ToWorker::UpsertDelta(m) => {
                9u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::DeleteIds(m) => {
                10u8.encode(buf);
                m.encode(buf);
            }
            ToWorker::SetTier(m) => {
                11u8.encode(buf);
                m.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(ToWorker::Load(LoadBlock::decode(buf)?)),
            1 => Ok(ToWorker::Chunk(QueryChunk::decode(buf)?)),
            2 => Ok(ToWorker::Carry(Carry::decode(buf)?)),
            3 => Ok(ToWorker::GetStats),
            4 => Ok(ToWorker::ResetStats),
            5 => Ok(ToWorker::BeginEpoch(BeginEpoch::decode(buf)?)),
            6 => Ok(ToWorker::MigrateOut(MigrateOut::decode(buf)?)),
            7 => Ok(ToWorker::InstallLists(InstallLists::decode(buf)?)),
            8 => Ok(ToWorker::EvictEpoch {
                ns: u16::decode(buf)?,
                epoch: u64::decode(buf)?,
            }),
            9 => Ok(ToWorker::UpsertDelta(DeltaUpsert::decode(buf)?)),
            10 => Ok(ToWorker::DeleteIds(DeleteIds::decode(buf)?)),
            11 => Ok(ToWorker::SetTier(SetTier::decode(buf)?)),
            t => Err(CodecError::Invalid(format!("bad ToWorker tag {t}"))),
        }
    }
}

/// Worker → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToClient {
    /// Acknowledges a [`LoadBlock`].
    LoadAck {
        /// Namespace of the acknowledged block.
        ns: u16,
        /// Shard of the acknowledged block.
        shard: u32,
        /// Dimension block of the acknowledged block.
        dim_block: u32,
    },
    /// A shard pipeline finished for one query.
    Result(QueryResult),
    /// Statistics reply.
    Stats(StatsReport),
    /// A destination machine received every migrated piece of `epoch` and
    /// activated the new storage.
    EpochReady {
        /// Namespace of the activated epoch.
        ns: u16,
        /// The activated epoch.
        epoch: u64,
    },
    /// Acknowledges a [`SetTier`]: the namespace's blocks on this machine
    /// now sit in the requested tier.
    TierAck {
        /// Namespace whose transition completed.
        ns: u16,
    },
}

impl Wire for ToClient {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ToClient::LoadAck {
                ns,
                shard,
                dim_block,
            } => {
                0u8.encode(buf);
                ns.encode(buf);
                shard.encode(buf);
                dim_block.encode(buf);
            }
            ToClient::Result(m) => {
                1u8.encode(buf);
                m.encode(buf);
            }
            ToClient::Stats(m) => {
                2u8.encode(buf);
                m.encode(buf);
            }
            ToClient::EpochReady { ns, epoch } => {
                3u8.encode(buf);
                ns.encode(buf);
                epoch.encode(buf);
            }
            ToClient::TierAck { ns } => {
                4u8.encode(buf);
                ns.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(ToClient::LoadAck {
                ns: u16::decode(buf)?,
                shard: u32::decode(buf)?,
                dim_block: u32::decode(buf)?,
            }),
            1 => Ok(ToClient::Result(QueryResult::decode(buf)?)),
            2 => Ok(ToClient::Stats(StatsReport::decode(buf)?)),
            3 => Ok(ToClient::EpochReady {
                ns: u16::decode(buf)?,
                epoch: u64::decode(buf)?,
            }),
            4 => Ok(ToClient::TierAck {
                ns: u16::decode(buf)?,
            }),
            t => Err(CodecError::Invalid(format!("bad ToClient tag {t}"))),
        }
    }
}

/// Metric tags shared by [`LoadBlock::metric`].
pub mod metric_tag {
    use harmony_index::Metric;

    /// Encodes a metric as its wire tag.
    pub fn encode(metric: Metric) -> u8 {
        match metric {
            Metric::L2 => 0,
            Metric::InnerProduct => 1,
            Metric::Cosine => 2,
        }
    }

    /// Decodes a wire tag back to a metric.
    ///
    /// # Errors
    /// [`harmony_cluster::CodecError::Invalid`] for unknown tags.
    pub fn decode(tag: u8) -> Result<Metric, harmony_cluster::CodecError> {
        match tag {
            0 => Ok(Metric::L2),
            1 => Ok(Metric::InnerProduct),
            2 => Ok(Metric::Cosine),
            t => Err(harmony_cluster::CodecError::Invalid(format!(
                "bad metric tag {t}"
            ))),
        }
    }
}

/// Block-representation tags shared by [`LoadBlock::repr`].
pub mod repr_tag {
    use harmony_index::BlockRepr;

    /// Encodes a block representation as its wire tag.
    pub fn encode(repr: BlockRepr) -> u8 {
        match repr {
            BlockRepr::F32 => 0,
            BlockRepr::Sq8 => 1,
        }
    }

    /// Decodes a wire tag back to a block representation.
    ///
    /// # Errors
    /// [`harmony_cluster::CodecError::Invalid`] for unknown tags.
    pub fn decode(tag: u8) -> Result<BlockRepr, harmony_cluster::CodecError> {
        match tag {
            0 => Ok(BlockRepr::F32),
            1 => Ok(BlockRepr::Sq8),
            t => Err(harmony_cluster::CodecError::Invalid(format!(
                "bad repr tag {t}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(bytes).unwrap(), v);
    }

    fn sample_chunk() -> QueryChunk {
        QueryChunk {
            ns: 2,
            query_id: 42,
            epoch: 3,
            shard: 1,
            k: 10,
            threshold: 3.25,
            clusters: vec![0, 5, 9],
            dims: vec![0.5, -1.0, 2.0],
            q_total_norm_sq: 5.25,
            order: vec![3, 4, 5],
            position: 1,
            delta_seq: 6,
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(ClusterBlock {
            cluster: 7,
            ids: vec![1, 2, 3],
            flat: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            segs: vec![],
            block_norms_sq: vec![1.0, 2.0, 3.0],
            total_norms_sq: vec![4.0, 5.0, 6.0],
        });
        roundtrip(LoadBlock {
            ns: 1,
            epoch: 0,
            shard: 1,
            dim_block: 2,
            dim_start: 32,
            dim_end: 64,
            total_dim_blocks: 4,
            metric: 0,
            repr: 0,
            pruning: true,
            lists: vec![],
        });
        roundtrip(sample_chunk());
        roundtrip(Carry {
            ns: 2,
            query_id: 42,
            epoch: 3,
            shard: 1,
            threshold: 1.5,
            next_position: 2,
            indices: vec![10, 20],
            partials: vec![0.25, 0.75],
            visited_norms_sq: vec![],
            q_visited_norm_sq: 0.0,
            quant_eps: 0.0,
        });
        roundtrip(QueryResult {
            query_id: 42,
            shard: 1,
            ids: vec![5],
            scores: vec![0.125],
            candidates_seen: 100,
        });
        roundtrip(StatsReport {
            slice_in: vec![100, 60, 20],
            slice_pruned: vec![0, 40, 15],
            scanned_point_dims: 123_456,
            memory_bytes: 1 << 20,
            f32_block_bytes: 1 << 19,
            sq8_block_bytes: 1 << 17,
            compute_ns: 987_654_321,
            delta_bytes: 4096,
            delta_rows: 32,
            tombstone_entries: 5,
            cache_block_bytes: 1 << 16,
            spilled_block_bytes: 1 << 21,
        });
    }

    #[test]
    fn ingest_messages_roundtrip() {
        roundtrip(DeltaUpsert {
            ns: 3,
            epoch: 4,
            shard: 2,
            dim_start: 8,
            dim_end: 12,
            ids: vec![900, 901],
            seqs: vec![17, 18],
            flat: vec![0.5; 8],
            block_norms_sq: vec![1.0, 2.0],
            total_norms_sq: vec![3.0, 4.0],
        });
        roundtrip(ToWorker::UpsertDelta(DeltaUpsert {
            ns: 0,
            epoch: 0,
            shard: 0,
            dim_start: 0,
            dim_end: 2,
            ids: vec![1],
            seqs: vec![0],
            flat: vec![-1.5, 2.5],
            block_norms_sq: vec![],
            total_norms_sq: vec![],
        }));
        roundtrip(DeleteIds {
            ns: 7,
            epoch: u64::MAX,
            ids: vec![7, 8, 9],
            seq: 42,
        });
        roundtrip(ToWorker::DeleteIds(DeleteIds {
            ns: 0,
            epoch: 3,
            ids: vec![],
            seq: 0,
        }));
    }

    #[test]
    fn tier_messages_roundtrip() {
        roundtrip(SetTier {
            ns: 9,
            temperature: 2,
        });
        roundtrip(ToWorker::SetTier(SetTier {
            ns: 0,
            temperature: 0,
        }));
        roundtrip(ToClient::TierAck { ns: 9 });
    }

    #[test]
    fn sq8_payloads_roundtrip() {
        let flat: Vec<f32> = (0..12).map(|i| i as f32 * 0.75 - 2.0).collect();
        let seg = Sq8Segment::quantize(&flat, 4, 8);
        assert!(!seg.codes.is_empty());
        roundtrip(ClusterBlock {
            cluster: 3,
            ids: vec![10, 11, 12],
            flat: vec![],
            segs: vec![seg.clone()],
            block_norms_sq: vec![],
            total_norms_sq: vec![],
        });
        roundtrip(ToWorker::Load(LoadBlock {
            ns: 4,
            epoch: 2,
            shard: 0,
            dim_block: 1,
            dim_start: 8,
            dim_end: 12,
            total_dim_blocks: 2,
            metric: 0,
            repr: 1,
            pruning: true,
            lists: vec![ClusterBlock {
                cluster: 3,
                ids: vec![10, 11, 12],
                flat: vec![],
                segs: vec![seg.clone()],
                block_norms_sq: vec![],
                total_norms_sq: vec![],
            }],
        }));
        let half = seg.slice_dims(8, 10);
        roundtrip(ToWorker::InstallLists(InstallLists {
            ns: 4,
            epoch: 2,
            shard: 0,
            dim_block: 0,
            pieces: vec![ListPiece {
                cluster: 3,
                dim_start: 8,
                dim_end: 10,
                ids: vec![10, 11, 12],
                flat: vec![],
                segs: vec![half],
                piece_norms_sq: vec![],
                total_norms_sq: vec![],
            }],
        }));
        let mut c = Carry {
            ns: 4,
            query_id: 9,
            epoch: 2,
            shard: 0,
            threshold: 4.5,
            next_position: 1,
            indices: vec![0, 2],
            partials: vec![1.25, 0.5],
            visited_norms_sq: vec![],
            q_visited_norm_sq: 0.0,
            quant_eps: 0.0,
        };
        c.quant_eps = 0.125;
        roundtrip(c);
    }

    #[test]
    fn hostile_segment_count_rejected() {
        let mut evil = BytesMut::new();
        7u32.encode(&mut evil); // cluster
        Vec::<u64>::new().encode(&mut evil); // ids
        Vec::<f32>::new().encode(&mut evil); // flat
        u64::MAX.encode(&mut evil); // declared segment count, no payload
        assert!(ClusterBlock::from_bytes(evil.freeze()).is_err());
    }

    #[test]
    fn migration_messages_roundtrip() {
        let piece = ListPiece {
            cluster: 5,
            dim_start: 8,
            dim_end: 12,
            ids: vec![7, 9],
            flat: vec![0.1; 8],
            segs: vec![],
            piece_norms_sq: vec![1.0, 2.0],
            total_norms_sq: vec![3.0, 4.0],
        };
        roundtrip(piece.clone());
        roundtrip(TransferSpec {
            cluster: 5,
            src_epoch: 0,
            src_shard: 1,
            dim_start: 8,
            dim_end: 12,
            dest: 3,
            dest_shard: 0,
            dest_dim_block: 1,
        });
        roundtrip(ToWorker::MigrateOut(MigrateOut {
            ns: 1,
            epoch: 1,
            transfers: vec![],
        }));
        roundtrip(ToWorker::BeginEpoch(BeginEpoch {
            ns: 1,
            epoch: 1,
            shard: 0,
            dim_block: 1,
            dim_start: 8,
            dim_end: 16,
            total_dim_blocks: 2,
            expected_pieces: 12,
        }));
        roundtrip(ToWorker::InstallLists(InstallLists {
            ns: 1,
            epoch: 1,
            shard: 0,
            dim_block: 1,
            pieces: vec![piece],
        }));
        roundtrip(ToWorker::EvictEpoch { ns: 1, epoch: 0 });
        roundtrip(ToClient::EpochReady { ns: 1, epoch: 1 });
    }

    #[test]
    fn enum_wrappers_roundtrip() {
        roundtrip(ToWorker::Chunk(sample_chunk()));
        roundtrip(ToWorker::GetStats);
        roundtrip(ToWorker::ResetStats);
        roundtrip(ToClient::LoadAck {
            ns: 2,
            shard: 3,
            dim_block: 1,
        });
        roundtrip(ToClient::Stats(StatsReport::default()));
    }

    #[test]
    fn infinity_threshold_survives_the_wire() {
        let mut c = sample_chunk();
        c.threshold = f32::INFINITY;
        let back = QueryChunk::from_bytes(c.to_bytes()).unwrap();
        assert!(back.threshold.is_infinite());
    }

    #[test]
    fn bad_tags_rejected() {
        let raw = Bytes::from_static(&[99]);
        assert!(ToWorker::from_bytes(raw.clone()).is_err());
        assert!(ToClient::from_bytes(raw).is_err());
    }

    #[test]
    fn metric_tags_roundtrip() {
        use harmony_index::Metric;
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            assert_eq!(metric_tag::decode(metric_tag::encode(m)).unwrap(), m);
        }
        assert!(metric_tag::decode(9).is_err());
    }

    #[test]
    fn repr_tags_roundtrip() {
        use harmony_index::BlockRepr;
        for r in [BlockRepr::F32, BlockRepr::Sq8] {
            assert_eq!(repr_tag::decode(repr_tag::encode(r)).unwrap(), r);
        }
        assert!(repr_tag::decode(7).is_err());
    }

    #[test]
    fn chunk_wire_size_tracks_dims() {
        // The query payload per block must shrink as 1/B_dim: the chunk
        // overhead is fixed, the dims dominate at realistic widths.
        let mut small = sample_chunk();
        small.dims = vec![0.0; 32];
        let mut large = sample_chunk();
        large.dims = vec![0.0; 128];
        let delta = large.to_bytes().len() - small.to_bytes().len();
        assert_eq!(delta, 96 * 4);
    }
}
