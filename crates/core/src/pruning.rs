//! Dimension-level early-stop pruning (§3.1 "Motivation 1", §4.3).
//!
//! Under squared L2, the partial sums accumulated along the dimension
//! pipeline are non-decreasing, so a candidate whose running sum exceeds the
//! current top-k threshold `τ²` can never re-enter the top-k: pruning is
//! *exact*. Under inner-product metrics the partial terms may be negative;
//! the paper sidesteps this by assuming pre-normalization. We implement the
//! general admissible bound instead: by Cauchy–Schwarz the best possible
//! completion of a partial dot product is `‖q_rest‖·‖p_rest‖`, so with
//! lower-is-better scores (negated dot products)
//!
//! ```text
//! final_score ≥ partial_score − √(q_rest² · p_rest²)
//! ```
//!
//! and a candidate is pruned when even that optimistic bound exceeds `τ`.
//! The residual norms come from per-block norm tables shipped at build time
//! (`ClusterBlock::{block,total}_norms_sq`).
//!
//! Cosine adds one more step: final scores are the negated dot product
//! *divided by the full norms* (`-q·p / (‖q‖‖p‖)`), so the optimistic
//! completion bound must be rescaled into that normalized space before it
//! is compared against `τ` — see [`PruneRule::should_prune_cosine`]. This
//! keeps worker-side partials comparable with the client-side prewarm
//! scores ([`Metric::score`]) even for unnormalized inputs.
//!
//! ## Quantized (SQ8) partials
//!
//! When blocks are stored SQ8-quantized, the stage-1 partials are computed
//! over *dequantized* coordinates, so they differ from the exact partials by
//! a bounded perturbation. Comparing a quantized partial against an
//! exact-domain threshold `τ` (the client's prewarm threshold and the final
//! re-ranked scores are exact) therefore requires *widening* the prune test
//! by the accumulated quantization error, or exact survivors could be
//! dropped:
//!
//! * **L2** — with `ε = ε_q + ε_p` (query- and point-side row error bounds
//!   accumulated additively along the pipeline),
//!   `‖q−p‖ ≥ ‖dq(q)−dq(p)‖ − ε`, so prune iff
//!   `(√partial − ε)₊² > τ` ([`PruneRule::should_prune_quantized`]).
//! * **IP / cosine** — the dequantized dot product differs from the exact
//!   one by at most `ε_q·max‖p‖ + (‖q‖+ε_q)·ε_p` per block; that slack is
//!   subtracted from the admissible bound (cosine: before normalization,
//!   [`PruneRule::should_prune_cosine_quantized`]).
//!
//! Comparisons *within* the quantized domain (a worker-local top-k built
//! from quantized scores, compared against quantized scores) need no
//! widening — both sides carry the same perturbation. The widening is only
//! for mixed-domain tests, and `quant_eps = 0` reduces every quantized rule
//! to its exact counterpart.

use harmony_index::Metric;

/// Decides whether candidates can be discarded given partial information.
#[derive(Debug, Clone, Copy)]
pub struct PruneRule {
    metric: Metric,
    enabled: bool,
}

impl PruneRule {
    /// A rule for `metric`; `enabled = false` never prunes (the ablation
    /// baseline of Fig. 9).
    pub fn new(metric: Metric, enabled: bool) -> Self {
        Self { metric, enabled }
    }

    /// The metric this rule serves.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// `true` when pruning is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Should a candidate be pruned?
    ///
    /// * `partial` — accumulated lower-is-better partial score,
    /// * `threshold` — current `τ` (the k-th best full score),
    /// * `q_rest_sq` / `p_rest_sq` — squared norms of the *unvisited*
    ///   coordinates of query and candidate (ignored under L2).
    #[inline]
    pub fn should_prune(
        &self,
        partial: f32,
        threshold: f32,
        q_rest_sq: f32,
        p_rest_sq: f32,
    ) -> bool {
        if !self.enabled || threshold == f32::INFINITY {
            return false;
        }
        match self.metric {
            // L2 partials only grow: the current sum is already a valid
            // lower bound on the final score.
            Metric::L2 => partial > threshold,
            // Optimistic completion via Cauchy–Schwarz.
            Metric::InnerProduct | Metric::Cosine => {
                let best_remaining = (q_rest_sq.max(0.0) * p_rest_sq.max(0.0)).sqrt();
                partial - best_remaining > threshold
            }
        }
    }

    /// Cosine-specific prune test on an accumulated *raw* (negated dot
    /// product) partial.
    ///
    /// The admissible bound is the inner-product completion bound rescaled
    /// by the full norms: since the final cosine score is
    /// `-q·p / (‖q‖‖p‖)` and `-q·p ≥ partial − √(q_rest²·p_rest²)`,
    ///
    /// ```text
    /// final_score ≥ (partial − √(q_rest² · p_rest²)) / √(q_total² · p_total²)
    /// ```
    ///
    /// Zero-norm vectors score exactly 0 (matching
    /// [`harmony_index::distance::cosine`]), so their bound is 0 as well.
    #[inline]
    pub fn should_prune_cosine(
        &self,
        partial: f32,
        threshold: f32,
        q_rest_sq: f32,
        p_rest_sq: f32,
        q_total_sq: f32,
        p_total_sq: f32,
    ) -> bool {
        if !self.enabled || threshold == f32::INFINITY {
            return false;
        }
        let best_remaining = (q_rest_sq.max(0.0) * p_rest_sq.max(0.0)).sqrt();
        let denom = (q_total_sq.max(0.0) * p_total_sq.max(0.0)).sqrt();
        let bound = if denom > 0.0 {
            (partial - best_remaining) / denom
        } else {
            0.0
        };
        bound > threshold
    }

    /// [`Self::should_prune`] widened by accumulated quantization error, for
    /// SQ8 stage-1 partials compared against an exact-domain threshold.
    ///
    /// * Under L2, `quant_eps` is an upper bound on
    ///   `‖q − dq(q)‖ + ‖p − dq(p)‖` over the visited dimensions, so by the
    ///   triangle inequality the exact distance satisfies
    ///   `‖q−p‖ ≥ √partial − quant_eps` and the admissible squared lower
    ///   bound is `max(0, √partial − quant_eps)²`.
    /// * Under IP/cosine, `quant_eps` is an upper bound on the absolute dot
    ///   product error over the visited dimensions and is subtracted from
    ///   the optimistic completion directly.
    ///
    /// `quant_eps <= 0` delegates to the exact rule unchanged.
    #[inline]
    pub fn should_prune_quantized(
        &self,
        partial: f32,
        threshold: f32,
        q_rest_sq: f32,
        p_rest_sq: f32,
        quant_eps: f32,
    ) -> bool {
        if quant_eps <= 0.0 {
            return self.should_prune(partial, threshold, q_rest_sq, p_rest_sq);
        }
        if !self.enabled || threshold == f32::INFINITY {
            return false;
        }
        match self.metric {
            Metric::L2 => {
                let lower = (partial.max(0.0).sqrt() - quant_eps).max(0.0);
                lower * lower > threshold
            }
            Metric::InnerProduct | Metric::Cosine => {
                let best_remaining = (q_rest_sq.max(0.0) * p_rest_sq.max(0.0)).sqrt();
                partial - best_remaining - quant_eps > threshold
            }
        }
    }

    /// [`Self::should_prune_cosine`] widened by accumulated quantization
    /// error: the raw-dot-product slack `quant_eps` is subtracted from the
    /// numerator *before* normalization, since the error lives in the
    /// unnormalized dot-product space.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn should_prune_cosine_quantized(
        &self,
        partial: f32,
        threshold: f32,
        q_rest_sq: f32,
        p_rest_sq: f32,
        q_total_sq: f32,
        p_total_sq: f32,
        quant_eps: f32,
    ) -> bool {
        if quant_eps <= 0.0 {
            return self.should_prune_cosine(
                partial, threshold, q_rest_sq, p_rest_sq, q_total_sq, p_total_sq,
            );
        }
        if !self.enabled || threshold == f32::INFINITY {
            return false;
        }
        let best_remaining = (q_rest_sq.max(0.0) * p_rest_sq.max(0.0)).sqrt();
        let denom = (q_total_sq.max(0.0) * p_total_sq.max(0.0)).sqrt();
        let bound = if denom > 0.0 {
            (partial - best_remaining - quant_eps) / denom
        } else {
            0.0
        };
        bound > threshold
    }
}

/// Client-side accumulator of per-slice pruning ratios (Fig. 2a, Table 3).
///
/// `record(position, seen, pruned)` is fed from worker stats; ratios are
/// *cumulative*: `ratio(i)` = the fraction of slice-0 candidates already
/// gone when slice `i` runs, matching the paper's presentation where the
/// first slice is always 0 %.
#[derive(Debug, Clone, Default)]
pub struct SliceStats {
    /// Candidates entering each pipeline position.
    pub seen: Vec<u64>,
    /// Candidates pruned at each pipeline position.
    pub pruned: Vec<u64>,
}

impl SliceStats {
    /// Creates stats for a pipeline of `positions` slices.
    pub fn new(positions: usize) -> Self {
        Self {
            seen: vec![0; positions],
            pruned: vec![0; positions],
        }
    }

    /// Accumulates one worker's report.
    pub fn merge_report(&mut self, slice_in: &[u64], slice_pruned: &[u64]) {
        let len = self.seen.len().max(slice_in.len()).max(slice_pruned.len());
        self.seen.resize(len, 0);
        self.pruned.resize(len, 0);
        for (i, &v) in slice_in.iter().enumerate() {
            self.seen[i] += v;
        }
        for (i, &v) in slice_pruned.iter().enumerate() {
            self.pruned[i] += v;
        }
    }

    /// Cumulative pruning ratio per slice, in percent. Slice 0 is 0 % by
    /// construction.
    pub fn cumulative_ratios(&self) -> Vec<f64> {
        let total = self.seen.first().copied().unwrap_or(0);
        if total == 0 {
            return vec![0.0; self.seen.len()];
        }
        self.seen
            .iter()
            .map(|&reached| (1.0 - reached as f64 / total as f64) * 100.0)
            .collect()
    }

    /// Average of the per-slice cumulative ratios (the paper's "Average
    /// Pruning Ratio" column in Table 3).
    pub fn average_ratio(&self) -> f64 {
        let ratios = self.cumulative_ratios();
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }

    /// Fraction of point-dimension work skipped overall: pruned candidates
    /// skip all their remaining slices.
    pub fn work_saved_percent(&self) -> f64 {
        let slices = self.seen.len();
        if slices == 0 || self.seen[0] == 0 {
            return 0.0;
        }
        let full_work = (self.seen[0] * slices as u64) as f64;
        let done_work: f64 = self.seen.iter().map(|&s| s as f64).sum();
        (1.0 - done_work / full_work) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_prunes_on_partial_exceeding_threshold() {
        let rule = PruneRule::new(Metric::L2, true);
        assert!(rule.should_prune(5.0, 4.0, 0.0, 0.0));
        assert!(!rule.should_prune(3.0, 4.0, 0.0, 0.0));
        // Equal is not strictly greater: keep (could still tie into top-k).
        assert!(!rule.should_prune(4.0, 4.0, 0.0, 0.0));
    }

    #[test]
    fn disabled_rule_never_prunes() {
        let rule = PruneRule::new(Metric::L2, false);
        assert!(!rule.should_prune(1e9, 0.0, 0.0, 0.0));
    }

    #[test]
    fn infinite_threshold_never_prunes() {
        let rule = PruneRule::new(Metric::L2, true);
        assert!(!rule.should_prune(1e9, f32::INFINITY, 0.0, 0.0));
    }

    #[test]
    fn ip_uses_cauchy_schwarz_bound() {
        let rule = PruneRule::new(Metric::InnerProduct, true);
        // partial = -2 (i.e. dot product 2 so far); remaining best is
        // sqrt(1*4) = 2, so the final score can reach -4.
        assert!(!rule.should_prune(-2.0, -3.5, 1.0, 4.0));
        // With tiny residuals the bound collapses to the partial itself.
        assert!(rule.should_prune(-2.0, -3.5, 0.01, 0.01));
    }

    #[test]
    fn ip_bound_is_admissible() {
        // Construct explicit vectors and verify the bound never prunes the
        // true best completion.
        let q = [1.0f32, 0.0, 2.0, -1.0];
        let p = [0.5f32, 1.0, -0.5, 2.0];
        let split = 2;
        let partial: f32 = -(q[..split]
            .iter()
            .zip(&p[..split])
            .map(|(a, b)| a * b)
            .sum::<f32>());
        let full: f32 = -(q.iter().zip(&p).map(|(a, b)| a * b).sum::<f32>());
        let q_rest_sq: f32 = q[split..].iter().map(|x| x * x).sum();
        let p_rest_sq: f32 = p[split..].iter().map(|x| x * x).sum();
        let bound = partial - (q_rest_sq * p_rest_sq).sqrt();
        assert!(
            bound <= full + 1e-6,
            "bound {bound} must lower-bound the final score {full}"
        );
        // Therefore pruning with threshold >= full never fires.
        let rule = PruneRule::new(Metric::InnerProduct, true);
        assert!(!rule.should_prune(partial, full, q_rest_sq, p_rest_sq));
    }

    #[test]
    fn cosine_bound_is_admissible_for_unnormalized_vectors() {
        // Unnormalized vectors with very different magnitudes: the raw -q·p
        // partial would be wildly out of scale with a cosine threshold.
        let q = [3.0f32, -1.5, 4.0, 2.0];
        let p = [0.2f32, 0.1, -0.3, 0.05];
        let split = 2;
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        let partial = -dot(&q[..split], &p[..split]);
        let q_rest_sq = dot(&q[split..], &q[split..]);
        let p_rest_sq = dot(&p[split..], &p[split..]);
        let q_total_sq = dot(&q, &q);
        let p_total_sq = dot(&p, &p);
        let full = -dot(&q, &p) / (q_total_sq * p_total_sq).sqrt();

        let rule = PruneRule::new(Metric::Cosine, true);
        // The true final score must never be pruned by its own threshold.
        assert!(
            !rule.should_prune_cosine(partial, full, q_rest_sq, p_rest_sq, q_total_sq, p_total_sq)
        );
        // A threshold strictly better than the best possible completion
        // does prune.
        let bound = (partial - (q_rest_sq * p_rest_sq).sqrt()) / (q_total_sq * p_total_sq).sqrt();
        assert!(rule.should_prune_cosine(
            partial,
            bound - 1e-3,
            q_rest_sq,
            p_rest_sq,
            q_total_sq,
            p_total_sq
        ));
    }

    #[test]
    fn cosine_bound_handles_zero_norms_and_disabled_rule() {
        let rule = PruneRule::new(Metric::Cosine, true);
        // Zero-norm candidate: score is defined as 0; prune only when the
        // threshold is better than 0.
        assert!(rule.should_prune_cosine(0.0, -0.5, 0.0, 0.0, 1.0, 0.0));
        assert!(!rule.should_prune_cosine(0.0, 0.5, 0.0, 0.0, 1.0, 0.0));
        let off = PruneRule::new(Metric::Cosine, false);
        assert!(!off.should_prune_cosine(1e9, -1.0, 0.0, 0.0, 1.0, 1.0));
        assert!(!rule.should_prune_cosine(1e9, f32::INFINITY, 0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn quantized_l2_rule_is_widened_and_admissible() {
        let rule = PruneRule::new(Metric::L2, true);
        // Exact partial 9.0 (distance 3) with eps 0.5: lower bound is
        // (3 - 0.5)^2 = 6.25 — prune only past that.
        assert!(!rule.should_prune_quantized(9.0, 6.25, 0.0, 0.0, 0.5));
        assert!(rule.should_prune_quantized(9.0, 6.2, 0.0, 0.0, 0.5));
        // The exact rule would have pruned at tau = 8.0; the widened one
        // keeps the candidate because quantization might explain the gap.
        assert!(rule.should_prune(9.0, 8.0, 0.0, 0.0));
        assert!(!rule.should_prune_quantized(9.0, 8.0, 0.0, 0.0, 0.5));
        // eps = 0 degenerates to the exact rule.
        assert!(rule.should_prune_quantized(9.0, 8.0, 0.0, 0.0, 0.0));
        // Simulated quantized measurement of a true distance: the true
        // score must never be pruned by its own threshold when the
        // perturbation stays within eps.
        let true_dist_sq = 4.0f32;
        let eps = 0.25f32;
        for k in 0..20 {
            let noise = eps * (k as f32 / 19.0 * 2.0 - 1.0);
            let measured = (true_dist_sq.sqrt() + noise).powi(2);
            assert!(
                !rule.should_prune_quantized(measured, true_dist_sq, 0.0, 0.0, eps),
                "noise {noise} pruned the true score"
            );
        }
    }

    #[test]
    fn quantized_ip_and_cosine_rules_subtract_slack() {
        let ip = PruneRule::new(Metric::InnerProduct, true);
        // Exact rule prunes at partial - best_remaining > tau; the widened
        // rule gives quantization the benefit of the doubt.
        assert!(ip.should_prune(-2.0, -3.5, 0.01, 0.01));
        assert!(!ip.should_prune_quantized(-2.0, -3.5, 0.01, 0.01, 2.0));
        assert!(ip.should_prune_quantized(-2.0, -3.5, 0.01, 0.01, 0.5));
        assert!(!ip.should_prune_quantized(-2.0, f32::INFINITY, 0.0, 0.0, 0.5));

        let cos = PruneRule::new(Metric::Cosine, true);
        let (q_rest_sq, p_rest_sq, q_total_sq, p_total_sq) = (1.0, 1.0, 4.0, 4.0);
        let partial = -1.0f32;
        let exact_bound = (partial - 1.0) / 4.0; // -0.5
        assert!(cos.should_prune_cosine(
            partial,
            exact_bound - 1e-3,
            q_rest_sq,
            p_rest_sq,
            q_total_sq,
            p_total_sq
        ));
        // Slack 1.0 in dot space moves the bound to -0.75.
        assert!(!cos.should_prune_cosine_quantized(
            partial,
            exact_bound - 1e-3,
            q_rest_sq,
            p_rest_sq,
            q_total_sq,
            p_total_sq,
            1.0
        ));
        assert!(cos.should_prune_cosine_quantized(
            partial, -0.76, q_rest_sq, p_rest_sq, q_total_sq, p_total_sq, 1.0
        ));
        // Zero-norm candidates still score 0.
        assert!(cos.should_prune_cosine_quantized(0.0, -0.5, 0.0, 0.0, 1.0, 0.0, 1.0));
        assert!(!cos.should_prune_cosine_quantized(0.0, 0.5, 0.0, 0.0, 1.0, 0.0, 1.0));
    }

    #[test]
    fn slice_stats_cumulative_ratios_match_paper_shape() {
        let mut s = SliceStats::new(4);
        // 1000 candidates enter slice 0; 505 survive to slice 1; etc. —
        // mirroring Fig. 2a's 0 / 49.5 / 82.3 / 97.4 %.
        s.merge_report(&[1000, 505, 177, 26], &[495, 328, 151, 20]);
        let ratios = s.cumulative_ratios();
        assert_eq!(ratios[0], 0.0);
        assert!((ratios[1] - 49.5).abs() < 0.01);
        assert!((ratios[2] - 82.3).abs() < 0.01);
        assert!((ratios[3] - 97.4).abs() < 0.01);
        assert!(s.average_ratio() > 50.0);
    }

    #[test]
    fn slice_stats_merge_accumulates() {
        let mut s = SliceStats::new(2);
        s.merge_report(&[10, 5], &[5, 2]);
        s.merge_report(&[10, 5], &[5, 2]);
        assert_eq!(s.seen, vec![20, 10]);
        assert_eq!(s.pruned, vec![10, 4]);
    }

    #[test]
    fn work_saved_reflects_skipped_slices() {
        let mut s = SliceStats::new(4);
        // No pruning: everyone visits all 4 slices → 0 % saved.
        s.merge_report(&[100, 100, 100, 100], &[0, 0, 0, 0]);
        assert_eq!(s.work_saved_percent(), 0.0);

        let mut s = SliceStats::new(4);
        // Everything pruned after slice 0 → 75 % of work skipped.
        s.merge_report(&[100, 0, 0, 0], &[100, 0, 0, 0]);
        assert!((s.work_saved_percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_quiet() {
        let s = SliceStats::new(0);
        assert_eq!(s.average_ratio(), 0.0);
        assert_eq!(s.work_saved_percent(), 0.0);
        let s = SliceStats::new(3);
        assert_eq!(s.cumulative_ratios(), vec![0.0, 0.0, 0.0]);
    }
}
