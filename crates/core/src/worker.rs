//! The Harmony worker: hosts grid blocks and executes the dimension
//! pipeline (Algorithm 1's `DimensionPipeline`, Fig. 5b).
//!
//! Each worker owns one grid block `V_s D_b` per shard it participates in:
//! the vectors of shard `s`'s inverted lists, restricted to dimension block
//! `b`. Query execution is a relay:
//!
//! 1. The *first* machine of a query's pipeline order enumerates candidates
//!    from its probed lists, computes partial scores over its dimension
//!    range, prunes against the threshold, and forwards survivors as a
//!    [`Carry`].
//! 2. *Middle* machines add their block's contribution to each carried
//!    partial, prune again (partials only grow under L2), and forward.
//! 3. The *last* machine completes the scores, keeps the best `k`, and
//!    reports a [`QueryResult`] to the client.
//!
//! Reported scores live in the metric's client-side lower-is-better space
//! ([`Metric::score`]): raw for L2 and inner product, and normalized by the
//! full vector norms for cosine (using the `total_norms_sq` tables shipped
//! at load time), so merged heaps never mix incomparable orderings even
//! when inputs are not normalized at ingestion.
//!
//! The chunk for a machine may arrive after the carry from its predecessor
//! (different senders, one mailbox), so both orders are buffered.
//! Per-position pruning counters feed Fig. 2a and Table 3.
//!
//! # Epochs and live migration
//!
//! Block storage is keyed by *routing epoch*. A live replan installs the
//! next epoch's grid block — assembled from [`ListPiece`]s shipped between
//! machines over the same fabric that carries queries — while queries
//! admitted under the old epoch keep executing against the old storage.
//! The worker activates an epoch (and acks [`ToClient::EpochReady`]) only
//! once every announced piece has arrived, and drops a retired epoch only
//! on an explicit [`ToWorker::EvictEpoch`], which the client sends after
//! the last in-flight query of that epoch has drained.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use harmony_cluster::{mem, NodeCtx, NodeHandler, NodeId, Wire, CLIENT};
use harmony_index::distance::{ip, l2_sq};
use harmony_index::persist::{load_block_file, save_block_file};
use harmony_index::quant::{self, Sq8BlockQuery};
use harmony_index::{
    BlockCache, BlockRepr, DeltaList, Metric, Sq8Segment, Temperature, TombstoneSet, TopK,
};

use crate::messages::{
    metric_tag, repr_tag, BeginEpoch, Carry, ClusterBlock, DeleteIds, DeltaUpsert, InstallLists,
    ListPiece, LoadBlock, MigrateOut, QueryChunk, QueryResult, SetTier, StatsReport, ToClient,
    ToWorker,
};
use crate::pruning::PruneRule;

/// Addresses one grid block in the tier machinery: `(ns, epoch, shard)`.
/// A worker hosts at most one block per shard per `(ns, epoch)`, so the key
/// is unique within a worker (and spill files live in a per-worker
/// directory, so it is unique on disk too).
type SpillKey = (u16, u64, u32);

/// Distinguishes concurrently-constructed workers' default spill
/// directories within one process.
static SPILL_DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// The vector payload of one list block, in its resident representation.
enum BlockData {
    /// Exact row-major `f32` rows.
    F32 { flat: Vec<f32> },
    /// SQ8-quantized dimension-slice segments, sorted by `dim_start`.
    Sq8 { segs: Vec<Sq8Segment> },
}

/// One inverted list restricted to this worker's dimension block.
struct ListBlock {
    ids: Vec<u64>,
    data: BlockData,
    block_norms_sq: Vec<f32>,
    total_norms_sq: Vec<f32>,
    /// Max of `block_norms_sq` (0 when empty) — the `max‖p‖²` term of the
    /// SQ8 inner-product prune-slack widening.
    max_block_norm_sq: f32,
    width: usize,
}

impl ListBlock {
    fn rows(&self) -> usize {
        self.ids.len()
    }

    /// Resident payload bytes split by representation: `(f32, sq8)`.
    fn payload_bytes(&self) -> (usize, usize) {
        match &self.data {
            BlockData::F32 { flat } => (flat.capacity() * 4, 0),
            BlockData::Sq8 { segs } => (0, quant::segs_memory_bytes(segs)),
        }
    }

    fn memory_bytes(&self) -> usize {
        let (f, s) = self.payload_bytes();
        self.ids.capacity() * 8
            + f
            + s
            + self.block_norms_sq.capacity() * 4
            + self.total_norms_sq.capacity() * 4
    }
}

fn max_norm(norms: &[f32]) -> f32 {
    norms.iter().fold(0.0f32, |a, &b| a.max(b))
}

/// Storage for one grid block `V_s D_b`.
struct BlockStore {
    /// Absolute dimension range `[start, end)` of the block — needed to
    /// slice sub-ranges out during migration.
    dim_start: u64,
    dim_end: u64,
    lists: HashMap<u32, ListBlock>,
}

impl BlockStore {
    fn memory_bytes(&self) -> usize {
        self.lists
            .values()
            .map(ListBlock::memory_bytes)
            .sum::<usize>()
    }

    /// Resident payload bytes split by representation: `(f32, sq8)`.
    fn payload_bytes(&self) -> (usize, usize) {
        self.lists.values().fold((0, 0), |(f, s), l| {
            let (lf, ls) = l.payload_bytes();
            (f + lf, s + ls)
        })
    }
}

/// Accounts a block store's payload into the process-wide per-repr gauges.
fn gauge_add(store: &BlockStore) {
    let (f, s) = store.payload_bytes();
    mem::f32_block_add(f);
    mem::sq8_block_add(s);
}

/// Removes a block store's payload from the per-repr gauges.
fn gauge_sub(store: &BlockStore) {
    let (f, s) = store.payload_bytes();
    mem::f32_block_sub(f);
    mem::sq8_block_sub(s);
}

/// The disk backing of a spilled grid block.
struct SpillFile {
    path: PathBuf,
    /// Serialized payload bytes on disk (the spilled-byte gauge's unit).
    payload_bytes: usize,
}

/// One shard's grid block under the tier machinery: RAM payload, disk
/// backing, or both (warm blocks faulted into the cache keep their file —
/// spill files are immutable for the life of the block, so demoting again
/// is free).
struct BlockSlot {
    /// RAM-resident payload; `None` while spilled out.
    resident: Option<BlockStore>,
    /// Disk backing; `None` for hot (pinned) blocks.
    spill: Option<SpillFile>,
}

impl BlockSlot {
    fn pinned(store: BlockStore) -> Self {
        Self {
            resident: Some(store),
            spill: None,
        }
    }
}

/// Serializes a block store for spilling. The list payload reuses the wire
/// codec's [`ClusterBlock`] encoding (sorted by cluster id), so a faulted
/// block rebuilds through the exact path a [`LoadBlock`] takes — faulting
/// is a pure byte round-trip and search results stay bit-identical.
fn encode_block_store(store: &BlockStore) -> Vec<u8> {
    let mut clusters: Vec<ClusterBlock> = store
        .lists
        .iter()
        .map(|(&cluster, l)| ClusterBlock {
            cluster,
            ids: l.ids.clone(),
            flat: match &l.data {
                BlockData::F32 { flat } => flat.clone(),
                BlockData::Sq8 { .. } => Vec::new(),
            },
            segs: match &l.data {
                BlockData::F32 { .. } => Vec::new(),
                BlockData::Sq8 { segs } => segs.clone(),
            },
            block_norms_sq: l.block_norms_sq.clone(),
            total_norms_sq: l.total_norms_sq.clone(),
        })
        .collect();
    clusters.sort_by_key(|c| c.cluster);
    let mut buf = BytesMut::new();
    store.dim_start.encode(&mut buf);
    store.dim_end.encode(&mut buf);
    clusters.encode(&mut buf);
    buf.to_vec()
}

/// Rebuilds a block store from a spill payload. Returns `None` on any
/// decode mismatch (a corrupt file already failed the checksum in
/// [`load_block_file`]; this guards logic errors).
fn decode_block_store(payload: &[u8]) -> Option<BlockStore> {
    let mut buf = Bytes::copy_from_slice(payload);
    let dim_start = u64::decode(&mut buf).ok()?;
    let dim_end = u64::decode(&mut buf).ok()?;
    let clusters = Vec::<ClusterBlock>::decode(&mut buf).ok()?;
    let width = (dim_end - dim_start) as usize;
    let mut lists = HashMap::with_capacity(clusters.len());
    for cb in clusters {
        let data = if cb.segs.is_empty() {
            BlockData::F32 { flat: cb.flat }
        } else {
            BlockData::Sq8 { segs: cb.segs }
        };
        let max_block_norm_sq = max_norm(&cb.block_norms_sq);
        lists.insert(
            cb.cluster,
            ListBlock {
                ids: cb.ids,
                data,
                block_norms_sq: cb.block_norms_sq,
                total_norms_sq: cb.total_norms_sq,
                max_block_norm_sq,
                width,
            },
        );
    }
    Some(BlockStore {
        dim_start,
        dim_end,
        lists,
    })
}

/// Per-namespace query configuration, set by the namespace's first
/// [`LoadBlock`] and inherited by every later epoch (migrations never
/// change a namespace's metric or pruning rule).
#[derive(Clone, Copy)]
struct NsMeta {
    metric: Metric,
    rule: PruneRule,
}

impl Default for NsMeta {
    fn default() -> Self {
        Self {
            metric: Metric::L2,
            rule: PruneRule::new(Metric::L2, true),
        }
    }
}

/// All grid blocks this machine hosts under one `(ns, epoch)`.
struct EpochStore {
    /// Pipeline length of the epoch's plan.
    total_dim_blocks: usize,
    /// shard → block slot (resident, spilled, or both).
    blocks: HashMap<u32, BlockSlot>,
    /// shard → freshly upserted rows (this machine's dimension slice),
    /// appended in ingest-sequence order and scanned exactly after the
    /// probed lists. Folded away when a compaction publishes the next
    /// epoch.
    deltas: HashMap<u32, DeltaList>,
    /// Soft-deleted ids. Consulted only at result emission; stored rows are
    /// never removed, so the canonical candidate enumeration stays
    /// identical across every machine of a shard row.
    tombstones: TombstoneSet,
}

impl EpochStore {
    fn new(total_dim_blocks: usize) -> Self {
        Self {
            total_dim_blocks,
            blocks: HashMap::new(),
            deltas: HashMap::new(),
            tombstones: TombstoneSet::new(),
        }
    }

    fn delta_bytes(&self) -> usize {
        self.deltas.values().map(DeltaList::memory_bytes).sum()
    }
}

/// A new epoch's grid block while its migrated pieces stream in.
struct InstallAssembly {
    shard: u32,
    dim_block: u32,
    dim_start: u64,
    dim_end: u64,
    total_dim_blocks: u32,
    expected_pieces: u64,
    received: u64,
    clusters: HashMap<u32, ClusterAssembly>,
}

/// One cluster being reassembled from dimension sub-range pieces.
struct ClusterAssembly {
    ids: Vec<u64>,
    /// Row-major, `width` floats per member; columns filled as pieces land
    /// (f32 pieces only; empty under SQ8).
    flat: Vec<f32>,
    /// SQ8 segments collected from pieces; sorted by `dim_start` at
    /// activation so the assembled order is canonical regardless of piece
    /// arrival order.
    segs: Vec<Sq8Segment>,
    block_norms_sq: Vec<f32>,
    total_norms_sq: Vec<f32>,
    width: usize,
}

/// In-flight pipeline state keyed by `(query_id, shard)`.
#[derive(Default)]
struct PendingTables {
    chunks: HashMap<(u64, u32), QueryChunk>,
    carries: HashMap<(u64, u32), Carry>,
}

/// Negated dot product: the lower-is-better partial for similarity metrics.
fn neg_ip(a: &[f32], b: &[f32]) -> f32 {
    -ip(a, b)
}

/// Final cosine score from a fully accumulated raw partial (`-q·p`):
/// normalized by the full vector norms so worker results land in the same
/// lower-is-better space as the client's prewarm scores
/// ([`Metric::score`]), even for unnormalized inputs. Zero-norm vectors
/// score 0, matching [`harmony_index::distance::cosine`].
#[inline]
fn cos_normalize(partial: f32, q_total_sq: f32, p_total_sq: f32) -> f32 {
    let denom = (q_total_sq * p_total_sq).sqrt();
    if denom > 0.0 {
        partial / denom
    } else {
        0.0
    }
}

/// Hoists the metric dispatch out of per-candidate loops: with dimension
/// blocks as thin as 32 floats, a per-candidate `match` + feature check
/// costs as much as the kernel itself.
#[inline]
fn scorer_for(metric: Metric) -> fn(&[f32], &[f32]) -> f32 {
    match metric {
        Metric::L2 => l2_sq,
        Metric::InnerProduct | Metric::Cosine => neg_ip,
    }
}

/// Per-(query, list) scan state, prepared once per list so the row loop
/// stays branch-cheap. The f32 path keeps the hoisted scorer; the SQ8 path
/// carries the query quantized against the list's segments plus this hop's
/// prune-widening term `eps` (distance-space under L2, dot-space under
/// IP/cosine — see the `pruning` module docs).
enum PreparedQuery<'a> {
    F32 {
        flat: &'a [f32],
        scorer: fn(&[f32], &[f32]) -> f32,
    },
    Sq8 {
        segs: &'a [Sq8Segment],
        bq: Sq8BlockQuery,
        /// Negate the dot product for lower-is-better similarity metrics.
        neg: bool,
    },
}

impl<'a> PreparedQuery<'a> {
    /// Prepares a query against one list and returns the pair
    /// `(prepared, eps)` where `eps` widens this hop's prune bounds
    /// (0 for exact f32 lists).
    fn prepare(
        metric: Metric,
        list: &'a ListBlock,
        dims: &[f32],
        block_dim_start: u64,
        q_block_norm_sq: f32,
    ) -> (Self, f32) {
        match &list.data {
            BlockData::F32 { flat } => (
                PreparedQuery::F32 {
                    flat,
                    scorer: scorer_for(metric),
                },
                0.0,
            ),
            BlockData::Sq8 { segs } => {
                let bq = quant::prepare_block_query(segs, dims, block_dim_start);
                let eps = match metric {
                    // Triangle inequality: ‖q−p‖ ≥ ‖dq(q)−dq(p)‖ − (E_q+E_p).
                    Metric::L2 => bq.err + bq.data_err,
                    // |q·p − dq(q)·dq(p)| ≤ E_q·‖p‖ + (‖q‖+E_q)·E_p. The
                    // stored block norm may itself be a dequantized lower
                    // bound after a migration, so pad it by 2·E_p to keep
                    // the slack an upper bound on the true ‖p‖ term.
                    Metric::InnerProduct | Metric::Cosine => {
                        let p_norm = list.max_block_norm_sq.max(0.0).sqrt() + 2.0 * bq.data_err;
                        bq.err * p_norm + (q_block_norm_sq.max(0.0).sqrt() + bq.err) * bq.data_err
                    }
                };
                (
                    PreparedQuery::Sq8 {
                        segs,
                        bq,
                        neg: !matches!(metric, Metric::L2),
                    },
                    eps,
                )
            }
        }
    }

    /// Stage-1 partial score of `row` (quantized under SQ8, exact for f32).
    #[inline]
    fn score(&self, dims: &[f32], width: usize, row: usize) -> f32 {
        match self {
            PreparedQuery::F32 { flat, scorer } => {
                scorer(dims, &flat[row * width..(row + 1) * width])
            }
            PreparedQuery::Sq8 { segs, bq, neg } => {
                if *neg {
                    -quant::ip_dot_row(segs, bq, row)
                } else {
                    quant::l2_partial_row(segs, bq, row)
                }
            }
        }
    }
}

/// The Harmony worker node handler.
pub struct HarmonyWorker {
    /// `(ns, epoch)` → grid-block storage. Queries resolve their storage by
    /// the namespace and epoch stamped on the chunk, so in-flight traffic
    /// survives a live migration untouched and tenants never see each
    /// other's blocks. Epoch numbers are per-namespace sequences.
    epochs: HashMap<(u16, u64), EpochStore>,
    /// Epochs whose pieces are still streaming in.
    installs: HashMap<(u16, u64), InstallAssembly>,
    /// Pieces that raced ahead of their [`BeginEpoch`] announcement.
    orphan_pieces: HashMap<(u16, u64), Vec<InstallLists>>,
    /// Per-namespace highest epoch ever evicted. Epoch numbers are never
    /// reused within a namespace, so any announcement or piece at or below
    /// the watermark is a straggler of an aborted/retired epoch and is
    /// dropped instead of being stashed forever in `orphan_pieces` (peer
    /// [`InstallLists`] can outrun the client's [`ToWorker::EvictEpoch`] —
    /// different senders, no FIFO).
    evicted_watermark: HashMap<u16, u64>,
    pending: PendingTables,
    /// Per-namespace metric and pruning rule.
    ns_meta: HashMap<u16, NsMeta>,
    /// Per-namespace residency tier (absent = hot).
    tiers: HashMap<u16, Temperature>,
    /// LRU over faulted warm/cold blocks; payloads live in the slots.
    cache: BlockCache<SpillKey>,
    /// Directory for this worker's spill files (created lazily).
    spill_dir: PathBuf,
    spill_dir_ready: bool,
    /// Longest pipeline across live epochs (sizes the slice counters).
    slice_positions: usize,
    // --- statistics ---
    slice_in: Vec<u64>,
    slice_pruned: Vec<u64>,
    scanned_point_dims: u64,
    /// Wall nanoseconds spent in candidate scan loops (observed compute,
    /// fed back into the client's cost-model recalibration).
    compute_ns: u64,
}

impl Default for HarmonyWorker {
    fn default() -> Self {
        Self::new()
    }
}

/// Default warm-cache byte budget when the engine does not configure one.
const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

impl HarmonyWorker {
    /// Creates an empty worker; configuration arrives with the first
    /// [`LoadBlock`]. Spill files land in a per-instance temp directory.
    pub fn new() -> Self {
        let seq = SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("harmony-spill-{}", std::process::id()))
            .join(format!("w{seq}"));
        Self::with_tiering(dir, DEFAULT_CACHE_BUDGET)
    }

    /// Creates an empty worker that spills warm/cold blocks under
    /// `spill_dir` and caches faulted payloads up to `cache_budget` bytes.
    pub fn with_tiering(spill_dir: PathBuf, cache_budget: usize) -> Self {
        Self {
            epochs: HashMap::new(),
            installs: HashMap::new(),
            orphan_pieces: HashMap::new(),
            evicted_watermark: HashMap::new(),
            pending: PendingTables::default(),
            ns_meta: HashMap::new(),
            tiers: HashMap::new(),
            cache: BlockCache::new(cache_budget),
            spill_dir,
            spill_dir_ready: false,
            slice_positions: 1,
            slice_in: vec![0],
            slice_pruned: vec![0],
            scanned_point_dims: 0,
            compute_ns: 0,
        }
    }

    /// Per-namespace metric and pruning rule (default before any load).
    fn meta(&self, ns: u16) -> NsMeta {
        self.ns_meta.get(&ns).copied().unwrap_or_default()
    }

    fn tier(&self, ns: u16) -> Temperature {
        self.tiers.get(&ns).copied().unwrap_or_default()
    }

    fn watermarked(&self, ns: u16, epoch: u64) -> bool {
        self.evicted_watermark.get(&ns).is_some_and(|&w| epoch <= w)
    }

    fn spill_path(&self, key: SpillKey) -> PathBuf {
        let (ns, epoch, shard) = key;
        self.spill_dir.join(format!("ns{ns}-e{epoch}-s{shard}.blk"))
    }

    /// Drops a slot's resident payload (cache eviction / cold demotion).
    /// Only slots with a disk backing may be evicted, so the data is never
    /// lost. The caller keeps the cache (and its gauge) in sync.
    fn evict_resident(slot: &mut BlockSlot) {
        debug_assert!(slot.spill.is_some(), "evicting a block with no backing");
        if let Some(store) = slot.resident.take() {
            gauge_sub(&store);
        }
    }

    /// Mirrors the process-wide cache gauge onto the cache's tracked bytes
    /// after a mutation; `before` is `cache.resident_bytes()` prior to it.
    fn sync_cache_gauge(&self, before: usize) {
        let after = self.cache.resident_bytes();
        if after > before {
            mem::cache_block_add(after - before);
        } else {
            mem::cache_block_sub(before - after);
        }
    }

    /// Evicts the slots named by a batch of cache-evicted keys.
    fn apply_cache_evictions(&mut self, evicted: Vec<SpillKey>) {
        for key in evicted {
            if let Some(slot) = self
                .epochs
                .get_mut(&(key.0, key.1))
                .and_then(|e| e.blocks.get_mut(&key.2))
            {
                Self::evict_resident(slot);
            }
        }
    }

    /// Ensures a spill file exists for the slot, writing one if needed.
    /// On I/O failure the slot simply keeps no backing — it then behaves
    /// as pinned (never cache-evicted), trading memory for safety.
    fn ensure_spilled(&mut self, key: SpillKey) {
        let path = self.spill_path(key);
        if !self.spill_dir_ready {
            if std::fs::create_dir_all(&self.spill_dir).is_err() {
                return;
            }
            self.spill_dir_ready = true;
        }
        let Some(slot) = self
            .epochs
            .get_mut(&(key.0, key.1))
            .and_then(|e| e.blocks.get_mut(&key.2))
        else {
            return;
        };
        if slot.spill.is_some() {
            return;
        }
        let Some(store) = slot.resident.as_ref() else {
            return;
        };
        let payload = encode_block_store(store);
        if save_block_file(&path, &payload).is_ok() {
            mem::spilled_block_add(payload.len());
            slot.spill = Some(SpillFile {
                path,
                payload_bytes: payload.len(),
            });
        }
    }

    /// Deletes a slot's spill file and releases its gauge bytes.
    fn drop_spill(slot: &mut BlockSlot) {
        if let Some(spill) = slot.spill.take() {
            mem::spilled_block_sub(spill.payload_bytes);
            let _ = std::fs::remove_file(&spill.path);
        }
    }

    /// Makes the block for `key` RAM-resident, faulting it from disk if the
    /// namespace is demoted, and refreshes its cache recency. Faulting may
    /// evict colder blocks past the cache budget.
    fn ensure_resident(&mut self, key: SpillKey) {
        let Some(slot) = self
            .epochs
            .get_mut(&(key.0, key.1))
            .and_then(|e| e.blocks.get_mut(&key.2))
        else {
            return;
        };
        if slot.resident.is_some() {
            if slot.spill.is_some() {
                self.cache.touch(&key);
            }
            return;
        }
        let Some(spill) = slot.spill.as_ref() else {
            return;
        };
        let Ok(payload) = load_block_file(&spill.path) else {
            return; // unreadable backing: degrade to an empty answer
        };
        let Some(store) = decode_block_store(&payload) else {
            return;
        };
        let (f, s) = store.payload_bytes();
        gauge_add(&store);
        slot.resident = Some(store);
        let before = self.cache.resident_bytes();
        let evicted = self.cache.insert(key, f + s);
        self.sync_cache_gauge(before);
        self.apply_cache_evictions(evicted);
    }

    /// Applies the namespace's current tier to a freshly installed block:
    /// hot blocks stay pinned, warm blocks gain a backing and enter the
    /// cache, cold blocks spill and drop their payload immediately.
    fn apply_tier(&mut self, key: SpillKey) {
        match self.tier(key.0) {
            Temperature::Hot => {}
            Temperature::Warm => {
                if self.cache.touch(&key) {
                    return; // already demoted and cached
                }
                self.ensure_spilled(key);
                let Some(slot) = self
                    .epochs
                    .get_mut(&(key.0, key.1))
                    .and_then(|e| e.blocks.get_mut(&key.2))
                else {
                    return;
                };
                if slot.spill.is_none() {
                    return; // spill failed: stay pinned
                }
                if let Some(store) = slot.resident.as_ref() {
                    let (f, s) = store.payload_bytes();
                    let before = self.cache.resident_bytes();
                    let evicted = self.cache.insert(key, f + s);
                    self.sync_cache_gauge(before);
                    self.apply_cache_evictions(evicted);
                }
            }
            Temperature::Cold => {
                self.ensure_spilled(key);
                let Some(slot) = self
                    .epochs
                    .get_mut(&(key.0, key.1))
                    .and_then(|e| e.blocks.get_mut(&key.2))
                else {
                    return;
                };
                if slot.spill.is_none() {
                    return;
                }
                Self::evict_resident(slot);
                let before = self.cache.resident_bytes();
                self.cache.remove(&key);
                self.sync_cache_gauge(before);
            }
        }
    }

    /// Every block key currently stored for a namespace.
    fn ns_keys(&self, ns: u16) -> Vec<SpillKey> {
        let mut keys: Vec<SpillKey> = self
            .epochs
            .iter()
            .filter(|((n, _), _)| *n == ns)
            .flat_map(|(&(n, e), store)| store.blocks.keys().map(move |&s| (n, e, s)))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Moves a namespace between residency tiers and acks the client.
    fn handle_set_tier(&mut self, ctx: &NodeCtx, msg: SetTier) {
        if let Some(tier) = Temperature::decode(msg.temperature) {
            self.tiers.insert(msg.ns, tier);
            for key in self.ns_keys(msg.ns) {
                match tier {
                    Temperature::Hot => {
                        // Promote: fault everything back, pin it, release
                        // the disk backing.
                        self.ensure_resident(key);
                        let before = self.cache.resident_bytes();
                        self.cache.remove(&key);
                        self.sync_cache_gauge(before);
                        if let Some(slot) = self
                            .epochs
                            .get_mut(&(key.0, key.1))
                            .and_then(|e| e.blocks.get_mut(&key.2))
                        {
                            Self::drop_spill(slot);
                        }
                    }
                    Temperature::Warm | Temperature::Cold => self.apply_tier(key),
                }
            }
        }
        let _ = ctx.send(CLIENT, ToClient::TierAck { ns: msg.ns }.to_bytes());
    }

    /// Grows the per-position pruning counters to cover `positions` slices
    /// (never shrinks: counters aggregate across epochs).
    fn ensure_slice_positions(&mut self, positions: usize) {
        if positions > self.slice_positions {
            self.slice_positions = positions;
        }
        if self.slice_in.len() < self.slice_positions {
            self.slice_in.resize(self.slice_positions, 0);
            self.slice_pruned.resize(self.slice_positions, 0);
        }
    }

    fn handle_load(&mut self, ctx: &NodeCtx, load: LoadBlock) {
        let metric = metric_tag::decode(load.metric).unwrap_or(Metric::L2);
        let repr = repr_tag::decode(load.repr).unwrap_or(BlockRepr::F32);
        self.ns_meta.insert(
            load.ns,
            NsMeta {
                metric,
                rule: PruneRule::new(metric, load.pruning),
            },
        );
        let total_dim_blocks = load.total_dim_blocks.max(1) as usize;
        self.ensure_slice_positions(total_dim_blocks);

        let width = (load.dim_end - load.dim_start) as usize;
        let mut lists = HashMap::with_capacity(load.lists.len());
        for cb in load.lists {
            let data = match repr {
                BlockRepr::F32 => BlockData::F32 { flat: cb.flat },
                BlockRepr::Sq8 => BlockData::Sq8 { segs: cb.segs },
            };
            let max_block_norm_sq = max_norm(&cb.block_norms_sq);
            lists.insert(
                cb.cluster,
                ListBlock {
                    ids: cb.ids,
                    data,
                    block_norms_sq: cb.block_norms_sq,
                    total_norms_sq: cb.total_norms_sq,
                    max_block_norm_sq,
                    width,
                },
            );
        }
        let ns = load.ns;
        let shard = load.shard;
        let dim_block = load.dim_block;
        let store = self
            .epochs
            .entry((ns, load.epoch))
            .or_insert_with(|| EpochStore::new(total_dim_blocks));
        store.total_dim_blocks = total_dim_blocks;
        let block = BlockStore {
            dim_start: load.dim_start,
            dim_end: load.dim_end,
            lists,
        };
        gauge_add(&block);
        let key: SpillKey = (ns, load.epoch, shard);
        if let Some(mut old) = store.blocks.insert(shard, BlockSlot::pinned(block)) {
            // Replaced block: its spill file (if any) describes stale data.
            if let Some(old_store) = old.resident.take() {
                gauge_sub(&old_store);
            }
            Self::drop_spill(&mut old);
            let before = self.cache.resident_bytes();
            self.cache.remove(&key);
            self.sync_cache_gauge(before);
        }
        // A demoted namespace keeps its tier across reloads.
        self.apply_tier(key);
        let ack = ToClient::LoadAck {
            ns,
            shard,
            dim_block,
        }
        .to_bytes();
        let _ = ctx.send(CLIENT, ack);
    }

    /// Appends freshly upserted rows to the target epoch's delta list for
    /// their home shard. Rows arrive in ingest-sequence order (FIFO from
    /// the client), so the list stays sorted by `seq` and a query's
    /// watermark selects a stable prefix on every machine of the row.
    fn handle_upsert_delta(&mut self, msg: DeltaUpsert) {
        if self.watermarked(msg.ns, msg.epoch) {
            return; // straggler for an evicted epoch
        }
        let is_ip = !matches!(self.meta(msg.ns).metric, Metric::L2);
        let width = (msg.dim_end - msg.dim_start) as usize;
        let store = self
            .epochs
            .entry((msg.ns, msg.epoch))
            .or_insert_with(|| EpochStore::new(1));
        let delta = store
            .deltas
            .entry(msg.shard)
            .or_insert_with(|| DeltaList::new(width));
        debug_assert_eq!(delta.width(), width, "delta slice width changed mid-epoch");
        let before = delta.memory_bytes();
        for (i, (&id, &seq)) in msg.ids.iter().zip(&msg.seqs).enumerate() {
            let row = &msg.flat[i * width..(i + 1) * width];
            let (bn, tn) = if is_ip {
                (msg.block_norms_sq[i], msg.total_norms_sq[i])
            } else {
                (0.0, 0.0)
            };
            delta.push(id, seq, row, bn, tn);
        }
        mem::delta_block_add(delta.memory_bytes() - before);
    }

    /// Records soft deletes in the target epoch's tombstone set (or every
    /// live epoch's for the [`u64::MAX`] sentinel). Stored rows are left in
    /// place; suppression happens at result emission.
    fn handle_delete_ids(&mut self, msg: DeleteIds) {
        let apply = |store: &mut EpochStore| {
            let before = store.tombstones.len();
            for &id in &msg.ids {
                store.tombstones.insert(id, msg.seq);
            }
            mem::tombstone_add(store.tombstones.len() - before);
        };
        if msg.epoch == u64::MAX {
            for (_, store) in self.epochs.iter_mut().filter(|((n, _), _)| *n == msg.ns) {
                apply(store);
            }
        } else if let Some(store) = self.epochs.get_mut(&(msg.ns, msg.epoch)) {
            apply(store);
        }
    }

    fn handle_chunk(&mut self, ctx: &NodeCtx, chunk: QueryChunk) {
        if chunk.position == 0 {
            self.start_pipeline(ctx, chunk);
        } else {
            let key = (chunk.query_id, chunk.shard);
            if let Some(carry) = self.pending.carries.remove(&key) {
                self.continue_pipeline(ctx, chunk, carry);
            } else {
                self.pending.chunks.insert(key, chunk);
            }
        }
    }

    fn handle_carry(&mut self, ctx: &NodeCtx, carry: Carry) {
        let key = (carry.query_id, carry.shard);
        if let Some(chunk) = self.pending.chunks.remove(&key) {
            self.continue_pipeline(ctx, chunk, carry);
        } else {
            self.pending.carries.insert(key, carry);
        }
    }

    /// Position 0: enumerate candidates from the probed lists (plus the
    /// shard's delta rows below the watermark) and compute the first
    /// partials.
    fn start_pipeline(&mut self, ctx: &NodeCtx, chunk: QueryChunk) {
        // Fault a demoted block back in (and refresh its cache recency)
        // before taking the immutable storage borrow.
        self.ensure_resident((chunk.ns, chunk.epoch, chunk.shard));
        let meta = self.meta(chunk.ns);
        let metric = meta.metric;
        let Some(store) = self.epochs.get(&(chunk.ns, chunk.epoch)) else {
            // Epoch never loaded (or already evicted): answer emptily so
            // the client can finish.
            self.finalize(ctx, &chunk, Vec::new(), Vec::new(), 0);
            return;
        };
        let block = store
            .blocks
            .get(&chunk.shard)
            .and_then(|s| s.resident.as_ref());
        let delta = store
            .deltas
            .get(&chunk.shard)
            .filter(|_| chunk.delta_seq > 0);
        let tombstones = &store.tombstones;
        if block.is_none() && delta.is_none() {
            self.finalize(ctx, &chunk, Vec::new(), Vec::new(), 0);
            return;
        }
        let is_ip = !matches!(metric, Metric::L2);
        let is_cos = matches!(metric, Metric::Cosine);
        let q_block_norm_sq = if is_ip {
            ip(&chunk.dims, &chunk.dims)
        } else {
            0.0
        };
        let threshold = chunk.threshold;
        let rule = meta.rule;

        let single_hop = chunk.order.len() <= 1;
        let mut indices = Vec::new();
        let mut partials = Vec::new();
        let mut visited_norms_sq = Vec::new();
        // Single-hop fast path accumulates directly into a top-k.
        let mut topk = TopK::new(chunk.k.max(1) as usize);
        let mut out_ids = Vec::new();
        let mut seen = 0u64;
        let mut pruned = 0u64;
        let mut scanned = 0u64;

        let scan_start = Instant::now();
        let mut hop_eps = 0f32;
        let mut enum_index = 0u32;
        if let Some(block) = block {
            for cluster in &chunk.clusters {
                let Some(list) = block.lists.get(cluster) else {
                    continue;
                };
                let (pq, eps_list) = PreparedQuery::prepare(
                    metric,
                    list,
                    &chunk.dims,
                    block.dim_start,
                    q_block_norm_sq,
                );
                hop_eps = hop_eps.max(eps_list);
                for i in 0..list.rows() {
                    let index = enum_index;
                    enum_index += 1;
                    seen += 1;
                    scanned += list.width as u64;
                    let partial = pq.score(&chunk.dims, list.width, i);
                    if single_hop {
                        // Partials are full scores (cosine normalizes by the
                        // full norms here); keep the best k. The top-k
                        // threshold comparison is same-domain (quantized vs
                        // quantized under SQ8) and needs no widening; the
                        // client threshold is exact-domain and does.
                        let score = if is_cos {
                            cos_normalize(partial, chunk.q_total_norm_sq, list.total_norms_sq[i])
                        } else {
                            partial
                        };
                        let local_prune = score > topk.threshold();
                        let global_prune = if is_cos {
                            rule.should_prune_cosine_quantized(
                                partial,
                                threshold,
                                0.0,
                                0.0,
                                chunk.q_total_norm_sq,
                                list.total_norms_sq[i],
                                eps_list,
                            )
                        } else {
                            rule.should_prune_quantized(score, threshold, 0.0, 0.0, eps_list)
                        };
                        if rule.enabled() && (local_prune || global_prune) {
                            pruned += 1;
                            continue;
                        }
                        // Soft deletes suppress at emission only, so the
                        // enumeration itself is untouched.
                        if tombstones.suppresses_list_row(list.ids[i]) {
                            continue;
                        }
                        topk.push(list.ids[i], score);
                        continue;
                    }
                    let (q_rest, p_rest) = if is_ip {
                        (
                            chunk.q_total_norm_sq - q_block_norm_sq,
                            list.total_norms_sq[i] - list.block_norms_sq[i],
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    let prune = if is_cos {
                        rule.should_prune_cosine_quantized(
                            partial,
                            threshold,
                            q_rest,
                            p_rest,
                            chunk.q_total_norm_sq,
                            list.total_norms_sq[i],
                            eps_list,
                        )
                    } else {
                        rule.should_prune_quantized(partial, threshold, q_rest, p_rest, eps_list)
                    };
                    if prune {
                        pruned += 1;
                        continue;
                    }
                    indices.push(index);
                    partials.push(partial);
                    if is_ip {
                        visited_norms_sq.push(list.block_norms_sq[i]);
                    }
                }
            }
        }
        // Exact delta scan: rows below the admission watermark, in append
        // (= sequence) order, enumerated after every probed list so carried
        // indices stay canonical across the shard row. Delta partials are
        // exact f32, so their prune slack is zero even under SQ8.
        if let Some(delta) = delta {
            let scorer = scorer_for(metric);
            let width = delta.width();
            for i in 0..delta.len() {
                if delta.seq(i) >= chunk.delta_seq {
                    break; // sorted by seq: the rest is past the watermark
                }
                let index = enum_index;
                enum_index += 1;
                seen += 1;
                scanned += width as u64;
                let partial = scorer(&chunk.dims, delta.row(i));
                if single_hop {
                    let score = if is_cos {
                        cos_normalize(partial, chunk.q_total_norm_sq, delta.total_norm_sq(i))
                    } else {
                        partial
                    };
                    let local_prune = score > topk.threshold();
                    let global_prune = if is_cos {
                        rule.should_prune_cosine_quantized(
                            partial,
                            threshold,
                            0.0,
                            0.0,
                            chunk.q_total_norm_sq,
                            delta.total_norm_sq(i),
                            0.0,
                        )
                    } else {
                        rule.should_prune_quantized(score, threshold, 0.0, 0.0, 0.0)
                    };
                    if rule.enabled() && (local_prune || global_prune) {
                        pruned += 1;
                        continue;
                    }
                    if tombstones.suppresses_delta_row(delta.id(i), delta.seq(i)) {
                        continue;
                    }
                    topk.push(delta.id(i), score);
                    continue;
                }
                let (q_rest, p_rest) = if is_ip {
                    (
                        chunk.q_total_norm_sq - q_block_norm_sq,
                        delta.total_norm_sq(i) - delta.block_norm_sq(i),
                    )
                } else {
                    (0.0, 0.0)
                };
                let prune = if is_cos {
                    rule.should_prune_cosine_quantized(
                        partial,
                        threshold,
                        q_rest,
                        p_rest,
                        chunk.q_total_norm_sq,
                        delta.total_norm_sq(i),
                        0.0,
                    )
                } else {
                    rule.should_prune_quantized(partial, threshold, q_rest, p_rest, 0.0)
                };
                if prune {
                    pruned += 1;
                    continue;
                }
                indices.push(index);
                partials.push(partial);
                if is_ip {
                    visited_norms_sq.push(delta.block_norm_sq(i));
                }
            }
        }
        self.compute_ns += scan_start.elapsed().as_nanos() as u64;
        // Modeled compute charge: deterministic, host-independent.
        ctx.charge_compute(scanned, seen);

        self.slice_in[0] += seen;
        self.slice_pruned[0] += pruned;
        self.scanned_point_dims += scanned;

        if single_hop {
            let mut scores = Vec::new();
            for n in topk.into_sorted() {
                out_ids.push(n.id);
                scores.push(n.score);
            }
            self.finalize(ctx, &chunk, out_ids, scores, seen);
        } else {
            let carry = Carry {
                ns: chunk.ns,
                query_id: chunk.query_id,
                epoch: chunk.epoch,
                shard: chunk.shard,
                threshold,
                next_position: 1,
                indices,
                partials,
                visited_norms_sq,
                q_visited_norm_sq: q_block_norm_sq,
                quant_eps: hop_eps,
            };
            let next = chunk.order[1] as NodeId;
            let _ = ctx.send(next, ToWorker::Carry(carry).to_bytes());
        }
    }

    /// Positions 1..: add this block's contribution to carried partials.
    fn continue_pipeline(&mut self, ctx: &NodeCtx, chunk: QueryChunk, carry: Carry) {
        let position = chunk.position as usize;
        let is_last = position + 1 >= chunk.order.len();
        self.ensure_resident((chunk.ns, chunk.epoch, chunk.shard));
        let meta = self.meta(chunk.ns);
        let metric = meta.metric;
        let Some(store) = self.epochs.get(&(chunk.ns, chunk.epoch)) else {
            self.finalize(ctx, &chunk, Vec::new(), Vec::new(), 0);
            return;
        };
        let block = store
            .blocks
            .get(&chunk.shard)
            .and_then(|s| s.resident.as_ref());
        let delta = store
            .deltas
            .get(&chunk.shard)
            .filter(|_| chunk.delta_seq > 0);
        let tombstones = &store.tombstones;
        if block.is_none() && delta.is_none() {
            self.finalize(ctx, &chunk, Vec::new(), Vec::new(), 0);
            return;
        }
        let is_ip = !matches!(metric, Metric::L2);
        let is_cos = matches!(metric, Metric::Cosine);
        let q_block_norm_sq = if is_ip {
            ip(&chunk.dims, &chunk.dims)
        } else {
            0.0
        };
        let q_visited = carry.q_visited_norm_sq + q_block_norm_sq;
        // Tightest threshold wins (lower-is-better scores).
        let threshold = chunk.threshold.min(carry.threshold);
        let rule = meta.rule;

        let seen = carry.indices.len() as u64;
        let mut pruned = 0u64;
        let mut scanned = 0u64;
        let mut indices = Vec::with_capacity(carry.indices.len());
        let mut partials = Vec::with_capacity(carry.indices.len());
        let mut visited_norms_sq = Vec::new();
        // Last hop keeps a local top-k so the threshold tightens within the
        // scan itself.
        let mut topk = TopK::new(chunk.k.max(1) as usize);

        let scan_start = Instant::now();
        let mut hop_eps = 0f32;
        {
            // Merge-walk the canonical enumeration (clusters in chunk order,
            // members in list order, then the delta region) against the
            // ascending survivor indices.
            let mut cursor = 0usize; // position in carry.indices
            let mut base = 0u32; // enumeration index of current list's row 0
            if let Some(block) = block {
                'clusters: for cluster in &chunk.clusters {
                    let Some(list) = block.lists.get(cluster) else {
                        continue;
                    };
                    let list_len = list.ids.len() as u32;
                    // Prepared lazily: lists with no surviving candidates never
                    // pay the SQ8 query-quantization cost.
                    let mut prepared: Option<(PreparedQuery, f32)> = None;
                    while cursor < carry.indices.len() {
                        let index = carry.indices[cursor];
                        if index >= base + list_len {
                            break; // survivor lives in a later list
                        }
                        let row = (index - base) as usize;
                        scanned += list.width as u64;
                        let (pq, eps_list) = prepared.get_or_insert_with(|| {
                            PreparedQuery::prepare(
                                metric,
                                list,
                                &chunk.dims,
                                block.dim_start,
                                q_block_norm_sq,
                            )
                        });
                        let eps_list = *eps_list;
                        hop_eps = hop_eps.max(eps_list);
                        // Widen prune bounds by everything accumulated so far:
                        // previous hops' carry plus this list's contribution.
                        let eps_acc = carry.quant_eps + eps_list;
                        let partial =
                            carry.partials[cursor] + pq.score(&chunk.dims, list.width, row);
                        let (q_rest, p_rest, p_visited) = if is_ip {
                            let p_visited =
                                carry.visited_norms_sq[cursor] + list.block_norms_sq[row];
                            (
                                chunk.q_total_norm_sq - q_visited,
                                list.total_norms_sq[row] - p_visited,
                                p_visited,
                            )
                        } else {
                            (0.0, 0.0, 0.0)
                        };
                        if is_last {
                            // Full score now known (cosine normalizes by the
                            // full norms); keep only entries beating both the
                            // local top-k (same-domain, no widening) and the
                            // exact-domain client threshold (widened).
                            let score = if is_cos {
                                cos_normalize(
                                    partial,
                                    chunk.q_total_norm_sq,
                                    list.total_norms_sq[row],
                                )
                            } else {
                                partial
                            };
                            let local_prune = score > topk.threshold();
                            let global_prune = if is_cos {
                                rule.should_prune_cosine_quantized(
                                    partial,
                                    threshold,
                                    0.0,
                                    0.0,
                                    chunk.q_total_norm_sq,
                                    list.total_norms_sq[row],
                                    eps_acc,
                                )
                            } else {
                                rule.should_prune_quantized(score, threshold, 0.0, 0.0, eps_acc)
                            };
                            if rule.enabled() && (local_prune || global_prune) {
                                pruned += 1;
                            } else if !tombstones.suppresses_list_row(list.ids[row]) {
                                topk.push(list.ids[row], score);
                            }
                        } else {
                            let prune = if is_cos {
                                rule.should_prune_cosine_quantized(
                                    partial,
                                    threshold,
                                    q_rest,
                                    p_rest,
                                    chunk.q_total_norm_sq,
                                    list.total_norms_sq[row],
                                    eps_acc,
                                )
                            } else {
                                rule.should_prune_quantized(
                                    partial, threshold, q_rest, p_rest, eps_acc,
                                )
                            };
                            if prune {
                                pruned += 1;
                            } else {
                                indices.push(index);
                                partials.push(partial);
                                if is_ip {
                                    visited_norms_sq.push(p_visited);
                                }
                            }
                        }
                        cursor += 1;
                        if cursor == carry.indices.len() {
                            break 'clusters;
                        }
                    }
                    base += list_len;
                }
            }
            // Surviving indices past every probed list address the delta
            // region: row `index - base` of the shard's delta list, whose
            // append order is identical on every machine of the row.
            if cursor < carry.indices.len() {
                if let Some(delta) = delta {
                    let scorer = scorer_for(metric);
                    let width = delta.width();
                    while cursor < carry.indices.len() {
                        let index = carry.indices[cursor];
                        let row = (index - base) as usize;
                        if row >= delta.len() {
                            break;
                        }
                        scanned += width as u64;
                        // Delta contributions are exact: the accumulated
                        // slack is whatever earlier hops carried, unchanged.
                        let eps_acc = carry.quant_eps;
                        let partial = carry.partials[cursor] + scorer(&chunk.dims, delta.row(row));
                        let (q_rest, p_rest, p_visited) = if is_ip {
                            let p_visited =
                                carry.visited_norms_sq[cursor] + delta.block_norm_sq(row);
                            (
                                chunk.q_total_norm_sq - q_visited,
                                delta.total_norm_sq(row) - p_visited,
                                p_visited,
                            )
                        } else {
                            (0.0, 0.0, 0.0)
                        };
                        if is_last {
                            let score = if is_cos {
                                cos_normalize(
                                    partial,
                                    chunk.q_total_norm_sq,
                                    delta.total_norm_sq(row),
                                )
                            } else {
                                partial
                            };
                            let local_prune = score > topk.threshold();
                            let global_prune = if is_cos {
                                rule.should_prune_cosine_quantized(
                                    partial,
                                    threshold,
                                    0.0,
                                    0.0,
                                    chunk.q_total_norm_sq,
                                    delta.total_norm_sq(row),
                                    eps_acc,
                                )
                            } else {
                                rule.should_prune_quantized(score, threshold, 0.0, 0.0, eps_acc)
                            };
                            if rule.enabled() && (local_prune || global_prune) {
                                pruned += 1;
                            } else if !tombstones
                                .suppresses_delta_row(delta.id(row), delta.seq(row))
                            {
                                topk.push(delta.id(row), score);
                            }
                        } else {
                            let prune = if is_cos {
                                rule.should_prune_cosine_quantized(
                                    partial,
                                    threshold,
                                    q_rest,
                                    p_rest,
                                    chunk.q_total_norm_sq,
                                    delta.total_norm_sq(row),
                                    eps_acc,
                                )
                            } else {
                                rule.should_prune_quantized(
                                    partial, threshold, q_rest, p_rest, eps_acc,
                                )
                            };
                            if prune {
                                pruned += 1;
                            } else {
                                indices.push(index);
                                partials.push(partial);
                                if is_ip {
                                    visited_norms_sq.push(p_visited);
                                }
                            }
                        }
                        cursor += 1;
                    }
                }
                debug_assert_eq!(
                    cursor,
                    carry.indices.len(),
                    "carried indices extend past the canonical enumeration"
                );
            }
        }
        self.compute_ns += scan_start.elapsed().as_nanos() as u64;
        ctx.charge_compute(scanned, seen);

        if position < self.slice_in.len() {
            self.slice_in[position] += seen;
            self.slice_pruned[position] += pruned;
        }
        self.scanned_point_dims += scanned;

        if is_last {
            let (mut ids, mut scores) = (Vec::new(), Vec::new());
            for n in topk.into_sorted() {
                ids.push(n.id);
                scores.push(n.score);
            }
            self.finalize(ctx, &chunk, ids, scores, seen);
        } else {
            let next_position = position as u32 + 1;
            let next = chunk.order[position + 1] as NodeId;
            let out = Carry {
                ns: chunk.ns,
                query_id: chunk.query_id,
                epoch: chunk.epoch,
                shard: chunk.shard,
                threshold,
                next_position,
                indices,
                partials,
                visited_norms_sq,
                q_visited_norm_sq: q_visited,
                quant_eps: carry.quant_eps + hop_eps,
            };
            let _ = ctx.send(next, ToWorker::Carry(out).to_bytes());
        }
    }

    /// Sends the shard's final candidates to the client, truncated to `k`.
    fn finalize(
        &mut self,
        ctx: &NodeCtx,
        chunk: &QueryChunk,
        ids: Vec<u64>,
        scores: Vec<f32>,
        candidates_seen: u64,
    ) {
        let k = chunk.k.max(1) as usize;
        let (ids, scores) = if ids.len() > k {
            let mut topk = TopK::new(k);
            for (&id, &s) in ids.iter().zip(&scores) {
                topk.push(id, s);
            }
            let mut out_ids = Vec::with_capacity(k);
            let mut out_scores = Vec::with_capacity(k);
            for n in topk.into_sorted() {
                out_ids.push(n.id);
                out_scores.push(n.score);
            }
            (out_ids, out_scores)
        } else {
            (ids, scores)
        };
        let result = ToClient::Result(QueryResult {
            query_id: chunk.query_id,
            shard: chunk.shard,
            ids,
            scores,
            candidates_seen,
        });
        let _ = ctx.send(CLIENT, result.to_bytes());
    }

    /// Client announcement of a new epoch's grid block: set up assembly and
    /// fold in any pieces that raced ahead of the announcement.
    fn handle_begin_epoch(&mut self, ctx: &NodeCtx, begin: BeginEpoch) {
        let epoch = begin.epoch;
        if self.watermarked(begin.ns, epoch) {
            return; // straggler of an already-evicted epoch
        }
        let assembly = InstallAssembly {
            shard: begin.shard,
            dim_block: begin.dim_block,
            dim_start: begin.dim_start,
            dim_end: begin.dim_end,
            total_dim_blocks: begin.total_dim_blocks,
            expected_pieces: begin.expected_pieces,
            received: 0,
            clusters: HashMap::new(),
        };
        self.installs.insert((begin.ns, epoch), assembly);
        if let Some(orphans) = self.orphan_pieces.remove(&(begin.ns, epoch)) {
            for msg in orphans {
                self.handle_install(ctx, msg);
            }
        }
        self.try_activate_epoch(ctx, begin.ns, epoch);
    }

    /// Migrated pieces for one of this machine's new-epoch blocks.
    fn handle_install(&mut self, ctx: &NodeCtx, msg: InstallLists) {
        let epoch = msg.epoch;
        if self.watermarked(msg.ns, epoch) {
            return; // straggler of an already-evicted epoch
        }
        let Some(assembly) = self.installs.get_mut(&(msg.ns, epoch)) else {
            // BeginEpoch not seen yet (possible only under reordering):
            // stash until the announcement arrives.
            self.orphan_pieces
                .entry((msg.ns, epoch))
                .or_default()
                .push(msg);
            return;
        };
        debug_assert_eq!(assembly.shard, msg.shard, "piece routed to wrong block");
        debug_assert_eq!(assembly.dim_block, msg.dim_block);
        let width = (assembly.dim_end - assembly.dim_start) as usize;
        for piece in msg.pieces {
            let rows = piece.ids.len();
            // SQ8 pieces carry segments instead of flat columns; the f32
            // column buffer is never allocated for them.
            let sq8_piece = !piece.segs.is_empty();
            let entry = assembly
                .clusters
                .entry(piece.cluster)
                .or_insert_with(|| ClusterAssembly {
                    ids: piece.ids.clone(),
                    flat: if sq8_piece {
                        Vec::new()
                    } else {
                        vec![0.0; rows * width]
                    },
                    segs: Vec::new(),
                    block_norms_sq: Vec::new(),
                    total_norms_sq: Vec::new(),
                    width,
                });
            // A source missing the cluster ships an empty fallback piece so
            // the expected count still closes. If such a piece seeded the
            // assembly first, re-seed from the first piece that carries
            // rows; conversely a late empty piece only bumps the counter.
            if entry.ids.is_empty() && !piece.ids.is_empty() {
                entry.ids = piece.ids.clone();
                entry.flat = if sq8_piece {
                    Vec::new()
                } else {
                    vec![0.0; rows * width]
                };
                entry.segs = Vec::new();
                entry.block_norms_sq = Vec::new();
                entry.total_norms_sq = Vec::new();
            }
            if entry.ids.len() == rows && rows > 0 {
                let offset = piece.dim_start.saturating_sub(assembly.dim_start) as usize;
                let piece_width = (piece.dim_end - piece.dim_start) as usize;
                if offset + piece_width > width {
                    debug_assert!(false, "piece range escapes the announced block");
                } else if sq8_piece {
                    entry.segs.extend(piece.segs);
                } else {
                    for row in 0..rows {
                        let dst = row * width + offset;
                        let src = row * piece_width;
                        entry.flat[dst..dst + piece_width]
                            .copy_from_slice(&piece.flat[src..src + piece_width]);
                    }
                }
                // Piece norms partition the block range: sum them per member.
                if !piece.piece_norms_sq.is_empty() {
                    if entry.block_norms_sq.is_empty() {
                        entry.block_norms_sq = vec![0.0; rows];
                    }
                    for (acc, p) in entry.block_norms_sq.iter_mut().zip(&piece.piece_norms_sq) {
                        *acc += p;
                    }
                }
                if entry.total_norms_sq.is_empty() && !piece.total_norms_sq.is_empty() {
                    entry.total_norms_sq = piece.total_norms_sq;
                }
            } else {
                debug_assert!(rows == 0, "piece id sets disagree");
            }
            assembly.received += 1;
        }
        self.try_activate_epoch(ctx, msg.ns, epoch);
    }

    /// Activates an epoch whose assembly is complete and acks the client.
    fn try_activate_epoch(&mut self, ctx: &NodeCtx, ns: u16, epoch: u64) {
        let complete = self
            .installs
            .get(&(ns, epoch))
            .is_some_and(|a| a.received >= a.expected_pieces);
        if !complete {
            return;
        }
        let Some(assembly) = self.installs.remove(&(ns, epoch)) else {
            return;
        };
        let total_dim_blocks = assembly.total_dim_blocks.max(1) as usize;
        self.ensure_slice_positions(total_dim_blocks);
        let lists: HashMap<u32, ListBlock> = assembly
            .clusters
            .into_iter()
            .map(|(cluster, mut c)| {
                let data = if c.segs.is_empty() {
                    BlockData::F32 { flat: c.flat }
                } else {
                    // Canonical segment order regardless of which source's
                    // pieces landed first, so assembled blocks are
                    // bit-identical across transports.
                    c.segs.sort_by_key(|s| s.dim_start);
                    BlockData::Sq8 { segs: c.segs }
                };
                let max_block_norm_sq = max_norm(&c.block_norms_sq);
                (
                    cluster,
                    ListBlock {
                        ids: c.ids,
                        data,
                        block_norms_sq: c.block_norms_sq,
                        total_norms_sq: c.total_norms_sq,
                        max_block_norm_sq,
                        width: c.width,
                    },
                )
            })
            .collect();
        let store = self
            .epochs
            .entry((ns, epoch))
            .or_insert_with(|| EpochStore::new(total_dim_blocks));
        store.total_dim_blocks = total_dim_blocks;
        let block = BlockStore {
            dim_start: assembly.dim_start,
            dim_end: assembly.dim_end,
            lists,
        };
        gauge_add(&block);
        let key = (ns, epoch, assembly.shard);
        if let Some(mut old) = store
            .blocks
            .insert(assembly.shard, BlockSlot::pinned(block))
        {
            if let Some(old_block) = &old.resident {
                gauge_sub(old_block);
            }
            Self::drop_spill(&mut old);
            let before = self.cache.resident_bytes();
            self.cache.remove(&key);
            self.sync_cache_gauge(before);
        }
        // Migrations are serialized and epoch numbers are per-namespace
        // sequences that never repeat, so any assembly or orphan pieces of
        // an *older* epoch of this namespace belong to an aborted attempt
        // and can never activate — drop them.
        self.installs.retain(|&(n, e), _| n != ns || e > epoch);
        self.orphan_pieces.retain(|&(n, e), _| n != ns || e > epoch);
        // A demoted namespace keeps its tier across migrations: spill the
        // freshly-assembled block right away.
        self.apply_tier(key);
        let _ = ctx.send(CLIENT, ToClient::EpochReady { ns, epoch }.to_bytes());
    }

    /// Executes migration transfers: slice the requested dimension
    /// sub-ranges out of local storage and ship them to their destinations.
    /// Self-directed transfers install locally without touching the fabric
    /// (a real machine would memcpy, not loop through its NIC).
    fn handle_migrate_out(&mut self, ctx: &NodeCtx, msg: MigrateOut) {
        let is_ip = !matches!(self.meta(msg.ns).metric, Metric::L2);
        // Spilled source blocks must be faulted back before slicing; do it
        // up front so the transfer loop can borrow the stores immutably.
        for t in &msg.transfers {
            self.ensure_resident((msg.ns, t.src_epoch, t.src_shard));
        }
        // Group pieces per destination block so each destination receives
        // one message per source (fewer, larger transfers).
        let mut outbound: HashMap<(u64, u32, u32), Vec<ListPiece>> = HashMap::new();
        for t in &msg.transfers {
            let piece_width = (t.dim_end - t.dim_start) as usize;
            let list = self
                .epochs
                .get(&(msg.ns, t.src_epoch))
                .and_then(|e| e.blocks.get(&t.src_shard))
                .and_then(|s| s.resident.as_ref())
                .filter(|b| t.dim_start >= b.dim_start && t.dim_end <= b.dim_end)
                .and_then(|b| {
                    b.lists
                        .get(&t.cluster)
                        .map(|l| (l, (t.dim_start - b.dim_start) as usize))
                });
            let piece = match list {
                Some((list, offset)) => {
                    let rows = list.ids.len();
                    let mut flat = Vec::new();
                    let mut segs = Vec::new();
                    let mut piece_norms_sq = Vec::new();
                    match &list.data {
                        BlockData::F32 { flat: src } => {
                            flat.reserve(rows * piece_width);
                            for row in 0..rows {
                                let r = &src[row * list.width..(row + 1) * list.width];
                                let slice = &r[offset..offset + piece_width];
                                flat.extend_from_slice(slice);
                                if is_ip {
                                    piece_norms_sq.push(ip(slice, slice));
                                }
                            }
                        }
                        BlockData::Sq8 { segs: src } => {
                            // Slice the requested dimension range out of each
                            // overlapping segment. `slice_dims` keeps min and
                            // scale verbatim, so codes survive any number of
                            // migrations bit-identically.
                            for seg in src {
                                let lo = seg.dim_start.max(t.dim_start);
                                let hi = seg.dim_end.min(t.dim_end);
                                if lo < hi {
                                    segs.push(seg.slice_dims(lo, hi));
                                }
                            }
                            if is_ip {
                                // Piece norms must stay admissible (the last
                                // hop uses `total − Σ visited` as an upper
                                // bound on unseen mass), so ship a lower
                                // bound: dequantized norm minus the per-row
                                // reconstruction error, clamped at zero.
                                for row in 0..rows {
                                    let mut norm_sq = 0.0f64;
                                    let mut err = 0.0f64;
                                    for seg in &segs {
                                        norm_sq += seg.dequant_row_norm_sq(row);
                                        err += f64::from(seg.row_error_bound());
                                    }
                                    let lower = (norm_sq.sqrt() - err).max(0.0);
                                    piece_norms_sq.push((lower * lower) as f32);
                                }
                            }
                        }
                    }
                    ListPiece {
                        cluster: t.cluster,
                        dim_start: t.dim_start,
                        dim_end: t.dim_end,
                        ids: list.ids.clone(),
                        flat,
                        segs,
                        piece_norms_sq,
                        total_norms_sq: list.total_norms_sq.clone(),
                    }
                }
                // Source data missing (evicted early, unknown cluster):
                // ship an empty piece so the destination's expected count
                // still closes and the migration cannot wedge.
                None => ListPiece {
                    cluster: t.cluster,
                    dim_start: t.dim_start,
                    dim_end: t.dim_end,
                    ids: Vec::new(),
                    flat: Vec::new(),
                    segs: Vec::new(),
                    piece_norms_sq: Vec::new(),
                    total_norms_sq: Vec::new(),
                },
            };
            outbound
                .entry((t.dest, t.dest_shard, t.dest_dim_block))
                .or_default()
                .push(piece);
        }
        // Deterministic delivery order.
        let mut groups: Vec<_> = outbound.into_iter().collect();
        groups.sort_by_key(|((dest, shard, block), _)| (*dest, *shard, *block));
        for ((dest, shard, dim_block), pieces) in groups {
            let install = InstallLists {
                ns: msg.ns,
                epoch: msg.epoch,
                shard,
                dim_block,
                pieces,
            };
            if dest as usize == ctx.id() {
                self.handle_install(ctx, install);
            } else {
                let _ = ctx.send(dest as NodeId, ToWorker::InstallLists(install).to_bytes());
            }
        }
    }

    /// Drops a retired epoch's storage (and any half-finished assembly),
    /// and raises the namespace's watermark so stragglers for it are never
    /// re-stashed. Spill files and cache entries of the epoch go with it.
    fn handle_evict(&mut self, ns: u16, epoch: u64) {
        if let Some(mut store) = self.epochs.remove(&(ns, epoch)) {
            for slot in store.blocks.values_mut() {
                if let Some(block) = &slot.resident {
                    gauge_sub(block);
                }
                Self::drop_spill(slot);
            }
            mem::delta_block_sub(store.delta_bytes());
            mem::tombstone_sub(store.tombstones.len());
        }
        let before = self.cache.resident_bytes();
        self.cache
            .remove_matching(|&(n, e, _)| n == ns && e == epoch);
        self.sync_cache_gauge(before);
        self.installs.remove(&(ns, epoch));
        self.orphan_pieces.remove(&(ns, epoch));
        let w = self.evicted_watermark.entry(ns).or_insert(epoch);
        *w = (*w).max(epoch);
    }

    fn stats_report(&self) -> StatsReport {
        let (f32_bytes, sq8_bytes) = self
            .epochs
            .values()
            .flat_map(|e| e.blocks.values())
            .filter_map(|s| s.resident.as_ref())
            .fold((0usize, 0usize), |(f, s), b| {
                let (bf, bs) = b.payload_bytes();
                (f + bf, s + bs)
            });
        let spilled_bytes: usize = self
            .epochs
            .values()
            .flat_map(|e| e.blocks.values())
            .filter_map(|s| s.spill.as_ref())
            .map(|f| f.payload_bytes)
            .sum();
        let delta_bytes: usize = self.epochs.values().map(EpochStore::delta_bytes).sum();
        let delta_rows: usize = self
            .epochs
            .values()
            .flat_map(|e| e.deltas.values())
            .map(DeltaList::len)
            .sum();
        let tombstone_entries: usize = self.epochs.values().map(|e| e.tombstones.len()).sum();
        StatsReport {
            slice_in: self.slice_in.clone(),
            slice_pruned: self.slice_pruned.clone(),
            scanned_point_dims: self.scanned_point_dims,
            memory_bytes: self
                .epochs
                .values()
                .flat_map(|e| e.blocks.values())
                .filter_map(|s| s.resident.as_ref())
                .map(BlockStore::memory_bytes)
                .sum::<usize>() as u64
                + delta_bytes as u64,
            f32_block_bytes: f32_bytes as u64,
            sq8_block_bytes: sq8_bytes as u64,
            compute_ns: self.compute_ns,
            delta_bytes: delta_bytes as u64,
            delta_rows: delta_rows as u64,
            tombstone_entries: tombstone_entries as u64,
            cache_block_bytes: self.cache.resident_bytes() as u64,
            spilled_block_bytes: spilled_bytes as u64,
        }
    }

    fn reset_stats(&mut self) {
        self.slice_in = vec![0; self.slice_positions];
        self.slice_pruned = vec![0; self.slice_positions];
        self.scanned_point_dims = 0;
        self.compute_ns = 0;
    }
}

impl Drop for HarmonyWorker {
    /// Releases this worker's contribution to the process-wide per-repr
    /// byte gauges, so short-lived clusters (tests, benches) don't leak
    /// resident-byte accounting into later measurements.
    fn drop(&mut self) {
        for store in self.epochs.values_mut() {
            for slot in store.blocks.values_mut() {
                if let Some(block) = &slot.resident {
                    gauge_sub(block);
                }
                Self::drop_spill(slot);
            }
            mem::delta_block_sub(store.delta_bytes());
            mem::tombstone_sub(store.tombstones.len());
        }
        mem::cache_block_sub(self.cache.resident_bytes());
        // Best-effort: the dir only disappears once all spill files are
        // gone; leftovers from a crashed worker are bounded by temp-dir
        // hygiene, not correctness.
        let _ = std::fs::remove_dir(&self.spill_dir);
    }
}

impl NodeHandler for HarmonyWorker {
    fn handle(&mut self, ctx: &NodeCtx, _from: NodeId, payload: Bytes) {
        let msg = match ToWorker::from_bytes(payload) {
            Ok(m) => m,
            Err(_) => {
                debug_assert!(false, "malformed worker message");
                return;
            }
        };
        match msg {
            ToWorker::Load(load) => self.handle_load(ctx, load),
            ToWorker::Chunk(chunk) => self.handle_chunk(ctx, chunk),
            ToWorker::Carry(carry) => self.handle_carry(ctx, carry),
            ToWorker::GetStats => {
                let _ = ctx.send(CLIENT, ToClient::Stats(self.stats_report()).to_bytes());
            }
            ToWorker::ResetStats => self.reset_stats(),
            ToWorker::BeginEpoch(begin) => self.handle_begin_epoch(ctx, begin),
            ToWorker::MigrateOut(m) => self.handle_migrate_out(ctx, m),
            ToWorker::InstallLists(m) => self.handle_install(ctx, m),
            ToWorker::EvictEpoch { ns, epoch } => self.handle_evict(ns, epoch),
            ToWorker::UpsertDelta(m) => self.handle_upsert_delta(m),
            ToWorker::DeleteIds(m) => self.handle_delete_ids(m),
            ToWorker::SetTier(m) => self.handle_set_tier(ctx, m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_cluster::{Cluster, ClusterConfig};
    use std::time::Duration;

    /// Loads a 2-vector block into a single worker and runs a query.
    fn one_worker_cluster() -> Cluster {
        Cluster::spawn(ClusterConfig::new(1), |_| HarmonyWorker::new())
    }

    fn load_block(pruning: bool) -> LoadBlock {
        LoadBlock {
            ns: 0,
            epoch: 0,
            shard: 0,
            dim_block: 0,
            dim_start: 0,
            dim_end: 2,
            total_dim_blocks: 1,
            metric: 0,
            pruning,
            repr: 0,
            lists: vec![ClusterBlockFixture::simple()],
        }
    }

    struct ClusterBlockFixture;
    impl ClusterBlockFixture {
        fn simple() -> crate::messages::ClusterBlock {
            crate::messages::ClusterBlock {
                cluster: 0,
                ids: vec![100, 200, 300],
                // Vectors (1,0), (0,1), (5,5).
                flat: vec![1.0, 0.0, 0.0, 1.0, 5.0, 5.0],
                segs: vec![],
                block_norms_sq: vec![],
                total_norms_sq: vec![],
            }
        }
    }

    fn recv_result(cluster: &mut Cluster) -> QueryResult {
        loop {
            let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
            match ToClient::from_bytes(payload).unwrap() {
                ToClient::Result(r) => return r,
                _ => continue,
            }
        }
    }

    fn drain_ack(cluster: &mut Cluster) {
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            ToClient::from_bytes(payload).unwrap(),
            ToClient::LoadAck { .. }
        ));
    }

    #[test]
    fn single_block_pipeline_returns_topk() {
        let mut cluster = one_worker_cluster();
        cluster
            .send(0, ToWorker::Load(load_block(true)).to_bytes())
            .unwrap();
        drain_ack(&mut cluster);

        let chunk = QueryChunk {
            ns: 0,
            query_id: 1,
            epoch: 0,
            shard: 0,
            k: 2,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: vec![1.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        assert_eq!(r.query_id, 1);
        assert_eq!(r.ids, vec![100, 200]); // distances 0, 2 (vs 41 for id 300)
        assert_eq!(r.candidates_seen, 3);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn threshold_prunes_at_first_hop() {
        let mut cluster = one_worker_cluster();
        cluster
            .send(0, ToWorker::Load(load_block(true)).to_bytes())
            .unwrap();
        drain_ack(&mut cluster);

        // τ = 1.0: only id 100 (distance 0) survives.
        let chunk = QueryChunk {
            ns: 0,
            query_id: 2,
            epoch: 0,
            shard: 0,
            k: 3,
            threshold: 1.0,
            clusters: vec![0],
            dims: vec![1.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        assert_eq!(r.ids, vec![100]);

        // Stats must show 2 pruned of 3 seen.
        cluster.send(0, ToWorker::GetStats.to_bytes()).unwrap();
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        match ToClient::from_bytes(payload).unwrap() {
            ToClient::Stats(s) => {
                assert_eq!(s.slice_in, vec![3]);
                assert_eq!(s.slice_pruned, vec![2]);
            }
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn two_hop_pipeline_accumulates_partials() {
        // Two workers, 4-d vectors split 2+2. Worker 0 has dims [0,2),
        // worker 1 has dims [2,4).
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| HarmonyWorker::new());
        let base: Vec<[f32; 4]> = vec![[1.0, 0.0, 0.0, 0.0], [0.0, 0.0, 0.0, 2.0]];
        let ids = vec![10u64, 20u64];
        for (w, range) in [(0usize, 0..2), (1usize, 2..4)] {
            let flat: Vec<f32> = base
                .iter()
                .flat_map(|v| v[range.clone()].to_vec())
                .collect();
            let load = LoadBlock {
                ns: 0,
                epoch: 0,
                shard: 0,
                dim_block: w as u32,
                dim_start: range.start as u64,
                dim_end: range.end as u64,
                total_dim_blocks: 2,
                metric: 0,
                pruning: true,
                repr: 0,
                lists: vec![crate::messages::ClusterBlock {
                    cluster: 0,
                    ids: ids.clone(),
                    flat,
                    segs: vec![],
                    block_norms_sq: vec![],
                    total_norms_sq: vec![],
                }],
            };
            cluster.send(w, ToWorker::Load(load).to_bytes()).unwrap();
            drain_ack(&mut cluster);
        }

        // Query = (1, 0, 0, 0): distance 0 to id 10, 1 + 4 = 5 to id 20.
        let query = [1.0f32, 0.0, 0.0, 0.0];
        for (w, range, position) in [(0usize, 0..2, 0u32), (1usize, 2..4, 1u32)] {
            let chunk = QueryChunk {
                ns: 0,
                query_id: 7,
                epoch: 0,
                shard: 0,
                k: 2,
                threshold: f32::INFINITY,
                clusters: vec![0],
                dims: query[range].to_vec(),
                q_total_norm_sq: 0.0,
                order: vec![0, 1],
                position,
                delta_seq: 0,
            };
            cluster.send(w, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        }
        let r = recv_result(&mut cluster);
        assert_eq!(r.ids, vec![10, 20]);
        assert!((r.scores[0] - 0.0).abs() < 1e-6);
        assert!((r.scores[1] - 5.0).abs() < 1e-6);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn carry_before_chunk_is_buffered() {
        // Deliver the carry to worker 0 before its chunk: the pipeline must
        // still complete.
        let mut cluster = Cluster::spawn(ClusterConfig::new(1), |_| HarmonyWorker::new());
        let load = LoadBlock {
            ns: 0,
            epoch: 0,
            shard: 0,
            dim_block: 1,
            dim_start: 1,
            dim_end: 2,
            total_dim_blocks: 2,
            metric: 0,
            pruning: true,
            repr: 0,
            lists: vec![crate::messages::ClusterBlock {
                cluster: 0,
                ids: vec![1],
                flat: vec![3.0],
                segs: vec![],
                block_norms_sq: vec![],
                total_norms_sq: vec![],
            }],
        };
        cluster.send(0, ToWorker::Load(load).to_bytes()).unwrap();
        drain_ack(&mut cluster);

        let carry = Carry {
            ns: 0,
            query_id: 9,
            epoch: 0,
            shard: 0,
            threshold: f32::INFINITY,
            next_position: 1,
            indices: vec![0],
            partials: vec![4.0],
            visited_norms_sq: vec![],
            q_visited_norm_sq: 0.0,
            quant_eps: 0.0,
        };
        cluster.send(0, ToWorker::Carry(carry).to_bytes()).unwrap();
        // Now the chunk (position 1 of a 2-hop order [9, 0] — final hop).
        let chunk = QueryChunk {
            ns: 0,
            query_id: 9,
            epoch: 0,
            shard: 0,
            k: 1,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: vec![1.0], // (1 - 3)^2 = 4 added to carried 4.0
            q_total_norm_sq: 0.0,
            order: vec![9, 0],
            position: 1,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        assert_eq!(r.ids, vec![1]);
        assert!((r.scores[0] - 8.0).abs() < 1e-6);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn cosine_single_hop_reports_normalized_scores() {
        // Deliberately unnormalized vectors: raw -q·p and true cosine order
        // them differently (id 300 has a huge dot product but poor angle).
        let mut cluster = one_worker_cluster();
        let base: Vec<[f32; 2]> = vec![[1.0, 0.0], [0.0, 1.0], [5.0, 5.0]];
        let load = LoadBlock {
            ns: 0,
            epoch: 0,
            shard: 0,
            dim_block: 0,
            dim_start: 0,
            dim_end: 2,
            total_dim_blocks: 1,
            metric: 2, // cosine
            pruning: true,
            repr: 0,
            lists: vec![crate::messages::ClusterBlock {
                cluster: 0,
                ids: vec![100, 200, 300],
                flat: base.iter().flatten().copied().collect(),
                segs: vec![],
                block_norms_sq: base.iter().map(|v| ip(v, v)).collect(),
                total_norms_sq: base.iter().map(|v| ip(v, v)).collect(),
            }],
        };
        cluster.send(0, ToWorker::Load(load).to_bytes()).unwrap();
        drain_ack(&mut cluster);

        let query = [2.0f32, 0.5]; // unnormalized on purpose
        let chunk = QueryChunk {
            ns: 0,
            query_id: 11,
            epoch: 0,
            shard: 0,
            k: 3,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: query.to_vec(),
            q_total_norm_sq: ip(&query, &query),
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        for (&id, &score) in r.ids.iter().zip(&r.scores) {
            let row = &base[(id / 100 - 1) as usize];
            let want = Metric::Cosine.score(&query, row);
            assert!(
                (score - want).abs() < 1e-6,
                "id {id}: worker {score} vs client {want}"
            );
        }
        assert_eq!(r.ids[0], 100, "best angle must win, not largest dot");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn cosine_two_hop_pipeline_matches_client_scoring() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| HarmonyWorker::new());
        let base: Vec<[f32; 4]> = vec![
            [2.0, 0.0, 0.0, 0.1],
            [0.0, 3.0, 3.0, 0.0],
            [0.5, 0.5, 0.5, 0.5],
        ];
        let ids = vec![1u64, 2, 3];
        for (w, range) in [(0usize, 0..2), (1usize, 2..4)] {
            let flat: Vec<f32> = base
                .iter()
                .flat_map(|v| v[range.clone()].to_vec())
                .collect();
            let load = LoadBlock {
                ns: 0,
                epoch: 0,
                shard: 0,
                dim_block: w as u32,
                dim_start: range.start as u64,
                dim_end: range.end as u64,
                total_dim_blocks: 2,
                metric: 2, // cosine
                pruning: true,
                repr: 0,
                lists: vec![crate::messages::ClusterBlock {
                    cluster: 0,
                    ids: ids.clone(),
                    flat,
                    segs: vec![],
                    block_norms_sq: base
                        .iter()
                        .map(|v| ip(&v[range.clone()], &v[range.clone()]))
                        .collect(),
                    total_norms_sq: base.iter().map(|v| ip(v, v)).collect(),
                }],
            };
            cluster.send(w, ToWorker::Load(load).to_bytes()).unwrap();
            drain_ack(&mut cluster);
        }

        let query = [1.0f32, 2.0, 0.0, 1.0]; // unnormalized
        for (w, range, position) in [(0usize, 0..2, 0u32), (1usize, 2..4, 1u32)] {
            let chunk = QueryChunk {
                ns: 0,
                query_id: 12,
                epoch: 0,
                shard: 0,
                k: 3,
                threshold: f32::INFINITY,
                clusters: vec![0],
                dims: query[range].to_vec(),
                q_total_norm_sq: ip(&query, &query),
                order: vec![0, 1],
                position,
                delta_seq: 0,
            };
            cluster.send(w, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        }
        let r = recv_result(&mut cluster);
        assert_eq!(r.ids.len(), 3);
        for (&id, &score) in r.ids.iter().zip(&r.scores) {
            let row = &base[(id - 1) as usize];
            let want = Metric::Cosine.score(&query, row);
            assert!(
                (score - want).abs() < 1e-6,
                "id {id}: worker {score} vs client {want}"
            );
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn pruning_disabled_forwards_everything() {
        let mut cluster = one_worker_cluster();
        cluster
            .send(0, ToWorker::Load(load_block(false)).to_bytes())
            .unwrap();
        drain_ack(&mut cluster);
        let chunk = QueryChunk {
            ns: 0,
            query_id: 3,
            epoch: 0,
            shard: 0,
            k: 3,
            threshold: 0.5, // would prune everything if enabled
            clusters: vec![0],
            dims: vec![9.0, 9.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        assert_eq!(r.ids.len(), 3, "disabled pruning must keep all candidates");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn unknown_shard_answers_empty() {
        let mut cluster = one_worker_cluster();
        // No Load at all.
        let chunk = QueryChunk {
            ns: 0,
            query_id: 4,
            epoch: 0,
            shard: 5,
            k: 1,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: vec![0.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        assert!(r.ids.is_empty());
        cluster.shutdown().unwrap();
    }

    /// SQ8 block, single hop: stage-1 quantized distances must rank the
    /// same ids as exact f32 (well-separated vectors), stats must report
    /// the bytes under the sq8 gauge, and eviction must release them.
    #[test]
    fn sq8_block_scans_and_accounts_bytes() {
        let mut cluster = one_worker_cluster();
        let flat = vec![1.0f32, 0.0, 0.0, 1.0, 5.0, 5.0];
        let load = LoadBlock {
            ns: 0,
            epoch: 0,
            shard: 0,
            dim_block: 0,
            dim_start: 0,
            dim_end: 2,
            total_dim_blocks: 1,
            metric: 0,
            pruning: true,
            repr: 1,
            lists: vec![crate::messages::ClusterBlock {
                cluster: 0,
                ids: vec![100, 200, 300],
                flat: vec![],
                segs: vec![Sq8Segment::quantize(&flat, 2, 0)],
                block_norms_sq: vec![],
                total_norms_sq: vec![],
            }],
        };
        cluster.send(0, ToWorker::Load(load).to_bytes()).unwrap();
        drain_ack(&mut cluster);

        cluster.send(0, ToWorker::GetStats.to_bytes()).unwrap();
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        match ToClient::from_bytes(payload).unwrap() {
            ToClient::Stats(s) => {
                assert_eq!(s.f32_block_bytes, 0);
                assert!(s.sq8_block_bytes > 0, "sq8 payload must be accounted");
            }
            other => panic!("unexpected {other:?}"),
        }

        let chunk = QueryChunk {
            ns: 0,
            query_id: 21,
            epoch: 0,
            shard: 0,
            k: 2,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: vec![1.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        // Exact distances are 0, 2, 41: quantization error (range 5, step
        // ~0.02) cannot reorder them.
        assert_eq!(r.ids, vec![100, 200]);
        assert!((r.scores[0] - 0.0).abs() < 0.1, "got {}", r.scores[0]);
        assert!((r.scores[1] - 2.0).abs() < 0.2, "got {}", r.scores[1]);

        cluster
            .send(0, ToWorker::EvictEpoch { ns: 0, epoch: 0 }.to_bytes())
            .unwrap();
        cluster.send(0, ToWorker::GetStats.to_bytes()).unwrap();
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        match ToClient::from_bytes(payload).unwrap() {
            ToClient::Stats(s) => assert_eq!(s.sq8_block_bytes, 0),
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown().unwrap();
    }

    /// A widened threshold prune under SQ8 must never drop the true best:
    /// τ sits between id 100's exact distance (0) and the others.
    #[test]
    fn sq8_threshold_prune_keeps_true_best() {
        let mut cluster = one_worker_cluster();
        let flat = vec![1.0f32, 0.0, 0.0, 1.0, 5.0, 5.0];
        let load = LoadBlock {
            ns: 0,
            epoch: 0,
            shard: 0,
            dim_block: 0,
            dim_start: 0,
            dim_end: 2,
            total_dim_blocks: 1,
            metric: 0,
            pruning: true,
            repr: 1,
            lists: vec![crate::messages::ClusterBlock {
                cluster: 0,
                ids: vec![100, 200, 300],
                flat: vec![],
                segs: vec![Sq8Segment::quantize(&flat, 2, 0)],
                block_norms_sq: vec![],
                total_norms_sq: vec![],
            }],
        };
        cluster.send(0, ToWorker::Load(load).to_bytes()).unwrap();
        drain_ack(&mut cluster);

        let chunk = QueryChunk {
            ns: 0,
            query_id: 22,
            epoch: 0,
            shard: 0,
            k: 3,
            threshold: 1.0,
            clusters: vec![0],
            dims: vec![1.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let r = recv_result(&mut cluster);
        assert!(r.ids.contains(&100), "true best pruned: {:?}", r.ids);
        assert!(!r.ids.contains(&300), "far point must still prune");
        cluster.shutdown().unwrap();
    }

    fn drain_tier_ack(cluster: &mut Cluster) {
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            ToClient::from_bytes(payload).unwrap(),
            ToClient::TierAck { .. }
        ));
    }

    fn get_stats(cluster: &mut Cluster) -> StatsReport {
        cluster.send(0, ToWorker::GetStats.to_bytes()).unwrap();
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        match ToClient::from_bytes(payload).unwrap() {
            ToClient::Stats(s) => s,
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Demote → fault → promote must be invisible to queries: results stay
    /// bit-identical while the residency gauges move between RAM and disk.
    #[test]
    fn tier_demote_fault_promote_is_bit_identical() {
        let mut cluster = one_worker_cluster();
        cluster
            .send(0, ToWorker::Load(load_block(true)).to_bytes())
            .unwrap();
        drain_ack(&mut cluster);

        let chunk = |qid: u64| QueryChunk {
            ns: 0,
            query_id: qid,
            epoch: 0,
            shard: 0,
            k: 3,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: vec![1.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster
            .send(0, ToWorker::Chunk(chunk(40)).to_bytes())
            .unwrap();
        let hot = recv_result(&mut cluster);
        let hot_stats = get_stats(&mut cluster);
        assert!(hot_stats.f32_block_bytes > 0);
        assert_eq!(hot_stats.spilled_block_bytes, 0);

        // Demote to cold: payload leaves RAM, a spill file appears.
        cluster
            .send(
                0,
                ToWorker::SetTier(SetTier {
                    ns: 0,
                    temperature: Temperature::Cold.encode(),
                })
                .to_bytes(),
            )
            .unwrap();
        drain_tier_ack(&mut cluster);
        let cold_stats = get_stats(&mut cluster);
        assert_eq!(cold_stats.f32_block_bytes, 0, "cold drops the payload");
        assert!(cold_stats.spilled_block_bytes > 0, "cold keeps a backing");

        // A query faults the block back and matches the hot answer exactly.
        cluster
            .send(0, ToWorker::Chunk(chunk(41)).to_bytes())
            .unwrap();
        let faulted = recv_result(&mut cluster);
        assert_eq!(faulted.ids, hot.ids);
        assert_eq!(faulted.scores, hot.scores);
        let warm_stats = get_stats(&mut cluster);
        assert!(warm_stats.cache_block_bytes > 0, "fault lands in the cache");

        // Promote back to hot: spill file released, payload pinned again.
        cluster
            .send(
                0,
                ToWorker::SetTier(SetTier {
                    ns: 0,
                    temperature: Temperature::Hot.encode(),
                })
                .to_bytes(),
            )
            .unwrap();
        drain_tier_ack(&mut cluster);
        let promoted_stats = get_stats(&mut cluster);
        assert!(promoted_stats.f32_block_bytes > 0);
        assert_eq!(promoted_stats.spilled_block_bytes, 0);
        assert_eq!(promoted_stats.cache_block_bytes, 0);
        cluster
            .send(0, ToWorker::Chunk(chunk(42)).to_bytes())
            .unwrap();
        let promoted = recv_result(&mut cluster);
        assert_eq!(promoted.ids, hot.ids);
        assert_eq!(promoted.scores, hot.scores);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut cluster = one_worker_cluster();
        cluster
            .send(0, ToWorker::Load(load_block(true)).to_bytes())
            .unwrap();
        drain_ack(&mut cluster);
        let chunk = QueryChunk {
            ns: 0,
            query_id: 5,
            epoch: 0,
            shard: 0,
            k: 1,
            threshold: f32::INFINITY,
            clusters: vec![0],
            dims: vec![0.0, 0.0],
            q_total_norm_sq: 0.0,
            order: vec![0],
            position: 0,
            delta_seq: 0,
        };
        cluster.send(0, ToWorker::Chunk(chunk).to_bytes()).unwrap();
        let _ = recv_result(&mut cluster);
        cluster.send(0, ToWorker::ResetStats.to_bytes()).unwrap();
        cluster.send(0, ToWorker::GetStats.to_bytes()).unwrap();
        let (_, payload) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        match ToClient::from_bytes(payload).unwrap() {
            ToClient::Stats(s) => {
                assert!(s.slice_in.iter().all(|&x| x == 0));
                assert_eq!(s.scanned_point_dims, 0);
                assert!(s.memory_bytes > 0, "memory survives a stats reset");
            }
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown().unwrap();
    }
}
