//! Error types for the cluster substrate.

use std::fmt;

use crate::codec::CodecError;
use crate::node::NodeId;

/// Errors produced by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The destination node does not exist.
    UnknownNode(NodeId),
    /// The destination node's mailbox is closed (node shut down or panicked).
    NodeDown(NodeId),
    /// No message arrived within the deadline.
    Timeout,
    /// A payload failed to decode.
    Codec(CodecError),
    /// The cluster was already shut down.
    ShutDown,
    /// The client receive path was detached via
    /// [`crate::cluster::Cluster::take_client_receiver`].
    ReceiverDetached,
    /// The destination's bounded send queue stayed full past the send
    /// deadline (TCP transport); the caller decides whether to retry, shed
    /// load, or abort.
    Backpressure,
    /// A transport-level I/O failure (bind, connect, thread spawn).
    Io(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::NodeDown(n) => write!(f, "node {n} is down"),
            ClusterError::Timeout => write!(f, "timed out waiting for a message"),
            ClusterError::Codec(e) => write!(f, "codec error: {e}"),
            ClusterError::ShutDown => write!(f, "cluster is shut down"),
            ClusterError::ReceiverDetached => {
                write!(f, "client receiver was detached from the cluster")
            }
            ClusterError::Backpressure => {
                write!(
                    f,
                    "send queue full: destination is not draining fast enough"
                )
            }
            ClusterError::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ClusterError {
    fn from(e: CodecError) -> Self {
        ClusterError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node_ids() {
        assert!(ClusterError::UnknownNode(3).to_string().contains('3'));
        assert!(ClusterError::NodeDown(7).to_string().contains('7'));
    }

    #[test]
    fn codec_error_converts_and_chains() {
        let e: ClusterError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, ClusterError::Codec(_)));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(ClusterError::Timeout.source().is_none());
    }
}
