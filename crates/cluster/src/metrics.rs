//! Per-node and cluster-wide metrics.
//!
//! The paper's key diagnostics are three-way time breakdowns (computation /
//! communication / other — Figs. 2b & 8), per-node load profiles (the
//! imbalance factor of §4.2.1), and byte counters. Counters use relaxed
//! atomics so worker threads can record without contention; consistency is
//! only needed at snapshot time, after the cluster has quiesced.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::net::CommMode;

/// Monotonic counters owned by one node (or the client).
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Nanoseconds spent inside distance kernels and other real work,
    /// recorded explicitly via [`crate::node::NodeCtx::time_compute`].
    pub compute_ns: AtomicU64,
    /// Modeled network nanoseconds charged to this node for sends.
    pub comm_tx_ns: AtomicU64,
    /// Modeled network nanoseconds charged to this node for receives.
    pub comm_rx_ns: AtomicU64,
    /// Wall nanoseconds spent inside message handlers (busy time).
    pub busy_ns: AtomicU64,
    /// Payload bytes sent.
    pub bytes_tx: AtomicU64,
    /// Payload bytes received.
    pub bytes_rx: AtomicU64,
    /// Messages sent.
    pub msgs_tx: AtomicU64,
    /// Messages received.
    pub msgs_rx: AtomicU64,
    /// Wire bytes sent: payload plus the transport's per-message framing
    /// overhead (0 for the in-process fabric).
    pub wire_tx_bytes: AtomicU64,
    /// Wire bytes received (payload + framing).
    pub wire_rx_bytes: AtomicU64,
}

impl NodeMetrics {
    /// Adds `ns` of compute time.
    #[inline]
    pub fn add_compute(&self, ns: u64) {
        self.compute_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds `ns` of handler busy time.
    #[inline]
    pub fn add_busy(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an outgoing message of `bytes` payload costing `ns`.
    #[inline]
    pub fn record_tx(&self, bytes: u64, ns: u64) {
        self.bytes_tx.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_tx.fetch_add(1, Ordering::Relaxed);
        self.comm_tx_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an incoming message of `bytes` payload costing `ns`.
    #[inline]
    pub fn record_rx(&self, bytes: u64, ns: u64) {
        self.bytes_rx.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_rx.fetch_add(1, Ordering::Relaxed);
        self.comm_rx_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds `bytes` of outgoing wire traffic (payload + framing).
    #[inline]
    pub fn add_wire_tx(&self, bytes: u64) {
        self.wire_tx_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds `bytes` of incoming wire traffic (payload + framing).
    #[inline]
    pub fn add_wire_rx(&self, bytes: u64) {
        self.wire_rx_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the counters.
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
            comm_tx_ns: self.comm_tx_ns.load(Ordering::Relaxed),
            comm_rx_ns: self.comm_rx_ns.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            msgs_tx: self.msgs_tx.load(Ordering::Relaxed),
            msgs_rx: self.msgs_rx.load(Ordering::Relaxed),
            wire_tx_bytes: self.wire_tx_bytes.load(Ordering::Relaxed),
            wire_rx_bytes: self.wire_rx_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (between experiment phases).
    pub fn reset(&self) {
        self.compute_ns.store(0, Ordering::Relaxed);
        self.comm_tx_ns.store(0, Ordering::Relaxed);
        self.comm_rx_ns.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
        self.bytes_tx.store(0, Ordering::Relaxed);
        self.bytes_rx.store(0, Ordering::Relaxed);
        self.msgs_tx.store(0, Ordering::Relaxed);
        self.msgs_rx.store(0, Ordering::Relaxed);
        self.wire_tx_bytes.store(0, Ordering::Relaxed);
        self.wire_rx_bytes.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of one node's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// See [`NodeMetrics::compute_ns`].
    pub compute_ns: u64,
    /// See [`NodeMetrics::comm_tx_ns`].
    pub comm_tx_ns: u64,
    /// See [`NodeMetrics::comm_rx_ns`].
    pub comm_rx_ns: u64,
    /// See [`NodeMetrics::busy_ns`].
    pub busy_ns: u64,
    /// See [`NodeMetrics::bytes_tx`].
    pub bytes_tx: u64,
    /// See [`NodeMetrics::bytes_rx`].
    pub bytes_rx: u64,
    /// See [`NodeMetrics::msgs_tx`].
    pub msgs_tx: u64,
    /// See [`NodeMetrics::msgs_rx`].
    pub msgs_rx: u64,
    /// See [`NodeMetrics::wire_tx_bytes`].
    pub wire_tx_bytes: u64,
    /// See [`NodeMetrics::wire_rx_bytes`].
    pub wire_rx_bytes: u64,
}

impl NodeSnapshot {
    /// Total modeled communication nanoseconds (tx + rx).
    pub fn comm_ns(&self) -> u64 {
        self.comm_tx_ns + self.comm_rx_ns
    }

    /// Handler time not attributed to compute: bookkeeping, queueing,
    /// (de)serialization — the paper's "other overhead".
    pub fn other_ns(&self) -> u64 {
        self.busy_ns.saturating_sub(self.compute_ns)
    }

    /// The node's contribution to the cluster makespan under the given
    /// communication mode: blocking transports serialize compute and
    /// communication; non-blocking transports overlap them.
    pub fn makespan_ns(&self, mode: CommMode) -> u64 {
        match mode {
            CommMode::Blocking => self.busy_ns + self.comm_ns(),
            CommMode::NonBlocking => self.busy_ns.max(self.comm_ns()),
        }
    }

    /// Counter delta since `earlier` (element-wise saturating subtraction).
    ///
    /// Used by concurrent clients to attribute a time window without
    /// resetting the shared counters under other sessions' feet.
    pub fn delta(&self, earlier: &NodeSnapshot) -> NodeSnapshot {
        NodeSnapshot {
            compute_ns: self.compute_ns.saturating_sub(earlier.compute_ns),
            comm_tx_ns: self.comm_tx_ns.saturating_sub(earlier.comm_tx_ns),
            comm_rx_ns: self.comm_rx_ns.saturating_sub(earlier.comm_rx_ns),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            bytes_tx: self.bytes_tx.saturating_sub(earlier.bytes_tx),
            bytes_rx: self.bytes_rx.saturating_sub(earlier.bytes_rx),
            msgs_tx: self.msgs_tx.saturating_sub(earlier.msgs_tx),
            msgs_rx: self.msgs_rx.saturating_sub(earlier.msgs_rx),
            wire_tx_bytes: self.wire_tx_bytes.saturating_sub(earlier.wire_tx_bytes),
            wire_rx_bytes: self.wire_rx_bytes.saturating_sub(earlier.wire_rx_bytes),
        }
    }

    /// Element-wise sum (for aggregating nodes).
    pub fn merged(&self, other: &NodeSnapshot) -> NodeSnapshot {
        NodeSnapshot {
            compute_ns: self.compute_ns + other.compute_ns,
            comm_tx_ns: self.comm_tx_ns + other.comm_tx_ns,
            comm_rx_ns: self.comm_rx_ns + other.comm_rx_ns,
            busy_ns: self.busy_ns + other.busy_ns,
            bytes_tx: self.bytes_tx + other.bytes_tx,
            bytes_rx: self.bytes_rx + other.bytes_rx,
            msgs_tx: self.msgs_tx + other.msgs_tx,
            msgs_rx: self.msgs_rx + other.msgs_rx,
            wire_tx_bytes: self.wire_tx_bytes + other.wire_tx_bytes,
            wire_rx_bytes: self.wire_rx_bytes + other.wire_rx_bytes,
        }
    }
}

/// Snapshot of every node plus the client.
#[derive(Debug, Clone, Default)]
pub struct ClusterSnapshot {
    /// Worker snapshots, indexed by node id.
    pub workers: Vec<NodeSnapshot>,
    /// The client (master) node's snapshot.
    pub client: NodeSnapshot,
}

impl ClusterSnapshot {
    /// Sum over workers and client.
    pub fn total(&self) -> NodeSnapshot {
        self.workers
            .iter()
            .fold(self.client, |acc, w| acc.merged(w))
    }

    /// Node-wise counter delta since `earlier` (see [`NodeSnapshot::delta`]).
    pub fn delta(&self, earlier: &ClusterSnapshot) -> ClusterSnapshot {
        let zero = NodeSnapshot::default();
        ClusterSnapshot {
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| w.delta(earlier.workers.get(i).unwrap_or(&zero)))
                .collect(),
            client: self.client.delta(&earlier.client),
        }
    }

    /// Cluster makespan: the slowest node gates completion.
    pub fn makespan_ns(&self, mode: CommMode) -> u64 {
        self.workers
            .iter()
            .map(|w| w.makespan_ns(mode))
            .chain(std::iter::once(self.client.makespan_ns(mode)))
            .max()
            .unwrap_or(0)
    }

    /// Per-worker compute load (the `Load(n, π)` of §4.2.1).
    pub fn worker_loads(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.compute_ns).collect()
    }

    /// Standard deviation of worker compute loads — the imbalance factor
    /// `I(π)` of §4.2.1.
    pub fn imbalance(&self) -> f64 {
        let loads = self.worker_loads();
        if loads.is_empty() {
            return 0.0;
        }
        let mean = loads.iter().map(|&l| l as f64).sum::<f64>() / loads.len() as f64;
        let var = loads
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / loads.len() as f64;
        var.sqrt()
    }

    /// Ratio of the hottest worker's compute load to the mean (1.0 = even).
    ///
    /// The live analogue of the planner's imbalance factor, usable on a
    /// window [`ClusterSnapshot::delta`]: a drifting workload shows up here
    /// before it shows up in tail latency. Uses max/mean (not max/min) so
    /// legitimately idle workers do not blow the ratio up to infinity; a
    /// window with no compute anywhere reports 1.0.
    pub fn imbalance_ratio(&self) -> f64 {
        let loads = self.worker_loads();
        let total: u64 = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return 1.0;
        }
        let max = loads.iter().copied().max().unwrap_or(0);
        max as f64 / (total as f64 / loads.len() as f64)
    }

    /// Three-way time breakdown across the whole cluster.
    pub fn breakdown(&self) -> TimeBreakdown {
        let t = self.total();
        TimeBreakdown {
            compute_ns: t.compute_ns,
            comm_ns: t.comm_ns(),
            other_ns: t.other_ns(),
        }
    }
}

/// The computation / communication / other split of Figs. 2b & 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Computation nanoseconds.
    pub compute_ns: u64,
    /// Communication nanoseconds (modeled).
    pub comm_ns: u64,
    /// Other overhead nanoseconds.
    pub other_ns: u64,
}

impl TimeBreakdown {
    /// Total accounted nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.comm_ns + self.other_ns
    }

    /// Percentages `(compute, comm, other)`, summing to ~100.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let total = self.total_ns() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.compute_ns as f64 / total * 100.0,
            self.comm_ns as f64 / total * 100.0,
            self.other_ns as f64 / total * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_roundtrip() {
        let m = NodeMetrics::default();
        m.add_compute(100);
        m.add_busy(150);
        m.record_tx(1000, 50);
        m.record_rx(500, 25);
        let s = m.snapshot();
        assert_eq!(s.compute_ns, 100);
        assert_eq!(s.busy_ns, 150);
        assert_eq!(s.bytes_tx, 1000);
        assert_eq!(s.bytes_rx, 500);
        assert_eq!(s.msgs_tx, 1);
        assert_eq!(s.msgs_rx, 1);
        assert_eq!(s.comm_ns(), 75);
        assert_eq!(s.other_ns(), 50);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = NodeMetrics::default();
        m.add_compute(1);
        m.record_tx(2, 3);
        m.add_wire_tx(4);
        m.reset();
        assert_eq!(m.snapshot(), NodeSnapshot::default());
    }

    #[test]
    fn wire_bytes_tracked_separately_from_payload() {
        let m = NodeMetrics::default();
        m.record_tx(100, 5);
        m.add_wire_tx(121); // payload + framing
        m.add_wire_rx(42);
        let s = m.snapshot();
        assert_eq!(s.bytes_tx, 100);
        assert_eq!(s.wire_tx_bytes, 121);
        assert_eq!(s.wire_rx_bytes, 42);
        let d = s.delta(&NodeSnapshot::default());
        assert_eq!(d.wire_tx_bytes, 121);
        assert_eq!(s.merged(&s).wire_rx_bytes, 84);
    }

    #[test]
    fn makespan_blocking_adds_nonblocking_overlaps() {
        let s = NodeSnapshot {
            busy_ns: 100,
            comm_tx_ns: 30,
            comm_rx_ns: 20,
            ..Default::default()
        };
        assert_eq!(s.makespan_ns(CommMode::Blocking), 150);
        assert_eq!(s.makespan_ns(CommMode::NonBlocking), 100);
        let comm_heavy = NodeSnapshot {
            busy_ns: 10,
            comm_tx_ns: 200,
            ..Default::default()
        };
        assert_eq!(comm_heavy.makespan_ns(CommMode::NonBlocking), 200);
    }

    #[test]
    fn cluster_makespan_takes_slowest_node() {
        let snap = ClusterSnapshot {
            workers: vec![
                NodeSnapshot {
                    busy_ns: 50,
                    ..Default::default()
                },
                NodeSnapshot {
                    busy_ns: 200,
                    ..Default::default()
                },
            ],
            client: NodeSnapshot {
                busy_ns: 10,
                ..Default::default()
            },
        };
        assert_eq!(snap.makespan_ns(CommMode::NonBlocking), 200);
    }

    #[test]
    fn imbalance_zero_for_equal_loads() {
        let mk = |c| NodeSnapshot {
            compute_ns: c,
            ..Default::default()
        };
        let balanced = ClusterSnapshot {
            workers: vec![mk(100), mk(100), mk(100)],
            client: NodeSnapshot::default(),
        };
        assert_eq!(balanced.imbalance(), 0.0);
        let skewed = ClusterSnapshot {
            workers: vec![mk(0), mk(200)],
            client: NodeSnapshot::default(),
        };
        assert!(skewed.imbalance() > 99.0);
    }

    #[test]
    fn imbalance_ratio_tracks_concentration() {
        let mk = |c| NodeSnapshot {
            compute_ns: c,
            ..Default::default()
        };
        let even = ClusterSnapshot {
            workers: vec![mk(100), mk(100)],
            client: NodeSnapshot::default(),
        };
        assert_eq!(even.imbalance_ratio(), 1.0);
        let hot = ClusterSnapshot {
            workers: vec![mk(300), mk(100), mk(0), mk(0)],
            client: NodeSnapshot::default(),
        };
        assert_eq!(hot.imbalance_ratio(), 3.0);
        // An idle window is "balanced", not a division by zero.
        let idle = ClusterSnapshot {
            workers: vec![mk(0), mk(0)],
            client: NodeSnapshot::default(),
        };
        assert_eq!(idle.imbalance_ratio(), 1.0);
    }

    #[test]
    fn breakdown_percentages_sum_to_hundred() {
        let b = TimeBreakdown {
            compute_ns: 60,
            comm_ns: 30,
            other_ns: 10,
        };
        let (c, m, o) = b.percentages();
        assert!((c - 60.0).abs() < 1e-9);
        assert!((m - 30.0).abs() < 1e-9);
        assert!((o - 10.0).abs() < 1e-9);
        assert!((c + m + o - 100.0).abs() < 1e-9);
        let zero = TimeBreakdown::default();
        assert_eq!(zero.percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn delta_subtracts_earlier_counters() {
        let earlier = NodeSnapshot {
            compute_ns: 10,
            bytes_tx: 100,
            msgs_tx: 2,
            ..Default::default()
        };
        let later = NodeSnapshot {
            compute_ns: 25,
            bytes_tx: 160,
            msgs_tx: 5,
            ..Default::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.compute_ns, 15);
        assert_eq!(d.bytes_tx, 60);
        assert_eq!(d.msgs_tx, 3);
        // A reset between snapshots must saturate, not underflow.
        assert_eq!(earlier.delta(&later), NodeSnapshot::default());
    }

    #[test]
    fn cluster_delta_is_node_wise() {
        let mk = |b| NodeSnapshot {
            bytes_rx: b,
            ..Default::default()
        };
        let earlier = ClusterSnapshot {
            workers: vec![mk(5), mk(10)],
            client: mk(1),
        };
        let later = ClusterSnapshot {
            workers: vec![mk(8), mk(30)],
            client: mk(4),
        };
        let d = later.delta(&earlier);
        assert_eq!(d.workers[0].bytes_rx, 3);
        assert_eq!(d.workers[1].bytes_rx, 20);
        assert_eq!(d.client.bytes_rx, 3);
    }

    #[test]
    fn total_merges_client_and_workers() {
        let snap = ClusterSnapshot {
            workers: vec![NodeSnapshot {
                bytes_tx: 5,
                ..Default::default()
            }],
            client: NodeSnapshot {
                bytes_tx: 7,
                ..Default::default()
            },
        };
        assert_eq!(snap.total().bytes_tx, 12);
    }
}
