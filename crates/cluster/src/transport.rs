//! The transport fabric: how frames physically move between nodes.
//!
//! Every inter-node message flows through the [`Transport`] trait as an
//! opaque [`Frame`]. The cost model, metrics, failure injection, and delay
//! injection all live *above* the transport (see [`crate::node::send_impl`]):
//! a transport's only job is reliable frame delivery, which is what makes
//! results bit-identical across backends. Two implementations ship:
//!
//! * [`InProcTransport`] — the original in-process fabric: one
//!   crossbeam-channel mailbox per node, zero framing overhead. This is the
//!   default and what the simulated cost model was calibrated against.
//! * [`TcpTransport`] — real loopback sockets carrying length-prefixed
//!   frames encoded with the [`crate::codec`] wire format. Each destination
//!   owns a bounded send queue drained by a writer thread that coalesces
//!   small frames into one `write` per flush tick; a full queue surfaces as
//!   [`ClusterError::Backpressure`], and broken connections are re-dialed
//!   with bounded retries before the destination is declared down.
//!
//! ## Frame format (TCP)
//!
//! ```text
//! +----------------+---------------------------------------------+
//! | u32 LE length  |  Wire-encoded Frame (length bytes)          |
//! +----------------+---------------------------------------------+
//! ```
//!
//! The body reuses the codec's rules (tag byte, little-endian integers,
//! length-prefixed payload). Frames longer than [`MAX_FRAME_BYTES`] are
//! rejected on decode — a hostile or corrupt length prefix cannot force an
//! unbounded allocation — and any malformed frame drops the connection so
//! the reader can resynchronize on a fresh accept.
//!
//! ## Backpressure and reconnect contract (TCP)
//!
//! * `send` waits at most [`TcpOptions::send_wait`] for queue space, then
//!   fails with [`ClusterError::Backpressure`] — callers decide whether to
//!   retry, shed, or abort.
//! * A failed write re-dials the destination up to
//!   [`TcpOptions::connect_retries`] times with linear backoff and then
//!   retransmits the unacknowledged batch on the new connection
//!   (at-least-once during reconnect); if every attempt fails the
//!   destination is marked down and subsequent sends fail with
//!   [`ClusterError::NodeDown`].

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};

use crate::codec::{CodecError, Wire};
use crate::error::ClusterError;
use crate::mem;
use crate::node::{NodeId, CLIENT};

/// Hard ceiling on a single frame's encoded body (64 MiB). A corrupt or
/// hostile length prefix beyond this drops the connection instead of
/// allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// The opaque unit a transport moves between nodes.
///
/// `User` carries an application payload plus the receiver-side delay the
/// cost model asked to inject; `Ping`/`Pong` are the barrier probes of
/// [`crate::cluster::Cluster::quiesce`] (out of band, never cost-modeled);
/// `Shutdown` terminates a worker loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// An application payload.
    User {
        /// Sending node.
        from: NodeId,
        /// Serialized message.
        payload: Bytes,
        /// Receiver-side injected delay (non-blocking + sleep mode), ns.
        injected_delay_ns: u64,
    },
    /// Barrier probe; the worker runtime answers with `Pong` directly.
    Ping {
        /// Token echoed back in the pong.
        token: u64,
    },
    /// Barrier acknowledgment (worker → client).
    Pong {
        /// Responding worker.
        from: NodeId,
        /// Token from the matching ping.
        token: u64,
    },
    /// Orderly termination of the worker loop.
    Shutdown,
}

impl Frame {
    /// Encoded body size in bytes (without the u32 length prefix).
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::User { payload, .. } => 1 + 8 + 8 + 8 + payload.len(),
            Frame::Ping { .. } => 1 + 8,
            Frame::Pong { .. } => 1 + 8 + 8,
            Frame::Shutdown => 1,
        }
    }
}

impl Wire for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::User {
                from,
                payload,
                injected_delay_ns,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*injected_delay_ns);
                buf.put_u64_le(payload.len() as u64);
                buf.put_slice(payload);
            }
            Frame::Ping { token } => {
                buf.put_u8(1);
                buf.put_u64_le(*token);
            }
            Frame::Pong { from, token } => {
                buf.put_u8(2);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*token);
            }
            Frame::Shutdown => buf.put_u8(3),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let tag = u8::decode(buf)?;
        match tag {
            0 => {
                let from = u64::decode(buf)? as usize;
                let injected_delay_ns = u64::decode(buf)?;
                let len = usize::decode(buf)?;
                if len > buf.remaining() {
                    return Err(CodecError::Invalid(format!(
                        "payload claims {len} bytes but only {} remain",
                        buf.remaining()
                    )));
                }
                let payload = buf.copy_to_bytes(len);
                Ok(Frame::User {
                    from,
                    payload,
                    injected_delay_ns,
                })
            }
            1 => Ok(Frame::Ping {
                token: u64::decode(buf)?,
            }),
            2 => Ok(Frame::Pong {
                from: u64::decode(buf)? as usize,
                token: u64::decode(buf)?,
            }),
            3 => Ok(Frame::Shutdown),
            t => Err(CodecError::Invalid(format!("bad frame tag {t}"))),
        }
    }
}

/// Appends `frame` to `buf` as one length-prefixed wire frame.
pub fn encode_frame(frame: &Frame, buf: &mut BytesMut) {
    let body_len = frame.encoded_len();
    debug_assert!(body_len <= MAX_FRAME_BYTES, "frame exceeds MAX_FRAME_BYTES");
    buf.reserve(4 + body_len);
    buf.put_u32_le(body_len as u32);
    frame.encode(buf);
}

/// Tries to decode one length-prefixed frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (read more bytes and retry — nothing is consumed).
///
/// # Errors
/// [`CodecError::Invalid`] for an oversized length prefix or a malformed
/// body; the connection carrying such bytes cannot be resynchronized.
pub fn decode_frame(buf: &mut Bytes) -> Result<Option<Frame>, CodecError> {
    if buf.remaining() < 4 {
        return Ok(None);
    }
    let header = &buf[..4];
    let body_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(CodecError::Invalid(format!(
            "frame length {body_len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    if buf.remaining() < 4 + body_len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.copy_to_bytes(body_len);
    Frame::from_bytes(body).map(Some)
}

/// Which fabric carries the cluster's frames.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process crossbeam channels (the calibrated default).
    #[default]
    InProc,
    /// Real loopback TCP sockets with framing, batching, and backpressure.
    Tcp(TcpOptions),
}

impl TransportKind {
    /// TCP with default options.
    pub fn tcp() -> Self {
        TransportKind::Tcp(TcpOptions::default())
    }

    /// Short label for reports ("inproc" / "tcp").
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Tcp(_) => "tcp",
        }
    }
}

/// Tuning knobs of the [`TcpTransport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpOptions {
    /// Frames a destination's send queue holds before `send` pushes back.
    pub queue_capacity: usize,
    /// Coalescing buffer size that forces an immediate flush.
    pub flush_threshold_bytes: usize,
    /// Longest a small batch is held open waiting for more frames.
    pub flush_tick: Duration,
    /// Longest `send` waits for queue space before
    /// [`ClusterError::Backpressure`].
    pub send_wait: Duration,
    /// Dial attempts per (re)connect before the destination is declared
    /// down.
    pub connect_retries: u32,
    /// Base backoff between dial attempts (grows linearly).
    pub retry_backoff: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            flush_threshold_bytes: 64 << 10,
            flush_tick: Duration::from_micros(100),
            send_wait: Duration::from_millis(200),
            connect_retries: 5,
            retry_backoff: Duration::from_millis(20),
        }
    }
}

/// A cluster fabric: moves opaque [`Frame`]s between the `N` workers and
/// the client node.
///
/// Implementations must be reliable and FIFO per destination — everything
/// probabilistic (drop injection, modeled latency) is layered above by the
/// cost model, so the same workload produces bit-identical results on every
/// backend.
pub trait Transport: Send + Sync {
    /// Number of worker nodes (the client is addressed as [`CLIENT`]).
    fn workers(&self) -> usize;

    /// Delivers `frame` to `to`'s mailbox.
    ///
    /// # Errors
    /// [`ClusterError::UnknownNode`] for an invalid id,
    /// [`ClusterError::NodeDown`] when the destination is gone,
    /// [`ClusterError::Backpressure`] when its send queue stayed full,
    /// [`ClusterError::ShutDown`] after [`Transport::shutdown`].
    fn send(&self, to: NodeId, frame: Frame) -> Result<(), ClusterError>;

    /// Delivers a copy of `frame` to every worker.
    ///
    /// # Errors
    /// Fails on the first undeliverable worker (see [`Transport::send`]).
    fn broadcast(&self, frame: &Frame) -> Result<(), ClusterError> {
        for w in 0..self.workers() {
            self.send(w, frame.clone())?;
        }
        Ok(())
    }

    /// Receives the next frame addressed to `node`.
    ///
    /// Exactly one thread consumes each node's mailbox (the worker's event
    /// loop, or the client router for [`CLIENT`]).
    ///
    /// # Errors
    /// [`ClusterError::Timeout`] when nothing arrives in time,
    /// [`ClusterError::ShutDown`] once the fabric is torn down and drained.
    fn recv(&self, node: NodeId, timeout: Duration) -> Result<Frame, ClusterError>;

    /// Framing bytes this transport adds to each user message on the wire
    /// (0 for in-process delivery). Charged into the `wire_*` metrics.
    fn frame_overhead_bytes(&self) -> u64;

    /// Payload bytes currently buffered in send queues (0 when the
    /// transport does not buffer).
    fn buffered_bytes(&self) -> u64 {
        0
    }

    /// Tears the fabric down: closes queues and connections, wakes blocked
    /// receivers, joins background threads. Idempotent.
    fn shutdown(&self);
}

/// Builds the transport described by `kind` for `workers` nodes.
///
/// # Errors
/// [`ClusterError::Io`] when a TCP listener cannot bind.
pub fn build_transport(
    kind: &TransportKind,
    workers: usize,
) -> Result<Arc<dyn Transport>, ClusterError> {
    match kind {
        TransportKind::InProc => Ok(Arc::new(InProcTransport::new(workers))),
        TransportKind::Tcp(opts) => Ok(Arc::new(TcpTransport::bind(workers, opts.clone())?)),
    }
}

fn slot_of(node: NodeId, workers: usize) -> Result<usize, ClusterError> {
    if node == CLIENT {
        Ok(workers)
    } else if node < workers {
        Ok(node)
    } else {
        Err(ClusterError::UnknownNode(node))
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// The original in-process fabric: one unbounded channel per node, no
/// serialization, no framing. [`Transport::shutdown`] drops the send side so
/// drained receivers observe disconnection as [`ClusterError::ShutDown`].
pub struct InProcTransport {
    workers: usize,
    /// Send halves, slot-indexed (workers then client); `None` after
    /// shutdown.
    senders: RwLock<Option<Vec<Sender<Frame>>>>,
    /// Receive halves; each locked only by its single consumer.
    receivers: Vec<Mutex<Receiver<Frame>>>,
}

impl InProcTransport {
    /// A fabric for `workers` nodes plus the client.
    pub fn new(workers: usize) -> Self {
        let mut senders = Vec::with_capacity(workers + 1);
        let mut receivers = Vec::with_capacity(workers + 1);
        for _ in 0..=workers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        Self {
            workers,
            senders: RwLock::new(Some(senders)),
            receivers,
        }
    }
}

impl Transport for InProcTransport {
    fn workers(&self) -> usize {
        self.workers
    }

    fn send(&self, to: NodeId, frame: Frame) -> Result<(), ClusterError> {
        let slot = slot_of(to, self.workers)?;
        let guard = self.senders.read();
        let senders = guard.as_ref().ok_or(ClusterError::ShutDown)?;
        senders[slot]
            .send(frame)
            .map_err(|_| ClusterError::NodeDown(to))
    }

    fn recv(&self, node: NodeId, timeout: Duration) -> Result<Frame, ClusterError> {
        let slot = slot_of(node, self.workers)?;
        let rx = self.receivers[slot].lock();
        match rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::ShutDown),
        }
    }

    fn frame_overhead_bytes(&self) -> u64 {
        0
    }

    fn shutdown(&self) {
        self.senders.write().take();
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// Outcome of pushing into a bounded send queue.
enum PushError {
    Full,
    Closed,
}

struct QueueState {
    frames: VecDeque<Frame>,
    bytes: usize,
    closed: bool,
}

/// A bounded MPSC frame queue with blocking push/pop and a byte gauge that
/// feeds [`mem::transport_buffered_bytes`].
struct SendQueue {
    state: StdMutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl SendQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: StdMutex::new(QueueState {
                frames: VecDeque::new(),
                bytes: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `frame`, waiting up to `wait` for space.
    fn push(&self, frame: Frame, wait: Duration) -> Result<(), PushError> {
        let deadline = Instant::now() + wait;
        // Poisoning recovery: QueueState mutations are plain arithmetic and
        // queue ops that stay consistent even if a holder panicked mid-way.
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return Err(PushError::Closed);
            }
            if state.frames.len() < self.capacity {
                let len = 4 + frame.encoded_len();
                state.bytes += len;
                mem::transport_buffer_add(len);
                state.frames.push_back(frame);
                self.not_empty.notify_one();
                return Ok(());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(PushError::Full);
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Dequeues one frame, waiting up to `wait`; `Ok(None)` on timeout.
    ///
    /// # Errors
    /// `Err(())` once the queue is closed *and* empty.
    fn pop(&self, wait: Duration) -> Result<Option<Frame>, ()> {
        let deadline = Instant::now() + wait;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(frame) = state.frames.pop_front() {
                let len = 4 + frame.encoded_len();
                state.bytes -= len;
                mem::transport_buffer_sub(len);
                self.not_full.notify_one();
                return Ok(Some(frame));
            }
            if state.closed {
                return Err(());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        mem::transport_buffer_sub(state.bytes);
        state.bytes = 0;
        state.frames.clear();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn buffered_bytes(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }
}

/// Per-user-message framing overhead on the TCP wire: the u32 length prefix
/// plus the `Frame::User` header (tag, sender, injected delay, payload
/// length).
pub const TCP_FRAME_OVERHEAD_BYTES: u64 = 4 + 1 + 8 + 8 + 8;

/// Real loopback sockets. One listener + acceptor/reader thread per node,
/// one bounded send queue + writer thread per destination; see the module
/// docs for the frame format and the backpressure/reconnect contract.
pub struct TcpTransport {
    workers: usize,
    opts: TcpOptions,
    queues: Vec<Arc<SendQueue>>,
    delivery_rx: Vec<Mutex<Receiver<Frame>>>,
    /// Listener addresses, slot-indexed (used by shutdown to unblock
    /// accept).
    addrs: Vec<SocketAddr>,
    /// Each destination writer's live connection (cloned handle), so
    /// shutdown can sever a blocked write.
    live_streams: Vec<Arc<Mutex<Option<TcpStream>>>>,
    /// Destinations declared unreachable after exhausted reconnects.
    dead: Vec<Arc<AtomicBool>>,
    down: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds one loopback listener per node and spawns the acceptor and
    /// writer threads.
    ///
    /// # Errors
    /// [`ClusterError::Io`] when a listener cannot bind.
    pub fn bind(workers: usize, opts: TcpOptions) -> Result<Self, ClusterError> {
        let slots = workers + 1;
        let down = Arc::new(AtomicBool::new(false));
        let mut listeners = Vec::with_capacity(slots);
        let mut addrs = Vec::with_capacity(slots);
        for _ in 0..slots {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| ClusterError::Io(format!("bind loopback listener: {e}")))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| ClusterError::Io(format!("listener address: {e}")))?,
            );
            listeners.push(listener);
        }

        let mut threads = Vec::with_capacity(slots * 2);
        let mut delivery_rx = Vec::with_capacity(slots);
        for (slot, listener) in listeners.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            delivery_rx.push(Mutex::new(rx));
            let down = Arc::clone(&down);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("harmony-tcp-rx-{slot}"))
                    .spawn(move || accept_loop(listener, tx, down))
                    .map_err(|e| ClusterError::Io(format!("spawn reader thread: {e}")))?,
            );
        }

        let mut queues = Vec::with_capacity(slots);
        let mut live_streams = Vec::with_capacity(slots);
        let mut dead = Vec::with_capacity(slots);
        for (slot, &addr) in addrs.iter().enumerate() {
            let queue = Arc::new(SendQueue::new(opts.queue_capacity));
            let live = Arc::new(Mutex::new(None));
            let slot_dead = Arc::new(AtomicBool::new(false));
            {
                let queue = Arc::clone(&queue);
                let live = Arc::clone(&live);
                let slot_dead = Arc::clone(&slot_dead);
                let down = Arc::clone(&down);
                let opts = opts.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("harmony-tcp-tx-{slot}"))
                        .spawn(move || writer_loop(addr, queue, live, slot_dead, down, opts))
                        .map_err(|e| ClusterError::Io(format!("spawn writer thread: {e}")))?,
                );
            }
            queues.push(queue);
            live_streams.push(live);
            dead.push(slot_dead);
        }

        Ok(Self {
            workers,
            opts,
            queues,
            delivery_rx,
            addrs,
            live_streams,
            dead,
            down,
            threads: Mutex::new(threads),
        })
    }

    /// The tuning options in force.
    pub fn options(&self) -> &TcpOptions {
        &self.opts
    }
}

impl Transport for TcpTransport {
    fn workers(&self) -> usize {
        self.workers
    }

    fn send(&self, to: NodeId, frame: Frame) -> Result<(), ClusterError> {
        let slot = slot_of(to, self.workers)?;
        if self.down.load(Ordering::Acquire) {
            return Err(ClusterError::ShutDown);
        }
        if self.dead[slot].load(Ordering::Acquire) {
            return Err(ClusterError::NodeDown(to));
        }
        match self.queues[slot].push(frame, self.opts.send_wait) {
            Ok(()) => Ok(()),
            Err(PushError::Full) => Err(ClusterError::Backpressure),
            Err(PushError::Closed) => Err(ClusterError::ShutDown),
        }
    }

    fn recv(&self, node: NodeId, timeout: Duration) -> Result<Frame, ClusterError> {
        let slot = slot_of(node, self.workers)?;
        let rx = self.delivery_rx[slot].lock();
        match rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::ShutDown),
        }
    }

    fn frame_overhead_bytes(&self) -> u64 {
        TCP_FRAME_OVERHEAD_BYTES
    }

    fn buffered_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.buffered_bytes() as u64).sum()
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        for queue in &self.queues {
            queue.close();
        }
        // Sever live connections: a writer blocked mid-`write_all` (stalled
        // peer) wakes with an error and observes the shutdown flag.
        for live in &self.live_streams {
            if let Some(stream) = live.lock().take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        // Unblock acceptors parked in `accept` with a throwaway dial.
        for &addr in &self.addrs {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections for one node and pumps decoded frames into its
/// delivery channel. Sequential accepts are the reconnect path: a broken
/// connection falls back here and the writer dials in again.
fn accept_loop(listener: TcpListener, delivery: Sender<Frame>, down: Arc<AtomicBool>) {
    loop {
        if down.load(Ordering::Acquire) {
            return;
        }
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if down.load(Ordering::Acquire) {
            return;
        }
        read_frames(stream, &delivery, &down);
    }
}

/// Reads length-prefixed frames off one connection until EOF or a framing
/// violation (oversized or malformed frame), which drops the connection.
fn read_frames(mut stream: TcpStream, delivery: &Sender<Frame>, down: &AtomicBool) {
    let mut header = [0u8; 4];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let body_len = u32::from_le_bytes(header) as usize;
        if body_len > MAX_FRAME_BYTES {
            return;
        }
        let mut body = vec![0u8; body_len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let Ok(frame) = Frame::from_bytes(Bytes::from(body)) else {
            return;
        };
        if down.load(Ordering::Acquire) || delivery.send(frame).is_err() {
            return;
        }
    }
}

/// Dials `addr` with bounded linear-backoff retries; `None` once the
/// transport is down or every attempt failed.
fn dial(
    addr: SocketAddr,
    opts: &TcpOptions,
    down: &AtomicBool,
    live: &Mutex<Option<TcpStream>>,
) -> Option<TcpStream> {
    for attempt in 0..=opts.connect_retries {
        if down.load(Ordering::Acquire) {
            return None;
        }
        if let Ok(stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            *live.lock() = stream.try_clone().ok();
            return Some(stream);
        }
        std::thread::sleep(opts.retry_backoff * (attempt + 1));
    }
    None
}

/// Drains one destination's send queue: coalesces frames into a buffer
/// until the flush threshold or flush tick is hit, writes the batch, and
/// re-dials (retransmitting the batch) on a broken connection.
fn writer_loop(
    addr: SocketAddr,
    queue: Arc<SendQueue>,
    live: Arc<Mutex<Option<TcpStream>>>,
    dead: Arc<AtomicBool>,
    down: Arc<AtomicBool>,
    opts: TcpOptions,
) {
    let Some(mut stream) = dial(addr, &opts, &down, &live) else {
        dead.store(true, Ordering::Release);
        queue.close();
        return;
    };
    let mut buf = BytesMut::new();
    'drain: loop {
        // Block for the batch's first frame.
        let first = loop {
            match queue.pop(Duration::from_millis(100)) {
                Ok(Some(frame)) => break frame,
                Ok(None) => continue,
                Err(()) => break 'drain,
            }
        };
        buf.clear();
        encode_frame(&first, &mut buf);
        // Coalesce: hold the batch open for at most one flush tick, or
        // until it is large enough to be worth a syscall on its own.
        let deadline = Instant::now() + opts.flush_tick;
        while buf.len() < opts.flush_threshold_bytes {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match queue.pop(remaining) {
                Ok(Some(frame)) => encode_frame(&frame, &mut buf),
                Ok(None) => break,
                Err(()) => break,
            }
        }
        while stream.write_all(&buf).is_err() {
            if down.load(Ordering::Acquire) {
                return;
            }
            // Reconnect and retransmit the whole batch on the fresh
            // connection (at-least-once during reconnect; the reader's
            // framing restarts per connection, so no corruption).
            match dial(addr, &opts, &down, &live) {
                Some(s) => stream = s,
                None => {
                    dead.store(true, Ordering::Release);
                    queue.close();
                    return;
                }
            }
        }
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(from: NodeId, payload: &'static [u8]) -> Frame {
        Frame::User {
            from,
            payload: Bytes::from_static(payload),
            injected_delay_ns: 0,
        }
    }

    #[test]
    fn frame_roundtrips_through_wire() {
        for frame in [
            user(3, b"hello"),
            user(CLIENT, b""),
            Frame::Ping { token: 42 },
            Frame::Pong { from: 7, token: 42 },
            Frame::Shutdown,
        ] {
            let bytes = frame.to_bytes();
            assert_eq!(bytes.len(), frame.encoded_len());
            assert_eq!(Frame::from_bytes(bytes).unwrap(), frame);
        }
    }

    #[test]
    fn framed_encode_decode_roundtrips() {
        let mut buf = BytesMut::new();
        encode_frame(&user(1, b"abc"), &mut buf);
        encode_frame(&Frame::Ping { token: 9 }, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_frame(&mut bytes).unwrap(), Some(user(1, b"abc")));
        assert_eq!(
            decode_frame(&mut bytes).unwrap(),
            Some(Frame::Ping { token: 9 })
        );
        assert_eq!(decode_frame(&mut bytes).unwrap(), None);
    }

    #[test]
    fn truncated_frame_waits_for_more_bytes() {
        let mut buf = BytesMut::new();
        encode_frame(&user(0, b"payload"), &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert_eq!(decode_frame(&mut partial).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_BYTES + 1) as u32);
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_frame(&mut bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn inproc_send_recv_roundtrip() {
        let t = InProcTransport::new(2);
        t.send(1, user(CLIENT, b"hi")).unwrap();
        t.send(CLIENT, user(1, b"yo")).unwrap();
        assert_eq!(
            t.recv(1, Duration::from_secs(1)).unwrap(),
            user(CLIENT, b"hi")
        );
        assert_eq!(
            t.recv(CLIENT, Duration::from_secs(1)).unwrap(),
            user(1, b"yo")
        );
        assert_eq!(
            t.recv(0, Duration::from_millis(10)),
            Err(ClusterError::Timeout)
        );
        assert_eq!(
            t.send(5, Frame::Shutdown),
            Err(ClusterError::UnknownNode(5))
        );
    }

    #[test]
    fn inproc_shutdown_disconnects_drained_receivers() {
        let t = InProcTransport::new(1);
        t.send(0, Frame::Shutdown).unwrap();
        t.shutdown();
        // Buffered frames still drain...
        assert_eq!(t.recv(0, Duration::from_secs(1)).unwrap(), Frame::Shutdown);
        // ...then the disconnect shows through.
        assert_eq!(
            t.recv(0, Duration::from_millis(10)),
            Err(ClusterError::ShutDown)
        );
        assert_eq!(t.send(0, Frame::Shutdown), Err(ClusterError::ShutDown));
    }

    #[test]
    fn tcp_send_recv_roundtrip() {
        let t = TcpTransport::bind(2, TcpOptions::default()).unwrap();
        t.send(0, user(CLIENT, b"over the wire")).unwrap();
        t.send(CLIENT, user(0, b"and back")).unwrap();
        assert_eq!(
            t.recv(0, Duration::from_secs(5)).unwrap(),
            user(CLIENT, b"over the wire")
        );
        assert_eq!(
            t.recv(CLIENT, Duration::from_secs(5)).unwrap(),
            user(0, b"and back")
        );
        t.shutdown();
        assert_eq!(t.send(0, Frame::Shutdown), Err(ClusterError::ShutDown));
    }

    #[test]
    fn tcp_preserves_per_destination_order() {
        let t = TcpTransport::bind(1, TcpOptions::default()).unwrap();
        for i in 0..256u64 {
            t.send(0, Frame::Ping { token: i }).unwrap();
        }
        for i in 0..256u64 {
            assert_eq!(
                t.recv(0, Duration::from_secs(5)).unwrap(),
                Frame::Ping { token: i }
            );
        }
        t.shutdown();
    }

    #[test]
    fn tcp_coalesces_small_frames() {
        // A generous flush tick batches the burst into few writes; all
        // frames must still arrive, in order.
        let opts = TcpOptions {
            flush_tick: Duration::from_millis(5),
            ..TcpOptions::default()
        };
        let t = TcpTransport::bind(1, opts).unwrap();
        for i in 0..64u64 {
            t.send(0, Frame::Ping { token: i }).unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(
                t.recv(0, Duration::from_secs(5)).unwrap(),
                Frame::Ping { token: i }
            );
        }
        t.shutdown();
    }

    #[test]
    fn tcp_backpressure_surfaces_when_queue_stays_full() {
        // Tiny queue, no send grace, and a peer that never accepts: once
        // the kernel buffers fill, the queue stays full and sends must
        // report Backpressure instead of buffering without bound.
        let opts = TcpOptions {
            queue_capacity: 2,
            send_wait: Duration::ZERO,
            flush_threshold_bytes: 1 << 20,
            connect_retries: 0,
            ..TcpOptions::default()
        };
        let t = TcpTransport::bind(1, opts).unwrap();
        let payload = Bytes::from(vec![0u8; 1 << 20]); // 1 MiB frames
        let mut saw_backpressure = false;
        for _ in 0..64 {
            match t.send(
                0,
                Frame::User {
                    from: CLIENT,
                    payload: payload.clone(),
                    injected_delay_ns: 0,
                },
            ) {
                Ok(()) => continue,
                Err(ClusterError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saw_backpressure, "full queue never pushed back");
        assert!(t.buffered_bytes() > 0);
        t.shutdown();
    }

    #[test]
    fn tcp_shutdown_is_idempotent_and_wakes_receivers() {
        let t = Arc::new(TcpTransport::bind(1, TcpOptions::default()).unwrap());
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || t2.recv(CLIENT, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        t.shutdown();
        t.shutdown();
        assert_eq!(waiter.join().unwrap(), Err(ClusterError::ShutDown));
    }

    #[test]
    fn transport_buffer_gauge_returns_to_zero() {
        let t = TcpTransport::bind(1, TcpOptions::default()).unwrap();
        for _ in 0..8 {
            t.send(0, user(CLIENT, b"gauge")).unwrap();
        }
        for _ in 0..8 {
            t.recv(0, Duration::from_secs(5)).unwrap();
        }
        // Writers drained everything; nothing may stay accounted.
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.buffered_bytes() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.buffered_bytes(), 0);
        t.shutdown();
    }
}
