//! Network cost model.
//!
//! The paper's testbed connects nodes with 100 Gb/s links whose bandwidth is
//! one to two orders of magnitude below memory bandwidth — the disparity that
//! makes communication the bottleneck of naive dimension-based partitioning
//! (§1, §3.1). The simulated cluster charges every message
//!
//! ```text
//! cost(bytes) = latency + (bytes + overhead) / bandwidth
//! ```
//!
//! and aggregates the charges per node. Two delivery modes mirror the MPI
//! modes of Fig. 2b: [`CommMode::Blocking`] (a la `MPI_Send`) serializes
//! communication with computation on the critical path, while
//! [`CommMode::NonBlocking`] (a la `MPI_Isend`/`MPI_Irecv`) lets them
//! overlap. Optionally ([`DelayMode::Sleep`]) the modeled cost is also
//! injected as real sleep so wall-clock measurements feel the network.

use std::time::Duration;

/// Delivery semantics for inter-node messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// Sender stalls for the full modeled transfer time (`MPI_Send`).
    Blocking,
    /// Transfer overlaps with computation (`MPI_Isend` / `MPI_Irecv`).
    #[default]
    NonBlocking,
}

impl CommMode {
    /// Short label used in reports ("B" / "NB" as in Fig. 2b).
    pub fn label(self) -> &'static str {
        match self {
            CommMode::Blocking => "B",
            CommMode::NonBlocking => "NB",
        }
    }
}

/// Whether modeled network cost is injected as real wall-clock delay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DelayMode {
    /// Account the cost but do not sleep (fast, fully deterministic).
    #[default]
    Account,
    /// Sleep `modeled_cost * scale` at the charged node.
    Sleep {
        /// Multiplier on the modeled cost (1.0 = real time).
        scale: f64,
    },
}

/// Modeled per-node computation rates.
///
/// The simulated cluster charges node time from *work counters* rather than
/// wall clocks: on an oversubscribed host (the workers are threads, often
/// more threads than cores) wall time inside a handler includes preemption
/// by sibling workers and would mis-attribute load. Deterministic modeled
/// charges keep per-node loads exact and host-independent; the rates are
/// calibrated against the real distance kernels at engine start-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRates {
    /// Nanoseconds per (point · dimension) scanned in a distance kernel.
    pub ns_per_point_dim: f64,
    /// Fixed nanoseconds per candidate visited (loop/bookkeeping overhead).
    pub ns_per_candidate: f64,
    /// Nanoseconds per wire byte for (de)serialization, charged as "other".
    pub ns_per_wire_byte: f64,
    /// Fixed nanoseconds per message handled, charged as "other".
    pub ns_per_message: f64,
}

impl Default for ComputeRates {
    fn default() -> Self {
        Self {
            ns_per_point_dim: 0.25,
            ns_per_candidate: 4.0,
            ns_per_wire_byte: 0.05,
            ns_per_message: 200.0,
        }
    }
}

impl ComputeRates {
    /// Rates with a measured kernel speed.
    pub fn with_kernel_rate(mut self, ns_per_point_dim: f64) -> Self {
        self.ns_per_point_dim = ns_per_point_dim.clamp(0.01, 100.0);
        self
    }

    /// Rates with a measured per-candidate overhead.
    pub fn with_candidate_rate(mut self, ns_per_candidate: f64) -> Self {
        self.ns_per_candidate = ns_per_candidate.clamp(0.5, 1_000.0);
        self
    }

    /// Modeled nanoseconds for scanning `point_dims` products over
    /// `candidates` candidates.
    pub fn compute_ns(&self, point_dims: u64, candidates: u64) -> u64 {
        (point_dims as f64 * self.ns_per_point_dim + candidates as f64 * self.ns_per_candidate)
            as u64
    }

    /// Modeled serialization overhead for one message of `bytes` payload.
    pub fn overhead_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.ns_per_wire_byte + self.ns_per_message) as u64
    }
}

/// Parameters of the modeled interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Link bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way latency per message, nanoseconds.
    pub latency_ns: u64,
    /// Fixed framing overhead added to every message, bytes.
    pub per_message_overhead_bytes: usize,
}

impl Default for NetworkModel {
    /// The paper's interconnect: 100 Gb/s, ~30 µs one-way latency.
    fn default() -> Self {
        Self {
            bandwidth_gbps: 100.0,
            latency_ns: 30_000,
            per_message_overhead_bytes: 64,
        }
    }
}

impl NetworkModel {
    /// A model so fast it never matters (for logic-only tests).
    pub fn instant() -> Self {
        Self {
            bandwidth_gbps: f64::INFINITY,
            latency_ns: 0,
            per_message_overhead_bytes: 0,
        }
    }

    /// A slower 10 Gb/s datacenter link.
    pub fn ten_gbit() -> Self {
        Self {
            bandwidth_gbps: 10.0,
            latency_ns: 50_000,
            per_message_overhead_bytes: 64,
        }
    }

    /// The paper-testbed link with per-message latency amortized over
    /// query-block batching. Harmony's protocol ships queries in blocks
    /// (Fig. 4's `Q_i`, Fig. 5's `Q1–Q3` batches), so one wire message
    /// carries ~`batch` queries; this simulation dispatches per query, so
    /// the equivalent per-query message cost is `latency / batch`.
    pub fn amortized(batch: usize) -> Self {
        let batch = batch.max(1);
        let base = Self::default();
        Self {
            latency_ns: base.latency_ns / batch as u64,
            per_message_overhead_bytes: base.per_message_overhead_bytes / batch,
            ..base
        }
    }

    /// Modeled one-way transfer time for a payload of `payload_bytes`
    /// (propagation latency + wire time).
    pub fn transfer_ns(&self, payload_bytes: usize) -> u64 {
        self.latency_ns + self.occupancy_ns(payload_bytes)
    }

    /// Wire time only: how long the message *occupies* an endpoint's NIC.
    ///
    /// Propagation latency does not occupy the endpoints — a non-blocking
    /// sender issues the next message immediately (`MPI_Isend`) and in-flight
    /// messages overlap. Throughput accounting therefore charges occupancy;
    /// latency is still charged for blocking sends ([`CommMode::Blocking`])
    /// and shows up in per-query latency.
    pub fn occupancy_ns(&self, payload_bytes: usize) -> u64 {
        let total_bytes = (payload_bytes + self.per_message_overhead_bytes) as f64;
        let bits = total_bytes * 8.0;
        let seconds = bits / (self.bandwidth_gbps * 1e9);
        if seconds.is_finite() {
            (seconds * 1e9).round() as u64
        } else {
            0
        }
    }

    /// [`NetworkModel::transfer_ns`] as a [`Duration`].
    pub fn transfer_duration(&self, payload_bytes: usize) -> Duration {
        Duration::from_nanos(self.transfer_ns(payload_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let m = NetworkModel::default();
        assert_eq!(m.bandwidth_gbps, 100.0);
        assert_eq!(m.latency_ns, 30_000);
    }

    #[test]
    fn transfer_time_scales_linearly_with_bytes() {
        let m = NetworkModel {
            bandwidth_gbps: 100.0,
            latency_ns: 0,
            per_message_overhead_bytes: 0,
        };
        // 100 Gb/s = 12.5 GB/s; 12.5 MB should take ~1 ms.
        let ns = m.transfer_ns(12_500_000);
        assert!((ns as i64 - 1_000_000).abs() < 1_000, "got {ns} ns");
        // Double the bytes, double the time.
        assert_eq!(m.transfer_ns(25_000_000), 2 * ns);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = NetworkModel::default();
        let small = m.transfer_ns(64);
        assert!(small >= m.latency_ns);
        assert!(small < m.latency_ns + 1_000);
    }

    #[test]
    fn instant_model_is_free() {
        let m = NetworkModel::instant();
        assert_eq!(m.transfer_ns(0), 0);
        assert_eq!(m.transfer_ns(1 << 30), 0);
    }

    #[test]
    fn ten_gbit_is_ten_times_slower_per_byte() {
        let fast = NetworkModel {
            latency_ns: 0,
            per_message_overhead_bytes: 0,
            ..NetworkModel::default()
        };
        let slow = NetworkModel {
            latency_ns: 0,
            per_message_overhead_bytes: 0,
            ..NetworkModel::ten_gbit()
        };
        let payload = 10_000_000;
        let ratio = slow.transfer_ns(payload) as f64 / fast.transfer_ns(payload) as f64;
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn comm_mode_labels_match_paper() {
        assert_eq!(CommMode::Blocking.label(), "B");
        assert_eq!(CommMode::NonBlocking.label(), "NB");
    }

    #[test]
    fn duration_wrapper_consistent() {
        let m = NetworkModel::default();
        assert_eq!(
            m.transfer_duration(1000),
            Duration::from_nanos(m.transfer_ns(1000))
        );
    }
}
